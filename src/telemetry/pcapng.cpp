#include "telemetry/pcapng.hpp"

#include <cstdio>

#include "telemetry/frame_tap.hpp"

namespace sublayer::telemetry {

namespace {

constexpr std::uint32_t kShbType = 0x0A0D0D0A;
constexpr std::uint32_t kIdbType = 0x00000001;
constexpr std::uint32_t kEpbType = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;

constexpr std::uint16_t kOptEnd = 0;
constexpr std::uint16_t kOptIfName = 2;
constexpr std::uint16_t kOptIfTsresol = 9;
constexpr std::uint16_t kOptEpbFlags = 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void pad4(std::vector<std::uint8_t>& out) {
  while (out.size() % 4 != 0) out.push_back(0);
}

/// Appends one option: code, length, value, zero-padded to 32 bits.
void put_option(std::vector<std::uint8_t>& out, std::uint16_t code,
                const void* value, std::size_t len) {
  put_u16(out, code);
  put_u16(out, static_cast<std::uint16_t>(len));
  const auto* bytes = static_cast<const std::uint8_t*>(value);
  out.insert(out.end(), bytes, bytes + len);
  pad4(out);
}

/// Wraps a block body with (type, total length) ... (total length).
void put_block(std::vector<std::uint8_t>& out, std::uint32_t type,
               const std::vector<std::uint8_t>& body) {
  const auto total = static_cast<std::uint32_t>(12 + body.size());
  put_u32(out, type);
  put_u32(out, total);
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, total);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t PcapngWriter::add_interface(std::string name,
                                          std::uint16_t link_type) {
  ifaces_.push_back(Iface{std::move(name), link_type});
  return static_cast<std::uint32_t>(ifaces_.size() - 1);
}

void PcapngWriter::packet(std::uint32_t iface, TimePoint ts, ByteView data,
                          Dir dir) {
  // epb_flags bits 0-1: 01 = inbound, 10 = outbound.
  const std::uint32_t flags = dir == Dir::kDown ? 2u : 1u;
  packets_.push_back(
      Pkt{iface, ts.ns(), flags, Bytes(data.begin(), data.end())});
}

std::vector<std::uint8_t> PcapngWriter::encode() const {
  std::vector<std::uint8_t> out;
  // Section Header Block: byte-order magic, version 1.0, unspecified
  // section length.
  {
    std::vector<std::uint8_t> body;
    put_u32(body, kByteOrderMagic);
    put_u16(body, 1);
    put_u16(body, 0);
    put_u32(body, 0xFFFFFFFFu);
    put_u32(body, 0xFFFFFFFFu);
    put_block(out, kShbType, body);
  }
  // One Interface Description Block per tap interface, nanosecond clock.
  for (const Iface& iface : ifaces_) {
    std::vector<std::uint8_t> body;
    put_u16(body, iface.link_type);
    put_u16(body, 0);          // reserved
    put_u32(body, 0);          // snaplen: unlimited
    put_option(body, kOptIfName, iface.name.data(), iface.name.size());
    const std::uint8_t tsresol = 9;  // 10^-9: sim time is in nanoseconds
    put_option(body, kOptIfTsresol, &tsresol, 1);
    put_u16(body, kOptEnd);
    put_u16(body, 0);
    put_block(out, kIdbType, body);
  }
  // Enhanced Packet Blocks, capture order.
  for (const Pkt& p : packets_) {
    std::vector<std::uint8_t> body;
    const auto ts = static_cast<std::uint64_t>(p.ts_ns);
    put_u32(body, p.iface);
    put_u32(body, static_cast<std::uint32_t>(ts >> 32));
    put_u32(body, static_cast<std::uint32_t>(ts));
    put_u32(body, static_cast<std::uint32_t>(p.data.size()));
    put_u32(body, static_cast<std::uint32_t>(p.data.size()));
    body.insert(body.end(), p.data.begin(), p.data.end());
    pad4(body);
    put_u32(body, kOptEpbFlags | 4u << 16);  // code 2, length 4
    put_u32(body, p.flags);
    put_u16(body, kOptEnd);
    put_u16(body, 0);
    put_block(out, kEpbType, body);
  }
  return out;
}

bool PcapngWriter::write_file(const std::string& path) const {
  const auto image = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t wrote =
      image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  return wrote == image.size();
}

std::optional<PcapngFile> parse_pcapng(const std::uint8_t* data,
                                       std::size_t size) {
  if (data == nullptr || size < 28) return std::nullopt;
  PcapngFile file;
  std::vector<std::uint64_t> tsresol_mul;  // per interface: units -> ns
  std::size_t at = 0;
  bool saw_shb = false;
  while (at + 12 <= size) {
    const std::uint32_t type = get_u32(data + at);
    const std::uint32_t total = get_u32(data + at + 4);
    if (total < 12 || total % 4 != 0 || at + total > size) {
      return std::nullopt;
    }
    if (get_u32(data + at + total - 4) != total) return std::nullopt;
    const std::uint8_t* body = data + at + 8;
    const std::size_t body_len = total - 12;
    if (type == kShbType) {
      if (body_len < 16 || get_u32(body) != kByteOrderMagic) {
        return std::nullopt;  // big-endian sections are not supported
      }
      saw_shb = true;
    } else if (!saw_shb) {
      return std::nullopt;  // a section must open with an SHB
    } else if (type == kIdbType) {
      if (body_len < 8) return std::nullopt;
      const std::uint16_t link_type = get_u16(body);
      std::string name;
      std::uint64_t mul = 1000;  // pcapng default resolution: microseconds
      // Options: (code, len, value padded to 4) ... until opt_endofopt.
      std::size_t o = 8;
      while (o + 4 <= body_len) {
        const std::uint16_t code = get_u16(body + o);
        const std::uint16_t len = get_u16(body + o + 2);
        if (code == kOptEnd) break;
        if (o + 4 + len > body_len) return std::nullopt;
        if (code == kOptIfName) {
          name.assign(reinterpret_cast<const char*>(body + o + 4), len);
        } else if (code == kOptIfTsresol && len == 1) {
          const std::uint8_t resol = body[o + 4];
          if ((resol & 0x80) != 0 || resol > 9) return std::nullopt;
          mul = 1;
          for (std::uint8_t i = resol; i < 9; ++i) mul *= 10;
        }
        o += 4 + ((static_cast<std::size_t>(len) + 3) & ~std::size_t{3});
      }
      file.interfaces.emplace_back(std::move(name), link_type);
      tsresol_mul.push_back(mul);
    } else if (type == kEpbType) {
      if (body_len < 20) return std::nullopt;
      PcapngPacket pkt;
      pkt.iface = get_u32(body);
      if (pkt.iface >= file.interfaces.size()) return std::nullopt;
      const std::uint64_t ts =
          static_cast<std::uint64_t>(get_u32(body + 4)) << 32 |
          get_u32(body + 8);
      pkt.ts_ns =
          static_cast<std::int64_t>(ts * tsresol_mul[pkt.iface]);
      const std::uint32_t cap_len = get_u32(body + 12);
      const std::size_t padded = (cap_len + 3u) & ~3u;
      if (20 + padded > body_len) return std::nullopt;
      pkt.data.assign(body + 20, body + 20 + cap_len);
      std::size_t o = 20 + padded;
      while (o + 4 <= body_len) {
        const std::uint16_t code = get_u16(body + o);
        const std::uint16_t len = get_u16(body + o + 2);
        if (code == kOptEnd) break;
        if (o + 4 + len > body_len) return std::nullopt;
        if (code == kOptEpbFlags && len == 4) pkt.flags = get_u32(body + o + 4);
        o += 4 + ((static_cast<std::size_t>(len) + 3) & ~std::size_t{3});
      }
      file.packets.push_back(std::move(pkt));
    }
    // Unknown block types are skipped, as the format prescribes.
    at += total;
  }
  if (at != size) return std::nullopt;
  return file;
}

void attach_pcap_sink(TapHub& hub, PcapngWriter& writer) {
  std::array<std::uint32_t, kTapPointCount> iface_of{};
  for (std::size_t i = 0; i < kTapPointCount; ++i) {
    const auto p = static_cast<TapPoint>(i);
    iface_of[i] = writer.add_interface(to_string(p), tap_link_type(p));
    hub.enable(p);
  }
  hub.set_sink([&writer, iface_of](TapPoint p, Dir dir, TimePoint ts,
                                   ByteView frame) {
    writer.packet(iface_of[static_cast<std::size_t>(p)], ts, frame, dir);
  });
}

}  // namespace sublayer::telemetry
