// Stream multiplexing — a further sublayer stacked ABOVE the transport.
//
// The paper's closing agenda (§5) points at QUIC: "The transport layer
// can likely be further sublayered into a stream layer and a connection
// layer."  This module is that stream sublayer, built recursively on the
// sublayered TCP's byte stream exactly the way each TCP sublayer is built
// on the one below it:
//
//   T1: it adds a distinct service (independent message streams) by
//       talking to its peer mux through its own record header;
//   T2: its downward interface is just the connection's byte-stream API;
//   T3: its header bytes (stream id, flags, length) are invisible to OSR
//       and below, and no lower sublayer's state is touched.
//
// This is the SST/Minion use case the related-work section describes —
// application-level framing and per-stream delivery — implemented as one
// more sublayer rather than a protocol fork.  (Within a single TCP
// connection, transport-level head-of-line blocking still exists; the mux
// removes *application-level* interleaving constraints.)
//
// Wire format of one record inside the byte stream:
//   stream_id:32  flags:8 (bit0 = END of stream)  length:16  payload...
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "transport/sublayered/connection.hpp"

namespace sublayer::transport {

class StreamMux;

/// One logical stream inside a connection.
class Stream {
 public:
  using DataHandler = std::function<void(Bytes)>;
  using EndHandler = std::function<void()>;

  std::uint32_t id() const { return id_; }

  /// Appends bytes to this stream (interleaves with other streams on the
  /// wire at record granularity).
  void send(Bytes data);

  /// Half-closes this stream; the peer's on_end fires after the last byte.
  void finish();

  void set_on_data(DataHandler h) { on_data_ = std::move(h); }
  void set_on_end(EndHandler h) { on_end_ = std::move(h); }

  bool local_finished() const { return local_end_; }
  bool remote_finished() const { return remote_end_; }

 private:
  friend class StreamMux;
  Stream(StreamMux& mux, std::uint32_t id) : mux_(mux), id_(id) {}

  StreamMux& mux_;
  std::uint32_t id_;
  bool local_end_ = false;
  bool remote_end_ = false;
  DataHandler on_data_;
  EndHandler on_end_;
};

struct StreamMuxStats {
  std::uint64_t records_sent = 0;
  std::uint64_t records_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t streams_opened_local = 0;
  std::uint64_t streams_opened_remote = 0;
  std::uint64_t malformed_records = 0;
};

class StreamMux {
 public:
  using AcceptHandler = std::function<void(Stream&)>;

  /// Attaches to `connection` as its application.  `initiator` disam-
  /// biguates the id spaces (initiator opens odd ids, acceptor even),
  /// mirroring QUIC's convention.  The mux installs the connection's app
  /// callbacks; connection-level events can still be observed through the
  /// optional handlers below.
  StreamMux(Connection& connection, bool initiator);

  /// Opens a new locally-initiated stream.
  Stream& open();

  /// Handler for streams the peer opens.
  void set_on_stream(AcceptHandler h) { on_stream_ = std::move(h); }

  /// Pass-through connection events.
  void set_on_established(std::function<void()> h) {
    on_established_ = std::move(h);
  }
  void set_on_connection_closed(std::function<void()> h) {
    on_closed_ = std::move(h);
  }

  /// Closes the whole connection once every local stream is finished.
  void close_connection() { connection_.close(); }

  std::size_t live_streams() const { return streams_.size(); }
  const StreamMuxStats& stats() const { return stats_; }

  /// The stream with `id`, or nullptr — snapshot-restore support: after
  /// restore, the application re-finds its streams and re-attaches their
  /// data/end handlers.
  Stream* find_stream(std::uint32_t id);

  /// Checkpoint/restore (sim/snapshot.hpp): the id allocator, the partial
  /// receive record, stats, and each stream's id and end flags.  Stream
  /// handlers are closures and are NOT saved — re-attach via find_stream
  /// (locally opened ids) or set_on_stream before any further delivery.
  /// Inline format; the owner brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

  static constexpr std::size_t kHeaderSize = 4 + 1 + 2;
  static constexpr std::size_t kMaxRecordPayload = 65535;

 private:
  friend class Stream;

  void emit(std::uint32_t id, bool end, ByteView payload);
  void on_bytes(Bytes data);
  void dispatch(std::uint32_t id, bool end, Bytes payload);
  Stream& stream_for(std::uint32_t id, bool remote_initiated);

  Connection& connection_;
  bool initiator_;
  std::uint32_t next_id_;
  AcceptHandler on_stream_;
  std::function<void()> on_established_;
  std::function<void()> on_closed_;
  std::map<std::uint32_t, std::unique_ptr<Stream>> streams_;
  Bytes rx_buffer_;  // partially received record
  StreamMuxStats stats_;
};

}  // namespace sublayer::transport
