#include "transport/streams/mux.hpp"

#include "sim/snapshot.hpp"

namespace sublayer::transport {

void Stream::send(Bytes data) {
  if (local_end_) return;  // write after finish
  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(StreamMux::kMaxRecordPayload, data.size() - at);
    mux_.emit(id_, /*end=*/false, ByteView(data).subspan(at, chunk));
    at += chunk;
  }
  if (data.empty()) mux_.emit(id_, /*end=*/false, {});
}

void Stream::finish() {
  if (local_end_) return;
  local_end_ = true;
  mux_.emit(id_, /*end=*/true, {});
}

StreamMux::StreamMux(Connection& connection, bool initiator)
    : connection_(connection),
      initiator_(initiator),
      next_id_(initiator ? 1 : 2) {
  Connection::AppCallbacks cb;
  cb.on_established = [this] {
    if (on_established_) on_established_();
  };
  cb.on_data = [this](Bytes data) { on_bytes(std::move(data)); };
  cb.on_closed = [this] {
    if (on_closed_) on_closed_();
  };
  connection_.set_app_callbacks(std::move(cb));
}

Stream& StreamMux::open() {
  const std::uint32_t id = next_id_;
  next_id_ += 2;
  ++stats_.streams_opened_local;
  auto stream = std::unique_ptr<Stream>(new Stream(*this, id));
  Stream& ref = *stream;
  streams_.emplace(id, std::move(stream));
  return ref;
}

void StreamMux::emit(std::uint32_t id, bool end, ByteView payload) {
  Bytes record;
  record.reserve(kHeaderSize + payload.size());
  ByteWriter w(record);
  w.u32(id);
  w.u8(end ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  ++stats_.records_sent;
  stats_.bytes_sent += payload.size();
  connection_.send(std::move(record));
}

void StreamMux::on_bytes(Bytes data) {
  rx_buffer_.insert(rx_buffer_.end(), data.begin(), data.end());
  // Drain complete records; the byte stream is in order (OSR's guarantee),
  // so a simple cursor suffices.
  std::size_t at = 0;
  while (rx_buffer_.size() - at >= kHeaderSize) {
    ByteReader r(ByteView(rx_buffer_).subspan(at));
    const std::uint32_t id = r.u32();
    const std::uint8_t flags = r.u8();
    const std::uint16_t len = r.u16();
    if (rx_buffer_.size() - at - kHeaderSize <
        static_cast<std::size_t>(len)) {
      break;  // record still arriving
    }
    Bytes payload = r.bytes(len);
    at += kHeaderSize + len;
    if (flags > 1) {
      ++stats_.malformed_records;
      continue;
    }
    ++stats_.records_received;
    stats_.bytes_received += payload.size();
    dispatch(id, (flags & 1) != 0, std::move(payload));
  }
  rx_buffer_.erase(rx_buffer_.begin(),
                   rx_buffer_.begin() + static_cast<std::ptrdiff_t>(at));
}

Stream& StreamMux::stream_for(std::uint32_t id, bool remote_initiated) {
  const auto it = streams_.find(id);
  if (it != streams_.end()) return *it->second;
  auto stream = std::unique_ptr<Stream>(new Stream(*this, id));
  Stream& ref = *stream;
  streams_.emplace(id, std::move(stream));
  if (remote_initiated) {
    ++stats_.streams_opened_remote;
    if (on_stream_) on_stream_(ref);
  }
  return ref;
}

void StreamMux::dispatch(std::uint32_t id, bool end, Bytes payload) {
  // Parity determines who initiated: the initiator owns odd ids.
  const bool remote_initiated = initiator_ ? id % 2 == 0 : id % 2 == 1;
  Stream& stream = stream_for(id, remote_initiated);
  if (!payload.empty() && stream.on_data_) stream.on_data_(std::move(payload));
  if (end && !stream.remote_end_) {
    stream.remote_end_ = true;
    if (stream.on_end_) stream.on_end_();
  }
}

Stream* StreamMux::find_stream(std::uint32_t id) {
  const auto it = streams_.find(id);
  return it != streams_.end() ? it->second.get() : nullptr;
}

void StreamMux::save(sim::SnapshotWriter& w) const {
  w.u32(next_id_);
  w.blob(rx_buffer_);
  w.u64(stats_.records_sent);
  w.u64(stats_.records_received);
  w.u64(stats_.bytes_sent);
  w.u64(stats_.bytes_received);
  w.u64(stats_.streams_opened_local);
  w.u64(stats_.streams_opened_remote);
  w.u64(stats_.malformed_records);
  w.u64(streams_.size());
  for (const auto& [id, stream] : streams_) {
    w.u32(id);
    w.b(stream->local_end_);
    w.b(stream->remote_end_);
  }
}

void StreamMux::restore(sim::SnapshotReader& r) {
  next_id_ = r.u32();
  rx_buffer_ = r.blob();
  stats_.records_sent = r.u64();
  stats_.records_received = r.u64();
  stats_.bytes_sent = r.u64();
  stats_.bytes_received = r.u64();
  stats_.streams_opened_local = r.u64();
  stats_.streams_opened_remote = r.u64();
  stats_.malformed_records = r.u64();
  streams_.clear();
  const std::uint64_t nstreams = r.u64();
  for (std::uint64_t i = 0; i < nstreams; ++i) {
    const std::uint32_t id = r.u32();
    auto stream = std::unique_ptr<Stream>(new Stream(*this, id));
    stream->local_end_ = r.b();
    stream->remote_end_ = r.b();
    streams_.emplace(id, std::move(stream));
  }
}

}  // namespace sublayer::transport
