// Monolithic baseline TCP, in the style of lwIP/BSD (§4.2 of the paper).
//
// This is the *control* for every sublayered-vs-monolithic comparison in
// the repository, so it is deliberately structured the way classical
// stacks are: one Protocol Control Block holding ALL connection state
// (sequence numbers, windows, congestion state, timers, buffers), and one
// large tcp_input() that interleaves demultiplexing checks, connection-
// state transitions, ack processing, congestion control, flow control,
// data reassembly, and FIN handling — the entangled shared-state shape
// the paper argues makes reasoning hard.  Wire format: RFC 793 (no SACK).
//
// Functionally it implements: 3-way handshake, retransmission with
// Jacobson/Karels RTO and Karn's rule, duplicate-ack fast retransmit,
// Reno congestion control (inline, not pluggable), receiver out-of-order
// queueing, flow control, the full close state machine with TIME-WAIT,
// and RST handling.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "netlayer/router.hpp"
#include "sim/simulator.hpp"
#include "transport/sublayered/isn.hpp"
#include "transport/wire/tcp_header.hpp"
#include "transport/wire/tuple.hpp"

namespace sublayer::transport {

enum class MonoState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
  kAborted,
};

const char* to_string(MonoState s);

struct MonoConfig {
  std::uint32_t mss = 1200;
  Duration initial_rto = Duration::millis(200);
  Duration min_rto = Duration::millis(20);
  Duration max_rto = Duration::seconds(10.0);
  Duration time_wait = Duration::millis(500);
  int max_retries = 12;
  std::uint32_t recv_buffer = 65535;
};

struct MonoStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeout_retransmits = 0;
  std::uint64_t duplicate_acks_seen = 0;
  std::uint64_t bytes_to_app = 0;
  std::uint64_t ooo_segments_queued = 0;
};

class MonoConnection {
 public:
  struct AppCallbacks {
    std::function<void()> on_established;
    std::function<void(Bytes)> on_data;
    std::function<void()> on_stream_end;
    std::function<void()> on_closed;
    std::function<void(std::string reason)> on_reset;
  };

  /// `send_segment` transmits encoded RFC 793 bytes towards the peer.
  MonoConnection(sim::Simulator& sim, const FourTuple& tuple,
                 const MonoConfig& config,
                 std::function<void(Bytes)> send_segment);

  void set_app_callbacks(AppCallbacks callbacks) { app_ = std::move(callbacks); }
  void set_owner_reaper(std::function<void()> reaper) {
    reaper_ = std::move(reaper);
  }

  void open_active(std::uint32_t isn);
  void open_passive(const TcpHeader& syn, std::uint32_t isn);

  void send(Bytes data);
  void close();
  void abort();

  /// THE entangled input routine (cf. lwIP tcp_input / TCPv2 p.948).
  void tcp_input(const TcpHeader& header, Bytes payload);

  MonoState state() const { return state_; }
  const FourTuple& tuple() const { return tuple_; }
  std::uint64_t cwnd() const { return cwnd_; }
  const MonoStats& stats() const { return stats_; }

 private:
  // --- the PCB: everything lives here, shared by every code path ---
  void output();
  void transmit(std::uint32_t seq, std::size_t len, bool fin, bool syn);
  void send_empty(bool ack, bool rst, bool syn = false);
  void on_rto();
  void arm_retx_timer();
  void note_rtt(Duration sample);
  void process_ack(const TcpHeader& h);
  void process_data(const TcpHeader& h, Bytes payload);
  void deliver(Bytes data);
  void handle_peer_fin();
  void enter_time_wait();
  void become_closed();
  std::uint16_t advertised_window() const;
  std::uint32_t send_window_limit() const;

  sim::Simulator& sim_;
  FourTuple tuple_;
  MonoConfig config_;
  std::function<void(Bytes)> send_segment_;
  AppCallbacks app_;
  std::function<void()> reaper_;
  MonoStats stats_;

  MonoState state_ = MonoState::kClosed;
  std::uint32_t iss_ = 0;
  std::uint32_t irs_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 65535;
  std::uint32_t rcv_nxt_ = 0;

  // Send buffer: bytes [buffer_front_seq_, buffer_front_seq_ + size).
  std::deque<std::uint8_t> buffer_;
  std::uint32_t buffer_front_seq_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Congestion control, inline Reno.
  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = ~0ull;
  int dupacks_ = 0;

  // RTO machinery.
  Duration rto_;
  std::optional<Duration> srtt_;
  Duration rttvar_;
  bool rtt_timing_ = false;
  std::uint32_t rtt_seq_ = 0;
  TimePoint rtt_start_;
  int retries_ = 0;
  /// Loss-recovery point: while snd_una_ < recover_until_, every new ack
  /// immediately retransmits the next segment from snd_una_ (NewReno-style
  /// partial-ack handling, also applied after a timeout).
  std::uint32_t recover_until_ = 0;
  bool in_recovery_ = false;
  sim::Timer retx_timer_;
  sim::Timer time_wait_timer_;

  // Receiver out-of-order queue (keyed by sequence, wrap-aware).
  struct SeqLess {
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return seq_lt(a, b);
    }
  };
  std::map<std::uint32_t, Bytes, SeqLess> ooo_;
  std::uint64_t ooo_bytes_ = 0;
  std::optional<std::uint32_t> peer_fin_seq_;
};

/// Host container for monolithic connections: demux, ISNs, lifecycle.
class MonoHost {
 public:
  using AcceptHandler = std::function<void(MonoConnection&)>;

  MonoHost(sim::Simulator& sim, netlayer::Router& router,
           std::uint8_t host_octet, MonoConfig config = {});

  netlayer::IpAddr addr() const { return addr_; }

  MonoConnection& connect(netlayer::IpAddr remote, std::uint16_t remote_port);
  void listen(std::uint16_t port, AcceptHandler on_accept);

  std::size_t live_connections() const { return connections_.size(); }

 private:
  void on_datagram(const netlayer::IpHeader& header, Bytes payload);
  MonoConnection& make_connection(const FourTuple& tuple);
  std::uint16_t allocate_port();

  sim::Simulator& sim_;
  netlayer::Router& router_;
  netlayer::IpAddr addr_;
  MonoConfig config_;
  std::unique_ptr<IsnProvider> isn_;
  std::map<FourTuple, std::unique_ptr<MonoConnection>> connections_;
  std::map<std::uint16_t, AcceptHandler> acceptors_;
  std::uint16_t next_ephemeral_ = 40000;
};

}  // namespace sublayer::transport
