#include "transport/monolithic/mono_tcp.hpp"

#include <algorithm>

namespace sublayer::transport {

const char* to_string(MonoState s) {
  switch (s) {
    case MonoState::kClosed: return "CLOSED";
    case MonoState::kSynSent: return "SYN_SENT";
    case MonoState::kSynRcvd: return "SYN_RCVD";
    case MonoState::kEstablished: return "ESTABLISHED";
    case MonoState::kFinWait1: return "FIN_WAIT_1";
    case MonoState::kFinWait2: return "FIN_WAIT_2";
    case MonoState::kCloseWait: return "CLOSE_WAIT";
    case MonoState::kClosing: return "CLOSING";
    case MonoState::kLastAck: return "LAST_ACK";
    case MonoState::kTimeWait: return "TIME_WAIT";
    case MonoState::kAborted: return "ABORTED";
  }
  return "?";
}

MonoConnection::MonoConnection(sim::Simulator& sim, const FourTuple& tuple,
                               const MonoConfig& config,
                               std::function<void(Bytes)> send_segment)
    : sim_(sim),
      tuple_(tuple),
      config_(config),
      send_segment_(std::move(send_segment)),
      cwnd_(4ull * config.mss),
      rto_(config.initial_rto),
      rttvar_(Duration::nanos(0)),
      retx_timer_(sim, [this] { on_rto(); }),
      time_wait_timer_(sim, [this] { become_closed(); }) {}

void MonoConnection::open_active(std::uint32_t isn) {
  iss_ = isn;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  buffer_front_seq_ = iss_ + 1;
  state_ = MonoState::kSynSent;
  send_empty(/*ack=*/false, /*rst=*/false, /*syn=*/true);
  arm_retx_timer();
}

void MonoConnection::open_passive(const TcpHeader& syn, std::uint32_t isn) {
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  iss_ = isn;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  buffer_front_seq_ = iss_ + 1;
  state_ = MonoState::kSynRcvd;
  send_empty(/*ack=*/true, /*rst=*/false, /*syn=*/true);
  arm_retx_timer();
}

std::uint16_t MonoConnection::advertised_window() const {
  const std::uint64_t used = ooo_bytes_;
  const std::uint64_t free =
      config_.recv_buffer > used ? config_.recv_buffer - used : 0;
  return static_cast<std::uint16_t>(std::min<std::uint64_t>(free, 65535));
}

std::uint32_t MonoConnection::send_window_limit() const {
  // Usable window: min(congestion window, peer's advertised window).
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cwnd_, snd_wnd_));
}

void MonoConnection::transmit(std::uint32_t seq, std::size_t len, bool fin,
                              bool syn) {
  TcpHeader h;
  h.src_port = tuple_.local_port;
  h.dst_port = tuple_.remote_port;
  h.seq = seq;
  h.flag_syn = syn;
  h.flag_fin = fin;
  h.flag_ack = state_ != MonoState::kSynSent || !syn;
  if (h.flag_ack) h.ack = rcv_nxt_;
  h.window = advertised_window();
  if (syn) h.mss = static_cast<std::uint16_t>(config_.mss);

  Bytes payload;
  if (len > 0) {
    const auto from =
        static_cast<std::size_t>(seq - buffer_front_seq_);
    payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(from),
                   buffer_.begin() + static_cast<std::ptrdiff_t>(from + len));
  }
  ++stats_.segments_sent;
  stats_.bytes_sent += payload.size();
  if (send_segment_) send_segment_(h.encode(payload));
}

void MonoConnection::send_empty(bool ack, bool rst, bool syn) {
  TcpHeader h;
  h.src_port = tuple_.local_port;
  h.dst_port = tuple_.remote_port;
  h.seq = syn ? iss_ : snd_nxt_;
  h.flag_syn = syn;
  h.flag_ack = ack;
  h.flag_rst = rst;
  if (ack) h.ack = rcv_nxt_;
  h.window = advertised_window();
  if (syn) h.mss = static_cast<std::uint16_t>(config_.mss);
  ++stats_.segments_sent;
  if (send_segment_) send_segment_(h.encode({}));
}

void MonoConnection::send(Bytes data) {
  if (fin_pending_ || fin_sent_) return;  // write after close
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (state_ == MonoState::kEstablished || state_ == MonoState::kCloseWait) {
    output();
  }
}

void MonoConnection::close() {
  if (fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  if (state_ == MonoState::kEstablished || state_ == MonoState::kCloseWait) {
    output();
  }
}

void MonoConnection::abort() {
  if (state_ == MonoState::kClosed || state_ == MonoState::kAborted) return;
  send_empty(/*ack=*/false, /*rst=*/true);
  retx_timer_.stop();
  state_ = MonoState::kAborted;
  if (app_.on_reset) app_.on_reset("local abort");
  if (reaper_) reaper_();
}

void MonoConnection::output() {
  const std::uint32_t buffered_end =
      buffer_front_seq_ + static_cast<std::uint32_t>(buffer_.size());
  const std::uint32_t window_end = snd_una_ + send_window_limit();

  while (seq_lt(snd_nxt_, buffered_end) && seq_lt(snd_nxt_, window_end)) {
    const std::uint32_t space = window_end - snd_nxt_;
    const std::uint32_t avail = buffered_end - snd_nxt_;
    const std::uint32_t len =
        std::min({config_.mss, space, avail});
    if (len == 0) break;
    // RTT timing (one sample at a time, lwIP-style).
    if (!rtt_timing_) {
      rtt_timing_ = true;
      rtt_seq_ = snd_nxt_;
      rtt_start_ = sim_.now();
    }
    transmit(snd_nxt_, len, /*fin=*/false, /*syn=*/false);
    snd_nxt_ += len;
  }

  if (fin_pending_ && !fin_sent_ && snd_nxt_ == buffered_end &&
      seq_le(snd_nxt_ + 1, snd_una_ + std::max<std::uint32_t>(
                                          send_window_limit(), 1))) {
    fin_seq_ = snd_nxt_;
    fin_sent_ = true;
    transmit(snd_nxt_, 0, /*fin=*/true, /*syn=*/false);
    ++snd_nxt_;  // FIN consumes a sequence number
    if (state_ == MonoState::kEstablished) {
      state_ = MonoState::kFinWait1;
    } else if (state_ == MonoState::kCloseWait) {
      state_ = MonoState::kLastAck;
    }
  }
  arm_retx_timer();
}

void MonoConnection::arm_retx_timer() {
  if (snd_una_ == snd_nxt_) {
    retx_timer_.stop();
    retries_ = 0;
  } else if (!retx_timer_.armed()) {
    retx_timer_.restart(rto_);
  }
}

void MonoConnection::on_rto() {
  if (snd_una_ == snd_nxt_) return;
  if (++retries_ > config_.max_retries) {
    retx_timer_.stop();
    state_ = MonoState::kAborted;
    if (app_.on_reset) app_.on_reset("retransmission limit reached");
    if (reaper_) reaper_();
    return;
  }
  ++stats_.retransmissions;
  ++stats_.timeout_retransmits;
  rtt_timing_ = false;  // Karn: retransmitted segments are not timed

  // Congestion response to a timeout (inline Reno).
  ssthresh_ = std::max<std::uint64_t>((snd_nxt_ - snd_una_) / 2,
                                      2ull * config_.mss);
  cwnd_ = config_.mss;
  dupacks_ = 0;
  // Enter loss recovery: partial acks below this point retransmit the
  // next hole immediately instead of waiting out a backed-off RTO each.
  in_recovery_ = true;
  recover_until_ = snd_nxt_;

  // Retransmit one segment from snd_una_.
  if (state_ == MonoState::kSynSent) {
    send_empty(false, false, /*syn=*/true);
  } else if (state_ == MonoState::kSynRcvd) {
    send_empty(true, false, /*syn=*/true);
  } else if (fin_sent_ && snd_una_ == fin_seq_) {
    transmit(fin_seq_, 0, /*fin=*/true, /*syn=*/false);
  } else {
    const std::uint32_t buffered_end =
        buffer_front_seq_ + static_cast<std::uint32_t>(buffer_.size());
    const std::uint32_t avail = buffered_end - snd_una_;
    const std::uint32_t len = std::min(config_.mss, avail);
    if (len > 0) transmit(snd_una_, len, false, false);
  }
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  retx_timer_.restart(rto_);
}

void MonoConnection::note_rtt(Duration sample) {
  if (!srtt_) {
    srtt_ = sample;
    rttvar_ = Duration::nanos(sample.ns() / 2);
  } else {
    const std::int64_t err = sample.ns() - srtt_->ns();
    const std::int64_t abs_err = err < 0 ? -err : err;
    rttvar_ = Duration::nanos((3 * rttvar_.ns() + abs_err) / 4);
    srtt_ = Duration::nanos((7 * srtt_->ns() + sample.ns()) / 8);
  }
  rto_ = std::clamp(Duration::nanos(srtt_->ns() + 4 * rttvar_.ns()),
                    config_.min_rto, config_.max_rto);
}

// The deliberately entangled input path: state machine, ack clocking,
// congestion control, flow control, reassembly, and teardown all share
// the PCB fields and interleave below.
void MonoConnection::tcp_input(const TcpHeader& h, Bytes payload) {
  // --- RST: validate against the receive window, then kill everything.
  if (h.flag_rst) {
    if (state_ == MonoState::kSynSent
            ? h.ack == snd_nxt_
            : (h.seq == rcv_nxt_ || state_ == MonoState::kSynRcvd)) {
      retx_timer_.stop();
      state_ = MonoState::kAborted;
      if (app_.on_reset) app_.on_reset("peer reset");
      if (reaper_) reaper_();
    }
    return;
  }

  // --- Handshake states first (lwIP orders these checks the same way).
  if (state_ == MonoState::kSynSent) {
    if (h.flag_syn && h.flag_ack && h.ack == snd_nxt_) {
      irs_ = h.seq;
      rcv_nxt_ = h.seq + 1;
      snd_una_ = h.ack;
      snd_wnd_ = h.window;
      retx_timer_.stop();
      retries_ = 0;
      state_ = MonoState::kEstablished;
      send_empty(/*ack=*/true, /*rst=*/false);
      if (app_.on_established) app_.on_established();
      output();
    }
    return;
  }

  if (state_ == MonoState::kSynRcvd) {
    if (h.flag_syn && !h.flag_ack && h.seq == irs_) {
      send_empty(true, false, /*syn=*/true);  // duplicate SYN: re-SYNACK
      return;
    }
    if (h.flag_ack && h.ack == snd_nxt_) {
      snd_una_ = h.ack;
      snd_wnd_ = h.window;
      retx_timer_.stop();
      retries_ = 0;
      state_ = MonoState::kEstablished;
      if (app_.on_established) app_.on_established();
      // Fall through: this segment may carry data.
    } else if (!h.flag_ack) {
      return;
    }
  }

  if (state_ == MonoState::kClosed || state_ == MonoState::kAborted) return;

  // --- ACK processing, window update, congestion control (entangled).
  if (h.flag_ack) {
    snd_wnd_ = h.window;  // flow-control update rides on every ack
    if (seq_gt(h.ack, snd_una_) && seq_le(h.ack, snd_nxt_)) {
      // New data acked.
      const std::uint32_t fin_adj =
          (fin_sent_ && seq_gt(h.ack, fin_seq_)) ? 1 : 0;
      const std::uint32_t data_acked_end = h.ack - fin_adj;
      if (seq_gt(data_acked_end, buffer_front_seq_)) {
        const std::uint32_t drop = data_acked_end - buffer_front_seq_;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(
                                            std::min<std::size_t>(
                                                drop, buffer_.size())));
        buffer_front_seq_ = data_acked_end;
      }
      const std::uint64_t newly = h.ack - snd_una_;
      snd_una_ = h.ack;
      dupacks_ = 0;
      retries_ = 0;

      // RTT sample (Karn honoured via rtt_timing_ reset on retransmit).
      if (rtt_timing_ && seq_gt(h.ack, rtt_seq_)) {
        rtt_timing_ = false;
        note_rtt(sim_.now() - rtt_start_);
      } else if (srtt_) {
        // Progress without a sample: drop the exponential backoff.
        rto_ = std::clamp(Duration::nanos(srtt_->ns() + 4 * rttvar_.ns()),
                          config_.min_rto, config_.max_rto);
      } else {
        rto_ = config_.initial_rto;
      }

      // NewReno-style recovery: a partial ack means the next segment is
      // lost too — retransmit it now.
      if (in_recovery_) {
        if (seq_ge(h.ack, recover_until_)) {
          in_recovery_ = false;
        } else if (!(fin_sent_ && snd_una_ == fin_seq_)) {
          const std::uint32_t buffered_end =
              buffer_front_seq_ + static_cast<std::uint32_t>(buffer_.size());
          const std::uint32_t len =
              std::min(config_.mss, buffered_end - snd_una_);
          if (len > 0) {
            ++stats_.retransmissions;
            transmit(snd_una_, len, false, false);
          }
        } else {
          ++stats_.retransmissions;
          transmit(fin_seq_, 0, true, false);
        }
      }

      // Reno growth, inline.
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min<std::uint64_t>(newly, config_.mss);
      } else {
        cwnd_ += std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(config_.mss) * config_.mss / cwnd_);
      }

      retx_timer_.stop();
      arm_retx_timer();

      // FIN acked?
      if (fin_sent_ && seq_gt(h.ack, fin_seq_)) {
        if (state_ == MonoState::kFinWait1) {
          state_ = MonoState::kFinWait2;
        } else if (state_ == MonoState::kClosing) {
          enter_time_wait();
        } else if (state_ == MonoState::kLastAck) {
          become_closed();
          return;
        }
      }
      output();
    } else if (h.ack == snd_una_ && snd_una_ != snd_nxt_ &&
               payload.empty() && !h.flag_fin) {
      // Duplicate ack: count towards fast retransmit (inline Reno).
      ++stats_.duplicate_acks_seen;
      if (++dupacks_ == 3 && !in_recovery_) {
        dupacks_ = 0;
        ++stats_.retransmissions;
        ++stats_.fast_retransmits;
        rtt_timing_ = false;
        in_recovery_ = true;
        recover_until_ = snd_nxt_;
        ssthresh_ = std::max<std::uint64_t>((snd_nxt_ - snd_una_) / 2,
                                            2ull * config_.mss);
        cwnd_ = ssthresh_;
        if (fin_sent_ && snd_una_ == fin_seq_) {
          transmit(fin_seq_, 0, true, false);
        } else {
          const std::uint32_t buffered_end =
              buffer_front_seq_ + static_cast<std::uint32_t>(buffer_.size());
          const std::uint32_t len =
              std::min(config_.mss, buffered_end - snd_una_);
          if (len > 0) transmit(snd_una_, len, false, false);
        }
      }
    }
  }

  // --- Data and FIN processing (reassembly entangled with teardown).
  if (h.flag_fin) {
    peer_fin_seq_ = h.seq + static_cast<std::uint32_t>(payload.size());
  }
  if (!payload.empty()) {
    process_data(h, std::move(payload));
  } else if (h.flag_fin) {
    process_data(h, {});
  }
}

void MonoConnection::process_data(const TcpHeader& h, Bytes payload) {
  const std::uint32_t seg_seq = h.seq;
  const std::uint32_t seg_end =
      seg_seq + static_cast<std::uint32_t>(payload.size());

  if (!payload.empty()) {
    if (seg_seq == rcv_nxt_) {
      rcv_nxt_ = seg_end;
      deliver(std::move(payload));
      // Drain any out-of-order segments that are now contiguous.
      auto it = ooo_.begin();
      while (it != ooo_.end() && seq_le(it->first, rcv_nxt_)) {
        const std::uint32_t q_seq = it->first;
        Bytes q_data = std::move(it->second);
        ooo_bytes_ -= q_data.size();
        it = ooo_.erase(it);
        const std::uint32_t q_end =
            q_seq + static_cast<std::uint32_t>(q_data.size());
        if (seq_le(q_end, rcv_nxt_)) continue;  // fully duplicate
        const auto skip = static_cast<std::size_t>(rcv_nxt_ - q_seq);
        q_data.erase(q_data.begin(),
                     q_data.begin() + static_cast<std::ptrdiff_t>(skip));
        rcv_nxt_ = q_end;
        deliver(std::move(q_data));
        it = ooo_.begin();
      }
    } else if (seq_gt(seg_seq, rcv_nxt_)) {
      // Out of order: queue (bounded by the receive buffer) and dup-ack.
      if (ooo_bytes_ + payload.size() <= config_.recv_buffer &&
          !ooo_.contains(seg_seq)) {
        ooo_bytes_ += payload.size();
        ++stats_.ooo_segments_queued;
        ooo_.emplace(seg_seq, std::move(payload));
      }
    } else if (seq_gt(seg_end, rcv_nxt_)) {
      // Partial overlap: deliver the new tail.
      const auto skip = static_cast<std::size_t>(rcv_nxt_ - seg_seq);
      payload.erase(payload.begin(),
                    payload.begin() + static_cast<std::ptrdiff_t>(skip));
      rcv_nxt_ = seg_end;
      deliver(std::move(payload));
    }
    // else: fully duplicate, just re-ack below.
  }

  // FIN consumption once the stream is complete.
  if (peer_fin_seq_ && rcv_nxt_ == *peer_fin_seq_) {
    ++rcv_nxt_;  // the FIN itself
    peer_fin_seq_.reset();
    handle_peer_fin();
  }

  // Ack everything we have (delayed acks are not modelled).
  send_empty(/*ack=*/true, /*rst=*/false);
}

void MonoConnection::deliver(Bytes data) {
  stats_.bytes_to_app += data.size();
  if (app_.on_data) app_.on_data(std::move(data));
}

void MonoConnection::handle_peer_fin() {
  if (app_.on_stream_end) app_.on_stream_end();
  switch (state_) {
    case MonoState::kEstablished:
      state_ = MonoState::kCloseWait;
      break;
    case MonoState::kFinWait1:
      // Our FIN not yet acked: simultaneous close.
      state_ = MonoState::kClosing;
      break;
    case MonoState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

void MonoConnection::enter_time_wait() {
  retx_timer_.stop();
  state_ = MonoState::kTimeWait;
  time_wait_timer_.restart(config_.time_wait);
}

void MonoConnection::become_closed() {
  retx_timer_.stop();
  state_ = MonoState::kClosed;
  if (app_.on_closed) app_.on_closed();
  if (reaper_) reaper_();
}

MonoHost::MonoHost(sim::Simulator& sim, netlayer::Router& router,
                   std::uint8_t host_octet, MonoConfig config)
    : sim_(sim),
      router_(router),
      addr_(netlayer::host_addr(router.id(), host_octet)),
      config_(config),
      isn_(make_rfc793_isn(sim)) {
  router_.set_protocol_handler(
      netlayer::IpProto::kTcp,
      [this](const netlayer::IpHeader& header, Bytes payload) {
        if (header.dst != addr_) return;
        on_datagram(header, std::move(payload));
      });
}

std::uint16_t MonoHost::allocate_port() { return next_ephemeral_++; }

MonoConnection& MonoHost::make_connection(const FourTuple& tuple) {
  auto conn = std::make_unique<MonoConnection>(
      sim_, tuple, config_, [this, tuple](Bytes segment) {
        netlayer::IpHeader header;
        header.protocol = netlayer::IpProto::kTcp;
        header.src = addr_;
        header.dst = tuple.remote_addr;
        router_.send_datagram(header, segment);
      });
  MonoConnection& ref = *conn;
  ref.set_owner_reaper([this, tuple] {
    sim_.schedule(Duration::nanos(0),
                  [this, tuple] { connections_.erase(tuple); });
  });
  connections_.emplace(tuple, std::move(conn));
  return ref;
}

MonoConnection& MonoHost::connect(netlayer::IpAddr remote,
                                  std::uint16_t remote_port) {
  const FourTuple tuple{addr_, allocate_port(), remote, remote_port};
  MonoConnection& conn = make_connection(tuple);
  conn.open_active(isn_->isn(tuple));
  return conn;
}

void MonoHost::listen(std::uint16_t port, AcceptHandler on_accept) {
  acceptors_[port] = std::move(on_accept);
}

void MonoHost::on_datagram(const netlayer::IpHeader& header, Bytes payload) {
  const auto parsed = decode_tcp_segment(payload);
  if (!parsed) return;
  const TcpHeader& h = parsed->header;
  const FourTuple tuple{addr_, h.dst_port, header.src, h.src_port};

  if (const auto it = connections_.find(tuple); it != connections_.end()) {
    it->second->tcp_input(h, std::move(parsed->payload));
    return;
  }
  if (h.flag_syn && !h.flag_ack) {
    const auto acceptor = acceptors_.find(h.dst_port);
    if (acceptor != acceptors_.end()) {
      MonoConnection& conn = make_connection(tuple);
      if (acceptor->second) acceptor->second(conn);
      conn.open_passive(h, isn_->isn(tuple));
      return;
    }
  }
  if (!h.flag_rst) {
    // RST for anything we cannot demultiplex.
    TcpHeader rst;
    rst.src_port = h.dst_port;
    rst.dst_port = h.src_port;
    rst.flag_rst = true;
    rst.flag_ack = true;
    rst.seq = h.ack;
    rst.ack = h.seq + static_cast<std::uint32_t>(parsed->payload.size()) +
              (h.flag_syn ? 1 : 0) + (h.flag_fin ? 1 : 0);
    netlayer::IpHeader out;
    out.protocol = netlayer::IpProto::kTcp;
    out.src = addr_;
    out.dst = header.src;
    router_.send_datagram(out, rst.encode({}));
  }
}

}  // namespace sublayer::transport
