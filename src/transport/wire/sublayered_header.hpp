// The re-architected, sublayered transport header of Fig. 6.
//
// Each sublayer owns its own bits (T3): DM sees only ports; CM sees only
// the connection-control kind, the ISN pair, and the FIN offset; RD sees
// only relative sequence/ack offsets and SACK blocks; OSR sees only the
// receive window and ECN.  The header deliberately does NOT look like
// RFC 793 — but it is isomorphic to it, and the shim sublayer
// (transport/sublayered/shim) performs the bidirectional translation.
//
// Layout on the wire (big-endian):
//
//   DM   src_port:16  dst_port:16
//   CM   kind:8  isn_local:32  isn_peer:32  fin_offset:32
//   -- the following only when kind == kData --
//   RD   seq_offset:32  ack_offset:32  sack_count:8  (start:32 end:32)*
//   OSR  recv_window:32  ecn:8
//   payload...
//
// Offsets are relative to the stream start (first payload byte is offset
// 0); the ISNs that anchor them to absolute TCP sequence space travel in
// the CM header, which is static after the handshake — this redundancy is
// what lets the shim translate statelessly in the sublayered->standard
// direction (§3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "transport/wire/tcp_header.hpp"

namespace sublayer::transport {

enum class CmKind : std::uint8_t {
  kData = 0,
  kSyn = 1,
  kSynAck = 2,
  kFin = 3,
  kFinAck = 4,
  kRst = 5,
  /// Idle keepalive probe/reply (payload-free, like all control kinds).
  /// A peer that stays silent through the probe schedule is declared dead
  /// and the connection aborts — the self-healing answer to half-open
  /// connections left behind by crashes and partitions.
  kProbe = 6,
  kProbeAck = 7,
};

struct DmHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

struct CmHeader {
  CmKind kind = CmKind::kData;
  std::uint32_t isn_local = 0;  // sender's ISN
  std::uint32_t isn_peer = 0;   // sender's view of the peer's ISN (0 on SYN)
  std::uint32_t fin_offset = 0; // stream length; meaningful on FIN
};

struct RdHeader {
  std::uint32_t seq_offset = 0;  // first payload byte, relative to stream
  std::uint32_t ack_offset = 0;  // next expected byte from the peer
  std::vector<SackBlock> sack;   // relative offsets, at most 4 blocks
};

struct OsrHeader {
  std::uint32_t recv_window = 1 << 20;
  bool ecn_echo = false;
};

struct SublayeredSegment {
  DmHeader dm;
  CmHeader cm;
  RdHeader rd;    // valid iff cm.kind == kData
  OsrHeader osr;  // valid iff cm.kind == kData
  Bytes payload;  // non-empty only for kData

  /// Transient, NOT on the wire: set by the host when the enclosing IP
  /// datagram arrived with the congestion-experienced mark.  OSR turns it
  /// into an ECN echo on the next acknowledgement.
  bool ip_ecn_marked = false;

  Bytes encode() const;
  static std::optional<SublayeredSegment> decode(ByteView raw);
  /// Move-decode: reuses `raw`'s buffer for the payload (the header prefix
  /// is erased in place), so demultiplexing a data segment does not copy
  /// the payload bytes a second time.
  static std::optional<SublayeredSegment> decode(Bytes&& raw);
  std::string to_string() const;
};

}  // namespace sublayer::transport
