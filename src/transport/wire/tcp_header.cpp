#include "transport/wire/tcp_header.hpp"

namespace sublayer::transport {
namespace {

constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptSack = 5;

}  // namespace

Bytes TcpHeader::encode(ByteView payload) const {
  Bytes options;
  {
    ByteWriter w(options);
    if (mss) {
      w.u8(kOptMss);
      w.u8(4);
      w.u16(*mss);
    }
    if (!sack.empty()) {
      const auto blocks =
          std::min<std::size_t>(sack.size(), kMaxSackBlocks);
      w.u8(kOptSack);
      w.u8(static_cast<std::uint8_t>(2 + blocks * 8));
      for (std::size_t i = 0; i < blocks; ++i) {
        w.u32(sack[i].start);
        w.u32(sack[i].end);
      }
    }
    while (options.size() % 4 != 0) w.u8(kOptNop);
  }

  const std::size_t header_len = kBaseSize + options.size();
  Bytes out;
  out.reserve(header_len + payload.size());
  ByteWriter w(out);
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  const auto data_offset = static_cast<std::uint8_t>(header_len / 4);
  std::uint8_t flags2 = 0;
  if (flag_cwr) flags2 |= 0x80;
  if (flag_ece) flags2 |= 0x40;
  if (flag_urg) flags2 |= 0x20;
  if (flag_ack) flags2 |= 0x10;
  if (flag_psh) flags2 |= 0x08;
  if (flag_rst) flags2 |= 0x04;
  if (flag_syn) flags2 |= 0x02;
  if (flag_fin) flags2 |= 0x01;
  w.u8(static_cast<std::uint8_t>(data_offset << 4));
  w.u8(flags2);
  w.u16(window);
  w.u16(0);  // checksum: the simulated IP layer is delivery-checked already
  w.u16(urgent);
  w.bytes(options);
  w.bytes(payload);
  return out;
}

std::optional<ParsedTcpSegment> decode_tcp_segment(ByteView segment) {
  if (segment.size() < TcpHeader::kBaseSize) return std::nullopt;
  ByteReader r(segment);
  ParsedTcpSegment p;
  TcpHeader& h = p.header;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t off = r.u8();
  const std::uint8_t flags2 = r.u8();
  h.flag_cwr = (flags2 & 0x80) != 0;
  h.flag_ece = (flags2 & 0x40) != 0;
  h.flag_urg = (flags2 & 0x20) != 0;
  h.flag_ack = (flags2 & 0x10) != 0;
  h.flag_psh = (flags2 & 0x08) != 0;
  h.flag_rst = (flags2 & 0x04) != 0;
  h.flag_syn = (flags2 & 0x02) != 0;
  h.flag_fin = (flags2 & 0x01) != 0;
  h.window = r.u16();
  r.u16();  // checksum
  h.urgent = r.u16();

  const std::size_t header_len = static_cast<std::size_t>(off >> 4) * 4;
  if (header_len < TcpHeader::kBaseSize || header_len > segment.size()) {
    return std::nullopt;
  }
  std::size_t opt_remaining = header_len - TcpHeader::kBaseSize;
  while (opt_remaining > 0) {
    const std::uint8_t kind = r.u8();
    --opt_remaining;
    if (kind == kOptEnd) {
      // Skip remaining padding.
      r.skip(opt_remaining);
      opt_remaining = 0;
      break;
    }
    if (kind == kOptNop) continue;
    if (opt_remaining < 1) return std::nullopt;
    const std::uint8_t len = r.u8();
    --opt_remaining;
    if (len < 2 || static_cast<std::size_t>(len - 2) > opt_remaining) {
      return std::nullopt;
    }
    const std::size_t body = static_cast<std::size_t>(len) - 2;
    if (kind == kOptMss && body == 2) {
      h.mss = r.u16();
    } else if (kind == kOptSack && body % 8 == 0) {
      for (std::size_t i = 0; i < body / 8; ++i) {
        SackBlock b;
        b.start = r.u32();
        b.end = r.u32();
        h.sack.push_back(b);
      }
    } else {
      r.skip(body);  // unknown option: skip
    }
    opt_remaining -= body;
  }
  p.payload = r.rest();
  return p;
}

std::string TcpHeader::flags_string() const {
  std::string s;
  if (flag_syn) s += 'S';
  if (flag_fin) s += 'F';
  if (flag_rst) s += 'R';
  if (flag_ack) s += 'A';
  if (flag_psh) s += 'P';
  if (flag_ece) s += 'E';
  return s.empty() ? "." : s;
}

}  // namespace sublayer::transport
