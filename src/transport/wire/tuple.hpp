// Connection identification: the classic 4-tuple (local/remote address and
// port).  DM is the only sublayer that reads it (T3).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "netlayer/ip.hpp"

namespace sublayer::transport {

struct FourTuple {
  netlayer::IpAddr local_addr = 0;
  std::uint16_t local_port = 0;
  netlayer::IpAddr remote_addr = 0;
  std::uint16_t remote_port = 0;

  FourTuple reversed() const {
    return FourTuple{remote_addr, remote_port, local_addr, local_port};
  }
  friend bool operator==(const FourTuple&, const FourTuple&) = default;
  friend auto operator<=>(const FourTuple& a, const FourTuple& b) {
    return std::tie(a.local_addr, a.local_port, a.remote_addr, a.remote_port) <=>
           std::tie(b.local_addr, b.local_port, b.remote_addr, b.remote_port);
  }
  std::string to_string() const {
    return netlayer::addr_to_string(local_addr) + ":" +
           std::to_string(local_port) + "<->" +
           netlayer::addr_to_string(remote_addr) + ":" +
           std::to_string(remote_port);
  }
};

}  // namespace sublayer::transport
