// Connection identification: the classic 4-tuple (local/remote address and
// port).  DM is the only sublayer that reads it (T3).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <tuple>

#include "common/siphash.hpp"
#include "netlayer/ip.hpp"

namespace sublayer::transport {

struct FourTuple {
  netlayer::IpAddr local_addr = 0;
  std::uint16_t local_port = 0;
  netlayer::IpAddr remote_addr = 0;
  std::uint16_t remote_port = 0;

  FourTuple reversed() const {
    return FourTuple{remote_addr, remote_port, local_addr, local_port};
  }
  friend bool operator==(const FourTuple&, const FourTuple&) = default;
  friend auto operator<=>(const FourTuple& a, const FourTuple& b) {
    return std::tie(a.local_addr, a.local_port, a.remote_addr, a.remote_port) <=>
           std::tie(b.local_addr, b.local_port, b.remote_addr, b.remote_port);
  }
  std::string to_string() const {
    return netlayer::addr_to_string(local_addr) + ":" +
           std::to_string(local_port) + "<->" +
           netlayer::addr_to_string(remote_addr) + ":" +
           std::to_string(remote_port);
  }
};

/// SipHash-2-4 of the packed tuple fields for the open-addressing demux
/// tables.  The key is fixed so a given seed replays identically; the PRF
/// still spreads adversarially-chosen tuples across buckets far better
/// than any shift-and-xor of the raw fields would.
struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const {
    static constexpr SipHashKey kKey{0x736c6179'64656d75ull,
                                     0x782d7461'626c6573ull};
    std::array<std::uint8_t, 12> packed;
    const auto put32 = [&](int at, std::uint32_t v) {
      packed[at] = static_cast<std::uint8_t>(v);
      packed[at + 1] = static_cast<std::uint8_t>(v >> 8);
      packed[at + 2] = static_cast<std::uint8_t>(v >> 16);
      packed[at + 3] = static_cast<std::uint8_t>(v >> 24);
    };
    put32(0, t.local_addr);
    put32(4, t.remote_addr);
    packed[8] = static_cast<std::uint8_t>(t.local_port);
    packed[9] = static_cast<std::uint8_t>(t.local_port >> 8);
    packed[10] = static_cast<std::uint8_t>(t.remote_port);
    packed[11] = static_cast<std::uint8_t>(t.remote_port >> 8);
    return static_cast<std::size_t>(
        siphash24(kKey, ByteView(packed.data(), packed.size())));
  }
};

}  // namespace sublayer::transport
