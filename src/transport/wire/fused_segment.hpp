// Transport-side compile-time fusion of the sublayered header chain
// DM -> CM -> RD -> OSR (Fig. 6).  Each sublayer's wire bits are a static
// stage; HeaderChain folds the stages into one straight-line encode and
// one straight-line decode, so crossing a header sublayer boundary costs
// nothing at runtime.  SublayeredSegment::encode/decode route through the
// fused chain (byte-identical to the hand-rolled writer it replaced —
// pinned by the transport wire tests).
//
// DynamicHeaderChain is the same four stages wired through per-stage
// function pointers: one indirect call per sublayer boundary, the
// dynamic-dispatch baseline that E5/E7 benchmark the fused chain against.
#pragma once

#include <algorithm>
#include <stdexcept>

#include "common/bytes.hpp"
#include "transport/wire/sublayered_header.hpp"

namespace sublayer::transport {

// ---- Per-sublayer header stages --------------------------------------------
//
// Stage shape: static write(segment, writer) appends the sublayer's bits;
// static read(reader, segment) parses them, false on a malformed field.
// RD and OSR own bits only on data segments (their state is meaningless on
// control segments), so both gate on CM's kind — sublayer coupling is
// one-directional and explicit, exactly as on the wire.

struct DmStage {
  static void write(const SublayeredSegment& s, ByteWriter& w) {
    w.u16(s.dm.src_port);
    w.u16(s.dm.dst_port);
  }
  static bool read(ByteReader& r, SublayeredSegment& s) {
    s.dm.src_port = r.u16();
    s.dm.dst_port = r.u16();
    return true;
  }
};

struct CmStage {
  static void write(const SublayeredSegment& s, ByteWriter& w) {
    w.u8(static_cast<std::uint8_t>(s.cm.kind));
    w.u32(s.cm.isn_local);
    w.u32(s.cm.isn_peer);
    w.u32(s.cm.fin_offset);
  }
  static bool read(ByteReader& r, SublayeredSegment& s) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(CmKind::kProbeAck)) return false;
    s.cm.kind = static_cast<CmKind>(kind);
    s.cm.isn_local = r.u32();
    s.cm.isn_peer = r.u32();
    s.cm.fin_offset = r.u32();
    return true;
  }
};

struct RdStage {
  static void write(const SublayeredSegment& s, ByteWriter& w) {
    if (s.cm.kind != CmKind::kData) return;
    w.u32(s.rd.seq_offset);
    w.u32(s.rd.ack_offset);
    const auto blocks =
        std::min<std::size_t>(s.rd.sack.size(), TcpHeader::kMaxSackBlocks);
    w.u8(static_cast<std::uint8_t>(blocks));
    for (std::size_t i = 0; i < blocks; ++i) {
      w.u32(s.rd.sack[i].start);
      w.u32(s.rd.sack[i].end);
    }
  }
  static bool read(ByteReader& r, SublayeredSegment& s) {
    if (s.cm.kind != CmKind::kData) return true;
    s.rd.seq_offset = r.u32();
    s.rd.ack_offset = r.u32();
    const std::uint8_t blocks = r.u8();
    if (blocks > TcpHeader::kMaxSackBlocks) return false;
    for (int i = 0; i < blocks; ++i) {
      SackBlock b;
      b.start = r.u32();
      b.end = r.u32();
      s.rd.sack.push_back(b);
    }
    return true;
  }
};

struct OsrStage {
  static void write(const SublayeredSegment& s, ByteWriter& w) {
    if (s.cm.kind != CmKind::kData) return;
    w.u32(s.osr.recv_window);
    w.u8(s.osr.ecn_echo ? 1 : 0);
  }
  static bool read(ByteReader& r, SublayeredSegment& s) {
    if (s.cm.kind != CmKind::kData) return true;
    s.osr.recv_window = r.u32();
    s.osr.ecn_echo = r.u8() != 0;
    return true;
  }
};

// ---- Composers -------------------------------------------------------------

/// Compile-time composition: the fold expressions chain the stages into
/// one inlined write and one short-circuiting read.
template <class... Stages>
struct HeaderChain {
  static void write(const SublayeredSegment& s, ByteWriter& w) {
    (Stages::write(s, w), ...);
  }
  /// False on the first malformed stage; ByteReader underflow propagates
  /// as std::out_of_range exactly like the unfused parser did.
  static bool read(ByteReader& r, SublayeredSegment& s) {
    return (Stages::read(r, s) && ...);
  }
};

using SublayeredHeaderChain = HeaderChain<DmStage, CmStage, RdStage, OsrStage>;

/// The same stages behind per-stage function pointers: every sublayer
/// boundary is an indirect call the optimizer cannot see through (the
/// moral equivalent of the pre-fusion virtual wiring).  Bench baseline
/// only — the product path uses SublayeredHeaderChain.
class DynamicHeaderChain {
 public:
  using WriteFn = void (*)(const SublayeredSegment&, ByteWriter&);
  using ReadFn = bool (*)(ByteReader&, SublayeredSegment&);

  static const DynamicHeaderChain& instance() {
    static const DynamicHeaderChain chain;
    return chain;
  }

  void write(const SublayeredSegment& s, ByteWriter& w) const {
    for (const auto& st : stages_) st.write(s, w);
  }
  bool read(ByteReader& r, SublayeredSegment& s) const {
    for (const auto& st : stages_) {
      if (!st.read(r, s)) return false;
    }
    return true;
  }

 private:
  struct Stage {
    WriteFn write;
    ReadFn read;
  };
  DynamicHeaderChain()
      : stages_{{&DmStage::write, &DmStage::read},
                {&CmStage::write, &CmStage::read},
                {&RdStage::write, &RdStage::read},
                {&OsrStage::write, &OsrStage::read}} {}

  Stage stages_[4];
};

}  // namespace sublayer::transport
