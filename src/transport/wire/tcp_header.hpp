// RFC 793 TCP segment header (plus the MSS and SACK options), used by the
// monolithic baseline transport and by the shim sublayer when a sublayered
// endpoint interoperates with a standard one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace sublayer::transport {

struct SackBlock {
  std::uint32_t start = 0;  // absolute sequence numbers [start, end)
  std::uint32_t end = 0;
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool flag_fin = false;
  bool flag_syn = false;
  bool flag_rst = false;
  bool flag_psh = false;
  bool flag_ack = false;
  bool flag_urg = false;
  bool flag_ece = false;  // ECN echo (congestion signal for the peer's OSR)
  bool flag_cwr = false;
  std::uint16_t window = 65535;
  std::uint16_t urgent = 0;
  /// Options actually modelled: MSS (SYN only) and SACK blocks.
  std::optional<std::uint16_t> mss;
  std::vector<SackBlock> sack;  // at most 4 blocks fit

  static constexpr std::size_t kBaseSize = 20;
  static constexpr std::size_t kMaxSackBlocks = 4;

  /// header (with options, padded to a 4-byte boundary) · payload.
  Bytes encode(ByteView payload) const;

  std::string flags_string() const;
};

struct ParsedTcpSegment {
  TcpHeader header;
  Bytes payload;
};
std::optional<ParsedTcpSegment> decode_tcp_segment(ByteView segment);

/// Modular 32-bit sequence comparison: a < b in sequence space.
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

}  // namespace sublayer::transport
