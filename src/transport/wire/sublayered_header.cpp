#include "transport/wire/sublayered_header.hpp"
#include <stdexcept>

#include <cstdio>

namespace sublayer::transport {

Bytes SublayeredSegment::encode() const {
  Bytes out;
  // DM(4) + CM(13), plus RD/OSR fixed fields (14) + SACK blocks + payload
  // for data segments: reserve once, write once.
  out.reserve(17 + (cm.kind == CmKind::kData
                        ? 14 + 8 * rd.sack.size() + payload.size()
                        : 0));
  ByteWriter w(out);
  // DM sublayer bits.
  w.u16(dm.src_port);
  w.u16(dm.dst_port);
  // CM sublayer bits.
  w.u8(static_cast<std::uint8_t>(cm.kind));
  w.u32(cm.isn_local);
  w.u32(cm.isn_peer);
  w.u32(cm.fin_offset);
  if (cm.kind == CmKind::kData) {
    // RD sublayer bits.
    w.u32(rd.seq_offset);
    w.u32(rd.ack_offset);
    const auto blocks =
        std::min<std::size_t>(rd.sack.size(), TcpHeader::kMaxSackBlocks);
    w.u8(static_cast<std::uint8_t>(blocks));
    for (std::size_t i = 0; i < blocks; ++i) {
      w.u32(rd.sack[i].start);
      w.u32(rd.sack[i].end);
    }
    // OSR sublayer bits.
    w.u32(osr.recv_window);
    w.u8(osr.ecn_echo ? 1 : 0);
    w.bytes(payload);
  }
  return out;
}

namespace {

/// Parses everything up to (not including) the payload into `s`.  On
/// success the reader is positioned at the first payload byte; a data
/// segment's payload is whatever remains.
bool decode_headers(ByteReader& r, SublayeredSegment& s) {
  try {
    s.dm.src_port = r.u16();
    s.dm.dst_port = r.u16();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(CmKind::kProbeAck)) return false;
    s.cm.kind = static_cast<CmKind>(kind);
    s.cm.isn_local = r.u32();
    s.cm.isn_peer = r.u32();
    s.cm.fin_offset = r.u32();
    if (s.cm.kind == CmKind::kData) {
      s.rd.seq_offset = r.u32();
      s.rd.ack_offset = r.u32();
      const std::uint8_t blocks = r.u8();
      if (blocks > TcpHeader::kMaxSackBlocks) return false;
      for (int i = 0; i < blocks; ++i) {
        SackBlock b;
        b.start = r.u32();
        b.end = r.u32();
        s.rd.sack.push_back(b);
      }
      s.osr.recv_window = r.u32();
      s.osr.ecn_echo = r.u8() != 0;
    } else if (r.remaining() != 0) {
      return false;  // control segments carry no payload
    }
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

}  // namespace

std::optional<SublayeredSegment> SublayeredSegment::decode(ByteView raw) {
  ByteReader r(raw);
  SublayeredSegment s;
  if (!decode_headers(r, s)) return std::nullopt;
  if (s.cm.kind == CmKind::kData) s.payload = r.rest();
  return s;
}

std::optional<SublayeredSegment> SublayeredSegment::decode(Bytes&& raw) {
  ByteReader r(raw);
  SublayeredSegment s;
  if (!decode_headers(r, s)) return std::nullopt;
  if (s.cm.kind == CmKind::kData) {
    const std::size_t header_size = raw.size() - r.remaining();
    raw.erase(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(header_size));
    s.payload = std::move(raw);
  }
  return s;
}

std::string SublayeredSegment::to_string() const {
  static constexpr const char* kKinds[] = {"DATA",   "SYN",   "SYNACK",
                                           "FIN",    "FINACK", "RST",
                                           "PROBE",  "PROBEACK"};
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s %u->%u seq=%u ack=%u len=%zu win=%u sack=%zu",
                kKinds[static_cast<int>(cm.kind)], dm.src_port, dm.dst_port,
                rd.seq_offset, rd.ack_offset, payload.size(), osr.recv_window,
                rd.sack.size());
  return buf;
}

}  // namespace sublayer::transport
