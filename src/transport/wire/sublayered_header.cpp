#include "transport/wire/sublayered_header.hpp"
#include <stdexcept>

#include <cstdio>

#include "transport/wire/fused_segment.hpp"

namespace sublayer::transport {

Bytes SublayeredSegment::encode() const {
  Bytes out;
  // DM(4) + CM(13), plus RD/OSR fixed fields (14) + SACK blocks + payload
  // for data segments: reserve once, write once.
  out.reserve(17 + (cm.kind == CmKind::kData
                        ? 14 + 8 * rd.sack.size() + payload.size()
                        : 0));
  ByteWriter w(out);
  // DM -> CM -> RD -> OSR, fused at compile time (fused_segment.hpp): the
  // four sublayers' writers inline into one straight-line sequence.
  SublayeredHeaderChain::write(*this, w);
  if (cm.kind == CmKind::kData) w.bytes(payload);
  return out;
}

namespace {

/// Parses everything up to (not including) the payload into `s`.  On
/// success the reader is positioned at the first payload byte; a data
/// segment's payload is whatever remains.
bool decode_headers(ByteReader& r, SublayeredSegment& s) {
  try {
    if (!SublayeredHeaderChain::read(r, s)) return false;
    if (s.cm.kind != CmKind::kData && r.remaining() != 0) {
      return false;  // control segments carry no payload
    }
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

}  // namespace

std::optional<SublayeredSegment> SublayeredSegment::decode(ByteView raw) {
  ByteReader r(raw);
  SublayeredSegment s;
  if (!decode_headers(r, s)) return std::nullopt;
  if (s.cm.kind == CmKind::kData) s.payload = r.rest();
  return s;
}

std::optional<SublayeredSegment> SublayeredSegment::decode(Bytes&& raw) {
  ByteReader r(raw);
  SublayeredSegment s;
  if (!decode_headers(r, s)) return std::nullopt;
  if (s.cm.kind == CmKind::kData) {
    const std::size_t header_size = raw.size() - r.remaining();
    raw.erase(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(header_size));
    s.payload = std::move(raw);
  }
  return s;
}

std::string SublayeredSegment::to_string() const {
  static constexpr const char* kKinds[] = {"DATA",   "SYN",   "SYNACK",
                                           "FIN",    "FINACK", "RST",
                                           "PROBE",  "PROBEACK"};
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s %u->%u seq=%u ack=%u len=%zu win=%u sack=%zu",
                kKinds[static_cast<int>(cm.kind)], dm.src_port, dm.dst_port,
                rd.seq_offset, rd.ack_offset, payload.size(), osr.recv_window,
                rd.sack.size());
  return buf;
}

}  // namespace sublayer::transport
