#include "transport/sublayered/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/snapshot.hpp"
#include "telemetry/span.hpp"

namespace sublayer::transport {
namespace {

/// Host-synthesized RSTs never pass through a CM instance, but they are
/// CM-level traffic all the same; record the down-crossing manually so
/// the CM boundary stays balanced under unmatched-segment storms.
void note_synthesized_rst() {
  auto& tracer = telemetry::SpanTracer::instance();
  tracer.crossing(tracer.intern("transport.cm"), telemetry::Dir::kDown, 0);
}

}  // namespace

TcpHost::TcpHost(sim::Simulator& sim, netlayer::Router& router,
                 std::uint8_t host_octet, HostConfig config)
    : sim_(sim),
      router_(router),
      addr_(netlayer::host_addr(router.id(), host_octet)),
      config_(config),
      demux_(addr_),
      isn_(make_isn(config.isn, sim, config.isn_key_seed)) {
  if (&sim != &router.sim()) {
    // A host scheduling on a different simulator than its router would put
    // its timers on another shard's wheel — undefined under the parallel
    // engine and always a topology-construction bug.
    throw std::logic_error("TcpHost: sim is not the router's simulator");
  }
  const auto proto = config_.wire_rfc793 ? netlayer::IpProto::kTcp
                                         : netlayer::IpProto::kSublayered;

  demux_.set_datagram_sink(
      [this, proto](netlayer::IpAddr dst, const SublayeredSegment& segment) {
        netlayer::IpHeader header;
        header.protocol = proto;
        header.src = addr_;
        header.dst = dst;
        const Bytes wire = config_.wire_rfc793 ? shim_.outgoing(dst, segment)
                                               : segment.encode();
        router_.send_datagram(header, wire);
      });

  demux_.set_unmatched_handler(
      [this](const FourTuple& tuple, const SublayeredSegment& segment) {
        if (segment.cm.kind == CmKind::kRst) return;  // never RST a RST
        SublayeredSegment rst;
        rst.cm.kind = CmKind::kRst;
        rst.cm.isn_local = segment.cm.isn_peer;
        rst.cm.isn_peer = segment.cm.isn_local;
        note_synthesized_rst();
        demux_.send(tuple, std::move(rst));
      });

  router_.set_protocol_handler(
      proto, [this](const netlayer::IpHeader& header, Bytes payload) {
        if (header.dst != addr_) return;  // another host on this router
        if (config_.wire_rfc793) {
          for (auto& segment : shim_.incoming(header.src, payload)) {
            segment.ip_ecn_marked = header.ecn_ce;
            demux_.route(header.src, std::move(segment));
          }
        } else {
          auto segment = SublayeredSegment::decode(payload);
          if (!segment) {
            demux_.on_datagram(header.src, std::move(payload));  // count it
            return;
          }
          segment->ip_ecn_marked = header.ecn_ce;
          demux_.route(header.src, std::move(*segment));
        }
      });
}

Connection& TcpHost::make_connection(const FourTuple& tuple) {
  auto conn = std::make_unique<Connection>(sim_, demux_, *isn_, tuple,
                                           config_.connection);
  Connection& ref = *conn;
  connections_.try_emplace(tuple, std::move(conn));
  return ref;
}

void TcpHost::reap(const FourTuple& tuple) {
  if (!config_.reap_closed) return;
  // Deletion is deferred: reap() is typically called from inside the
  // connection's own callback stack.
  sim_.schedule(Duration::nanos(0), [this, tuple] {
    connections_.erase(tuple);
  });
}

Connection& TcpHost::connect(netlayer::IpAddr remote,
                             std::uint16_t remote_port) {
  const FourTuple tuple{addr_, demux_.allocate_port(), remote, remote_port};
  Connection& conn = make_connection(tuple);
  conn.set_owner_reaper([this, tuple] { reap(tuple); });
  conn.open_active();
  return conn;
}

void TcpHost::listen(std::uint16_t port, AcceptHandler on_accept) {
  *acceptors_.try_emplace(port).first = std::move(on_accept);
  demux_.listen(port, [this](const FourTuple& tuple,
                             SublayeredSegment segment) {
    // Which segments may create a connection depends on the CM scheme:
    // a SYN for the handshake scheme; the first data segment (or a FIN,
    // for a zero-length stream) for the timer-based scheme.
    const bool creates_connection =
        config_.connection.cm.scheme == CmScheme::kHandshake
            ? segment.cm.kind == CmKind::kSyn
            : segment.cm.kind == CmKind::kData ||
                  segment.cm.kind == CmKind::kFin;
    if (!creates_connection) {
      // Stray non-SYN for an unbound tuple on a listening port: RST it.
      if (segment.cm.kind != CmKind::kRst) {
        SublayeredSegment rst;
        rst.cm.kind = CmKind::kRst;
        rst.cm.isn_local = segment.cm.isn_peer;
        rst.cm.isn_peer = segment.cm.isn_local;
        note_synthesized_rst();
        demux_.send(tuple, std::move(rst));
      }
      return;
    }
    Connection& conn = make_connection(tuple);
    conn.set_owner_reaper([this, tuple] { reap(tuple); });
    if (const AcceptHandler* acceptor = acceptors_.find(tuple.local_port);
        acceptor != nullptr && *acceptor) {
      // The application installs its callbacks before the handshake
      // proceeds, so no events are lost.  Copied, not referenced: the
      // callback may listen() on another port and rehash the table.
      const AcceptHandler on_accept = *acceptor;
      on_accept(conn);
    }
    conn.open_passive(segment);
  });
}

Connection* TcpHost::find(const FourTuple& tuple) {
  auto* slot = connections_.find(tuple);
  return slot ? slot->get() : nullptr;
}

void TcpHost::save(sim::SnapshotWriter& w) const {
  w.begin_section("transport.host");
  isn_->save(w);
  demux_.save(w);
  // Deterministic snapshot bytes: the hash table's visit order depends on
  // its insertion/erase history, so collect and sort the tuples.
  std::vector<const Connection*> conns;
  connections_.for_each(
      [&](const FourTuple&, const std::unique_ptr<Connection>& c) {
        conns.push_back(c.get());
      });
  std::sort(conns.begin(), conns.end(),
            [](const Connection* a, const Connection* b) {
              return a->tuple() < b->tuple();
            });
  w.u64(conns.size());
  for (const Connection* conn : conns) {
    save_tuple(w, conn->tuple());
    conn->save(w);
  }
  w.end_section();
}

void TcpHost::restore(sim::SnapshotReader& r) {
  r.begin_section("transport.host");
  if (!connections_.empty()) {
    throw sim::SnapshotError(
        "TcpHost::restore: host already has connections — restore must run "
        "on a freshly constructed host");
  }
  isn_->restore(r);
  demux_.restore(r);
  const std::uint64_t nconns = r.u64();
  for (std::uint64_t i = 0; i < nconns; ++i) {
    const FourTuple tuple = restore_tuple(r);
    Connection& conn = make_connection(tuple);
    conn.set_owner_reaper([this, tuple] { reap(tuple); });
    conn.restore(r);
    // A passively opened connection belongs to a server application: fire
    // its port's acceptor (the application listen()ed before the restore)
    // so it re-attaches callbacks — the restore-time analogue of the
    // pre-handshake announcement in listen().
    if (conn.passive()) {
      if (const AcceptHandler* acceptor =
              acceptors_.find(tuple.local_port);
          acceptor != nullptr && *acceptor) {
        const AcceptHandler on_accept = *acceptor;
        on_accept(conn);
      }
    }
  }
  r.end_section();
}

}  // namespace sublayer::transport
