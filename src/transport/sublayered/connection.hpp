// One sublayered transport connection: the composition of Fig. 5.
//
//   application byte stream
//        │  send()/on_data
//   ┌────▼─────┐   "segment ready" / ack+loss summaries
//   │   OSR    │◄──────────────────────────────┐
//   └────┬─────┘                               │
//   ┌────▼─────┐   validated DATA segments     │
//   │    RD    │◄──────────────┐               │
//   └────┬─────┘               │               │
//   ┌────▼─────┐  CM stamps ISNs on data; owns │ SYN/FIN/RST
//   │    CM    ├───────────────┴───────────────┘
//   └────┬─────┘
//   ┌────▼─────┐  ports only
//   │    DM    │
//   └──────────┘
//
// This class contains NO protocol logic of its own — it is pure wiring of
// the four sublayers' narrow interfaces, which is the structural point of
// the paper: each mechanism lives in exactly one sublayer.
#pragma once

#include <functional>
#include <string>

#include "transport/sublayered/cm.hpp"
#include "transport/sublayered/dm.hpp"
#include "transport/sublayered/osr.hpp"
#include "transport/sublayered/rd.hpp"

namespace sublayer::transport {

struct ConnectionConfig {
  CmConfig cm;
  RdConfig rd;
  OsrConfig osr;
};

class Connection {
 public:
  struct AppCallbacks {
    std::function<void()> on_established;
    std::function<void(Bytes)> on_data;
    /// The peer's byte stream ended (its FIN offset was reached).
    std::function<void()> on_stream_end;
    /// Connection fully closed; the object may be reclaimed.
    std::function<void()> on_closed;
    std::function<void(std::string reason)> on_reset;
  };

  Connection(sim::Simulator& sim, Demux& demux, IsnProvider& isn,
             const FourTuple& tuple, const ConnectionConfig& config);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_app_callbacks(AppCallbacks callbacks) { app_ = std::move(callbacks); }

  /// Owner (host) hook, fired on close or reset in addition to the app
  /// callbacks — used to reclaim the connection object.
  void set_owner_reaper(std::function<void()> reaper) {
    reaper_ = std::move(reaper);
  }

  void open_active();
  void open_passive(const SublayeredSegment& syn);

  // ---- application API ----
  void send(Bytes data);
  /// Graceful close: the FIN goes out once everything written is acked.
  void close();
  void abort();
  /// Manual-consume mode: application read `n` bytes.
  void consume(std::uint64_t n);

  const FourTuple& tuple() const { return tuple_; }
  CmState state() const { return cm_->state(); }
  bool fully_closed() const { return closed_; }
  /// True for connections created by a listener (passive open) — the host
  /// uses this on restore to re-announce the connection to its acceptor.
  bool passive() const { return passive_; }

  const CmInterface& cm() const { return *cm_; }
  const ReliableDelivery& rd() const { return rd_; }
  const Osr& osr() const { return osr_; }

  /// Checkpoint/restore (sim/snapshot.hpp): all four sublayers plus the
  /// wiring flags.  restore() runs on a freshly constructed connection for
  /// the same tuple and config — it re-binds the DM entry (rebuilding the
  /// flow table) but fires no callbacks; the application re-attaches its
  /// handlers via set_app_callbacks afterwards.  The owning host brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  void maybe_issue_fin();

  FourTuple tuple_;
  Demux& demux_;
  AppCallbacks app_;
  std::function<void()> reaper_;
  std::unique_ptr<CmInterface> cm_;
  ReliableDelivery rd_;
  Osr osr_;
  bool close_requested_ = false;
  bool fin_issued_ = false;
  bool closed_ = false;
  bool bound_ = false;
  bool passive_ = false;
};

}  // namespace sublayer::transport
