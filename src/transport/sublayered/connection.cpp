#include "transport/sublayered/connection.hpp"

#include "sim/snapshot.hpp"

namespace sublayer::transport {

Connection::Connection(sim::Simulator& sim, Demux& demux, IsnProvider& isn,
                       const FourTuple& tuple, const ConnectionConfig& config)
    : tuple_(tuple),
      demux_(demux),
      cm_(make_cm(
          sim, isn, config.cm,
          CmInterface::Callbacks{
              /*on_established=*/
              [this](std::uint32_t, std::uint32_t) {
                osr_.set_established();
                rd_.send_pure_ack();  // completes the peer's handshake
                if (close_requested_) maybe_issue_fin();
                if (app_.on_established) app_.on_established();
              },
              /*on_peer_fin=*/
              [this](std::uint64_t length) {
                osr_.set_peer_stream_length(length);
              },
              /*on_local_fin_acked=*/[] {},
              /*on_closed=*/
              [this] {
                closed_ = true;
                if (bound_) {
                  demux_.unbind(tuple_);
                  bound_ = false;
                }
                if (app_.on_closed) app_.on_closed();
                if (reaper_) reaper_();
              },
              /*on_reset=*/
              [this](std::string reason) {
                closed_ = true;
                if (bound_) {
                  demux_.unbind(tuple_);
                  bound_ = false;
                }
                if (app_.on_reset) app_.on_reset(std::move(reason));
                if (reaper_) reaper_();
              },
              /*send=*/
              [this](SublayeredSegment s) { demux_.send(tuple_, std::move(s)); },
              /*deliver_data=*/
              [this](SublayeredSegment s) {
                // ECN marks ride on the IP datagram; OSR owns the echo.
                if (s.ip_ecn_marked && !s.payload.empty()) {
                  osr_.note_ecn_mark();
                }
                rd_.on_data_segment(s);
              },
              /*request_ack=*/[this] { rd_.send_pure_ack(); },
          })),
      rd_(sim, config.rd,
          ReliableDelivery::Callbacks{
              /*send=*/
              [this](SublayeredSegment s) {
                cm_->stamp_data(s);
                demux_.send(tuple_, std::move(s));
              },
              /*deliver=*/
              [this](std::uint64_t offset, Bytes data) {
                osr_.on_rd_deliver(offset, std::move(data));
              },
              /*on_ack_feedback=*/
              [this](const AckFeedback& fb) {
                osr_.on_ack_feedback(fb);
                if (close_requested_) maybe_issue_fin();
              },
              /*on_loss=*/[this](LossKind kind) { osr_.on_loss(kind); },
              /*osr_header=*/[this] { return osr_.current_header(); },
              /*on_peer_dead=*/
              [this] { cm_->abort("retransmission limit reached"); },
          }),
      osr_(sim, config.osr,
           Osr::Callbacks{
               /*rd_send=*/
               [this](std::uint64_t offset, Bytes data) {
                 rd_.send_segment(offset, std::move(data));
               },
               /*on_data=*/
               [this](Bytes data) {
                 if (app_.on_data) app_.on_data(std::move(data));
               },
               /*on_stream_end=*/
               [this] {
                 if (app_.on_stream_end) app_.on_stream_end();
               },
               /*window_update=*/[this] { rd_.send_pure_ack(); },
           }) {}

Connection::~Connection() {
  if (bound_) demux_.unbind(tuple_);
}

void Connection::open_active() {
  bound_ = demux_.bind(tuple_, [this](SublayeredSegment s) {
    cm_->on_segment(std::move(s));
  });
  cm_->open_active(tuple_);
}

void Connection::open_passive(const SublayeredSegment& syn) {
  passive_ = true;
  bound_ = demux_.bind(tuple_, [this](SublayeredSegment s) {
    cm_->on_segment(std::move(s));
  });
  cm_->open_passive(tuple_, syn);
}

void Connection::send(Bytes data) { osr_.send(std::move(data)); }

void Connection::close() {
  close_requested_ = true;
  maybe_issue_fin();
}

void Connection::maybe_issue_fin() {
  if (fin_issued_ || cm_->state() != CmState::kEstablished) return;
  if (!osr_.all_sent_and_acked()) return;
  fin_issued_ = true;
  cm_->close(osr_.stream_written());
}

void Connection::abort() { cm_->abort("local abort"); }

void Connection::consume(std::uint64_t n) { osr_.consume(n); }

void Connection::save(sim::SnapshotWriter& w) const {
  w.b(close_requested_);
  w.b(fin_issued_);
  w.b(closed_);
  w.b(bound_);
  w.b(passive_);
  cm_->save(w);
  rd_.save(w);
  osr_.save(w);
}

void Connection::restore(sim::SnapshotReader& r) {
  close_requested_ = r.b();
  fin_issued_ = r.b();
  closed_ = r.b();
  const bool was_bound = r.b();
  passive_ = r.b();
  cm_->restore(r);
  rd_.restore(r);
  osr_.restore(r);
  if (was_bound && !bound_) {
    bound_ = demux_.bind(tuple_, [this](SublayeredSegment s) {
      cm_->on_segment(std::move(s));
    });
    if (!bound_) {
      throw sim::SnapshotError("Connection: tuple " + tuple_.to_string() +
                               " already bound on the restore graph");
    }
  }
}

}  // namespace sublayer::transport
