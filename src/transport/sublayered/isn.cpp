#include "transport/sublayered/isn.hpp"

#include <algorithm>

#include "sim/snapshot.hpp"

namespace sublayer::transport {
namespace {

Bytes tuple_bytes(const FourTuple& t) {
  Bytes b;
  ByteWriter w(b);
  w.u32(t.local_addr);
  w.u16(t.local_port);
  w.u32(t.remote_addr);
  w.u16(t.remote_port);
  return b;
}

class Rfc793Isn final : public IsnProvider {
 public:
  explicit Rfc793Isn(sim::Simulator& sim) : sim_(sim) {}
  std::string name() const override { return "rfc793-clock"; }
  std::uint32_t isn(const FourTuple&) override {
    // One tick per 4 microseconds, as in the RFC's suggested generator.
    return static_cast<std::uint32_t>(sim_.now().ns() / 4000);
  }

 private:
  sim::Simulator& sim_;
};

class Rfc1948Isn final : public IsnProvider {
 public:
  Rfc1948Isn(sim::Simulator& sim, SipHashKey key) : sim_(sim), key_(key) {}
  std::string name() const override { return "rfc1948-hash"; }
  std::uint32_t isn(const FourTuple& t) override {
    const std::uint32_t clock =
        static_cast<std::uint32_t>(sim_.now().ns() / 4000);
    return clock +
           static_cast<std::uint32_t>(siphash24(key_, tuple_bytes(t)));
  }

 private:
  sim::Simulator& sim_;
  SipHashKey key_;
};

class WatsonIsn final : public IsnProvider {
 public:
  explicit WatsonIsn(sim::Simulator& sim) : sim_(sim) {}
  std::string name() const override { return "watson-timer"; }
  std::uint32_t isn(const FourTuple&) override {
    // Strictly monotonic: max(clock, last + stride).  The stride guarantees
    // distinct ISNs for connections opened within the same tick; the clock
    // bounds how soon a sequence range can recur.
    const std::uint32_t clock =
        static_cast<std::uint32_t>(sim_.now().ns() / 4000);
    last_ = std::max(clock, last_ + kStride);
    return last_;
  }

  void save(sim::SnapshotWriter& w) const override { w.u32(last_); }
  void restore(sim::SnapshotReader& r) override { last_ = r.u32(); }

 private:
  static constexpr std::uint32_t kStride = 1 << 12;
  sim::Simulator& sim_;
  std::uint32_t last_ = 0;
};

}  // namespace

std::unique_ptr<IsnProvider> make_rfc793_isn(sim::Simulator& sim) {
  return std::make_unique<Rfc793Isn>(sim);
}
std::unique_ptr<IsnProvider> make_rfc1948_isn(sim::Simulator& sim,
                                              SipHashKey key) {
  return std::make_unique<Rfc1948Isn>(sim, key);
}
std::unique_ptr<IsnProvider> make_watson_isn(sim::Simulator& sim) {
  return std::make_unique<WatsonIsn>(sim);
}

std::unique_ptr<IsnProvider> make_isn(IsnKind kind, sim::Simulator& sim,
                                      std::uint64_t key_seed) {
  switch (kind) {
    case IsnKind::kRfc793:
      return make_rfc793_isn(sim);
    case IsnKind::kRfc1948:
      return make_rfc1948_isn(sim, SipHashKey{key_seed, ~key_seed});
    case IsnKind::kWatson:
      return make_watson_isn(sim);
  }
  throw std::invalid_argument("unknown ISN kind");
}

}  // namespace sublayer::transport
