// Initial-sequence-number providers for the CM sublayer.
//
// The paper (§3) makes ISN choice the *encapsulated mechanism* of CM: the
// sublayer's contract is only "ISNs are unique in time and hard to
// predict", and the mechanism behind it is swappable (Challenge 5):
//
//  - RFC 793 (1981): low-order bits of a clock, unique in time but
//    trivially predictable.
//  - RFC 1948: keyed hash of the 4-tuple plus the clock — unpredictable
//    off-path.
//  - Watson's timer-based scheme [31]: interpreted here as a strictly
//    monotonic per-host counter advanced by both the clock and a per-
//    connection stride, bounding reuse by time rather than randomness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/siphash.hpp"
#include "sim/simulator.hpp"
#include "transport/wire/tuple.hpp"

namespace sublayer::transport {

class IsnProvider {
 public:
  virtual ~IsnProvider() = default;
  virtual std::string name() const = 0;
  virtual std::uint32_t isn(const FourTuple& tuple) = 0;

  /// Checkpoint/restore (sim/snapshot.hpp): providers with hidden state
  /// (Watson's monotonic counter) persist it; the clock and keyed-hash
  /// providers are pure functions of time/config and write nothing.
  virtual void save(sim::SnapshotWriter&) const {}
  virtual void restore(sim::SnapshotReader&) {}
};

/// RFC 793: ISN = clock / 4 microseconds (the historical 250 kHz tick).
std::unique_ptr<IsnProvider> make_rfc793_isn(sim::Simulator& sim);

/// RFC 1948: ISN = clock_component + SipHash(key, 4-tuple).
std::unique_ptr<IsnProvider> make_rfc1948_isn(sim::Simulator& sim,
                                              SipHashKey key);

/// Watson-style timer-based: monotonic counter tied to the clock.
std::unique_ptr<IsnProvider> make_watson_isn(sim::Simulator& sim);

enum class IsnKind { kRfc793, kRfc1948, kWatson };
std::unique_ptr<IsnProvider> make_isn(IsnKind kind, sim::Simulator& sim,
                                      std::uint64_t key_seed = 0x1948);

}  // namespace sublayer::transport
