#include "transport/sublayered/rd.hpp"

#include <algorithm>

#include "sim/snapshot.hpp"
#include "telemetry/span.hpp"

namespace sublayer::transport {

ReliableDelivery::ReliableDelivery(sim::Simulator& sim, RdConfig config,
                                   Callbacks callbacks)
    : sim_(sim),
      config_(config),
      cb_(std::move(callbacks)),
      rto_(config.initial_rto),
      rttvar_(Duration::nanos(0)),
      retx_timer_(sim, [this] { on_retx_timer(); }) {
  stats_.segments_sent.bind("transport.rd.segments_sent");
  stats_.bytes_sent.bind("transport.rd.bytes_sent");
  stats_.fast_retransmits.bind("transport.rd.fast_retransmits");
  stats_.timeout_retransmits.bind("transport.rd.timeout_retransmits");
  stats_.acks_sent.bind("transport.rd.acks_sent");
  stats_.acks_received.bind("transport.rd.acks_received");
  stats_.duplicate_acks.bind("transport.rd.duplicate_acks");
  stats_.bytes_delivered_up.bind("transport.rd.bytes_delivered_up");
  stats_.duplicate_bytes_dropped.bind("transport.rd.duplicate_bytes_dropped");
  stats_.sacked_segments_spared.bind("transport.rd.sacked_segments_spared");
  stats_.tail_probes.bind("transport.rd.tail_probes");
  rtt_us_.bind("transport.rd.rtt_us");
  span_ = telemetry::SpanTracer::instance().intern("transport.rd");
}

void ReliableDelivery::send_segment(std::uint64_t offset, Bytes data) {
  Outstanding seg{std::move(data), sim_.now(), 1, false};
  snd_nxt_ = std::max(snd_nxt_, offset + seg.data.size());
  transmit(offset, seg);
  outstanding_.emplace(offset, std::move(seg));
  arm_timer();
}

void ReliableDelivery::transmit(std::uint64_t offset, const Outstanding& seg) {
  SublayeredSegment s;
  s.rd.seq_offset = static_cast<std::uint32_t>(offset);
  s.rd.ack_offset = static_cast<std::uint32_t>(rcv_next_);
  s.rd.sack = build_sack();
  s.osr = cb_.osr_header ? cb_.osr_header() : OsrHeader{};
  s.payload = seg.data;
  ++stats_.segments_sent;
  stats_.bytes_sent += seg.data.size();
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             s.payload.size());
  if (cb_.send) cb_.send(std::move(s));
}

void ReliableDelivery::send_pure_ack() { emit_ack(); }

void ReliableDelivery::emit_ack() {
  SublayeredSegment s;
  s.rd.seq_offset = static_cast<std::uint32_t>(snd_nxt_);
  s.rd.ack_offset = static_cast<std::uint32_t>(rcv_next_);
  s.rd.sack = build_sack();
  s.osr = cb_.osr_header ? cb_.osr_header() : OsrHeader{};
  ++stats_.acks_sent;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown, 0);
  if (cb_.send) cb_.send(std::move(s));
}

std::vector<SackBlock> ReliableDelivery::build_sack() const {
  // Report out-of-order ranges beyond rcv_next_, most recent coverage
  // first is not tracked; low-to-high is fine for our sender.
  std::vector<SackBlock> blocks;
  if (!config_.enable_sack) return blocks;
  for (const auto& [start, end] : received_) {
    if (start <= rcv_next_) continue;
    blocks.push_back(SackBlock{static_cast<std::uint32_t>(start),
                               static_cast<std::uint32_t>(end)});
    if (blocks.size() == TcpHeader::kMaxSackBlocks) break;
  }
  return blocks;
}

void ReliableDelivery::arm_timer() {
  if (outstanding_.empty()) {
    retx_timer_.stop();
    probe_pending_ = false;
    return;
  }
  if (retx_timer_.armed()) return;
  probe_pending_ = false;
  Duration delay = rto_;
  if (config_.enable_tail_probe && srtt_) {
    const Duration probe_delay = *srtt_ * 1.5;
    if (probe_delay < rto_) {
      delay = probe_delay;
      probe_pending_ = true;
    }
  }
  retx_timer_.restart(delay);
}

void ReliableDelivery::on_retx_timer() {
  if (probe_pending_) {
    probe_pending_ = false;
    send_tail_probe();
    retx_timer_.restart(rto_);  // the real RTO backstop still stands
    return;
  }
  on_rto();
}

void ReliableDelivery::send_tail_probe() {
  // One copy of the head hole, with no congestion verdict attached: if it
  // was a tail loss, the returning ack (or its SACK blocks) moves recovery
  // onto the fast path instead of waiting out the RTO.
  auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                         [](const auto& kv) { return !kv.second.sacked; });
  if (it == outstanding_.end()) return;
  ++it->second.transmissions;
  it->second.sent_at = sim_.now();
  ++stats_.tail_probes;
  transmit(it->first, it->second);
}

void ReliableDelivery::on_rto() {
  if (outstanding_.empty()) return;
  // Retransmit the lowest un-SACKed outstanding segment; back off the RTO.
  auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                         [](const auto& kv) { return !kv.second.sacked; });
  if (it == outstanding_.end()) it = outstanding_.begin();
  if (it->second.timeout_retx >= config_.max_retransmits) {
    retx_timer_.stop();
    if (cb_.on_peer_dead) cb_.on_peer_dead();
    return;
  }
  ++it->second.timeout_retx;
  ++it->second.transmissions;
  it->second.sent_at = sim_.now();
  ++stats_.timeout_retransmits;
  // Enter (or extend) loss recovery: every cumulative-ack advance below
  // the recovery point immediately retransmits the next hole, so a burst
  // of losses repairs at one hole per RTT instead of one per backed-off
  // timeout.
  in_fast_recovery_ = true;
  recovery_end_ = std::max(recovery_end_, snd_nxt_);
  transmit(it->first, it->second);
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  retx_timer_.restart(rto_);
  if (cb_.on_loss) cb_.on_loss(LossKind::kTimeout);
}

void ReliableDelivery::note_rtt(Duration sample) {
  rtt_us_.observe(static_cast<std::uint64_t>(sample.ns() / 1000));
  // Jacobson/Karels.
  if (!srtt_) {
    srtt_ = sample;
    rttvar_ = Duration::nanos(sample.ns() / 2);
  } else {
    const std::int64_t err = sample.ns() - srtt_->ns();
    const std::int64_t abs_err = err < 0 ? -err : err;
    rttvar_ = Duration::nanos((3 * rttvar_.ns() + abs_err) / 4);
    srtt_ = Duration::nanos((7 * srtt_->ns() + sample.ns()) / 8);
  }
  rto_ = std::clamp(Duration::nanos(srtt_->ns() + 4 * rttvar_.ns()),
                    config_.min_rto, config_.max_rto);
}

void ReliableDelivery::on_data_segment(const SublayeredSegment& segment) {
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             segment.payload.size());
  process_ack(segment);
  if (!segment.payload.empty()) {
    process_payload(segment);
    // Every data-bearing segment is acknowledged immediately; pure acks
    // are not (that would loop forever).
    emit_ack();
  }
}

void ReliableDelivery::process_ack(const SublayeredSegment& segment) {
  ++stats_.acks_received;
  const std::uint64_t ack = segment.rd.ack_offset;
  std::uint64_t newly_acked = 0;
  std::optional<Duration> rtt;

  // Cumulative ack: drop everything fully below `ack`.
  while (!outstanding_.empty()) {
    auto it = outstanding_.begin();
    const std::uint64_t seg_end = it->first + it->second.data.size();
    if (seg_end > ack) break;
    // SACKed segments were already credited to the CC when the SACK came in.
    if (!it->second.sacked) newly_acked += it->second.data.size();
    if (it->second.transmissions == 1) {  // Karn's rule
      rtt = sim_.now() - it->second.sent_at;
    }
    outstanding_.erase(it);
  }
  // SACK-based loss repair: during recovery, retransmit the un-SACKed
  // holes below the recovery point, at most once per ~RTT per segment
  // and a bounded number per ack (so repair is ack-clocked, not a burst).
  const auto retransmit_holes = [&](int limit, bool force_first = false) {
    // Without SACK there is no evidence about which later segments are
    // missing: behave like classic NewReno and repair one segment per ack.
    if (!config_.enable_sack) limit = 1;
    // Retry pacing.  The head hole blocks all cumulative progress, so it
    // is retried fastest — but still beyond the RTT variance, or queueing
    // jitter turns every deep queue into a burst of duplicates.  Later
    // holes wait a full (unbacked) RTO for their retransmission's ack.
    const Duration pace_head =
        srtt_ ? Duration::nanos(srtt_->ns() + 2 * rttvar_.ns()) : rto_ / 2;
    const Duration pace_rest =
        srtt_ ? std::clamp(Duration::nanos(srtt_->ns() + 4 * rttvar_.ns()),
                           config_.min_rto, config_.max_rto)
              : rto_ / 2;
    int sent = 0;
    bool first_hole = true;
    for (auto& [offset, seg] : outstanding_) {
      if (offset >= recovery_end_ || sent >= limit) break;
      if (seg.sacked) continue;
      // The first hole at episode entry is known-lost (three duplicates
      // vouch for it); afterwards pacing governs.
      const bool forced = force_first && first_hole;
      const Duration pace = first_hole ? pace_head : pace_rest;
      first_hole = false;
      if (!forced && sim_.now() - seg.sent_at < pace) continue;
      ++seg.transmissions;
      seg.sent_at = sim_.now();
      ++stats_.fast_retransmits;
      transmit(offset, seg);
      ++sent;
    }
  };

  if (ack > snd_una_) {
    snd_una_ = ack;
    dupacks_ = 0;
    if (rtt) {
      note_rtt(*rtt);
    } else if (srtt_) {
      // Progress without a sample (acked data had been retransmitted):
      // drop any exponential backoff back to the estimator's value.
      rto_ = std::clamp(Duration::nanos(srtt_->ns() + 4 * rttvar_.ns()),
                        config_.min_rto, config_.max_rto);
    } else {
      rto_ = config_.initial_rto;
    }
    if (in_fast_recovery_) {
      if (snd_una_ >= recovery_end_) {
        in_fast_recovery_ = false;  // the whole window made it across
      } else {
        // Partial ack (NewReno + SACK): more holes remain; repair them
        // without waiting for three more duplicates per hole.
        retransmit_holes(8);
      }
    }
    // Fresh progress re-arms the timer for the next oldest segment.
    retx_timer_.stop();
    arm_timer();
  } else if (ack == last_ack_seen_ && !outstanding_.empty() &&
             segment.payload.empty()) {
    ++stats_.duplicate_acks;
    ++dupacks_;
    if (dupacks_ == config_.dupack_threshold && !in_fast_recovery_) {
      // Fast retransmit: one episode per window of data (it ends when the
      // cumulative ack passes everything in flight at the time of loss).
      in_fast_recovery_ = true;
      recovery_end_ = snd_nxt_;
      retransmit_holes(8, /*force_first=*/true);
      if (cb_.on_loss) cb_.on_loss(LossKind::kFastRetransmit);
    } else if (in_fast_recovery_) {
      // Dup acks inside recovery keep the repair ack-clocked.
      retransmit_holes(2);
    }
  }
  last_ack_seen_ = ack;

  // SACK processing: mark covered segments so timeouts skip them.
  const std::vector<SackBlock> no_sack;
  for (const auto& block :
       config_.enable_sack ? segment.rd.sack : no_sack) {
    for (auto& [offset, seg] : outstanding_) {
      if (!seg.sacked && offset >= block.start &&
          offset + seg.data.size() <= block.end) {
        seg.sacked = true;
        newly_acked += seg.data.size();
        ++stats_.sacked_segments_spared;
      }
    }
  }

  if (cb_.on_ack_feedback) {
    AckFeedback fb;
    fb.now = sim_.now();
    fb.acked_through = snd_una_;
    fb.bytes_newly_acked = newly_acked;
    fb.rtt = rtt;
    fb.peer_recv_window = segment.osr.recv_window;
    fb.ecn_echo = segment.osr.ecn_echo;
    cb_.on_ack_feedback(fb);
  }
}

void ReliableDelivery::process_payload(const SublayeredSegment& segment) {
  const std::uint64_t start = segment.rd.seq_offset;
  const std::uint64_t end = start + segment.payload.size();
  if (start == end) return;

  // Walk [start, end): deliver every uncovered gap exactly once, skipping
  // (and counting) already-received spans.
  std::uint64_t cursor = start;
  while (cursor < end) {
    // Is `cursor` inside an already-received range [s, e)?
    auto after = received_.upper_bound(cursor);  // first range with s > cursor
    if (after != received_.begin()) {
      const auto prev = std::prev(after);
      if (prev->second > cursor) {  // covered
        const std::uint64_t skip_to = std::min(prev->second, end);
        stats_.duplicate_bytes_dropped += skip_to - cursor;
        cursor = skip_to;
        continue;
      }
    }
    // In a gap: it extends to the next range start (or segment end).
    std::uint64_t gap_end = end;
    if (after != received_.end()) gap_end = std::min(gap_end, after->first);
    const auto from = static_cast<std::ptrdiff_t>(cursor - start);
    const auto len = static_cast<std::ptrdiff_t>(gap_end - cursor);
    Bytes piece(segment.payload.begin() + from,
                segment.payload.begin() + from + len);
    stats_.bytes_delivered_up += piece.size();
    if (cb_.deliver) cb_.deliver(cursor, std::move(piece));
    cursor = gap_end;
  }

  // Merge [start, end) into the received-range set.
  std::uint64_t new_start = start;
  std::uint64_t new_end = end;
  auto lo = received_.upper_bound(new_start);
  if (lo != received_.begin()) {
    const auto prev = std::prev(lo);
    if (prev->second >= new_start) {
      lo = prev;
      new_start = prev->first;
      new_end = std::max(new_end, prev->second);
    }
  }
  auto hi = lo;
  while (hi != received_.end() && hi->first <= new_end) {
    new_end = std::max(new_end, hi->second);
    ++hi;
  }
  received_.erase(lo, hi);
  received_[new_start] = new_end;

  // Advance the in-order frontier (cumulative-ack point).
  const auto span = received_.find(new_start);
  if (span != received_.end() && span->first <= rcv_next_) {
    rcv_next_ = std::max(rcv_next_, span->second);
  }
}

void ReliableDelivery::save(sim::SnapshotWriter& w) const {
  w.u64(stats_.segments_sent.value());
  w.u64(stats_.bytes_sent.value());
  w.u64(stats_.fast_retransmits.value());
  w.u64(stats_.timeout_retransmits.value());
  w.u64(stats_.acks_sent.value());
  w.u64(stats_.acks_received.value());
  w.u64(stats_.duplicate_acks.value());
  w.u64(stats_.bytes_delivered_up.value());
  w.u64(stats_.duplicate_bytes_dropped.value());
  w.u64(stats_.sacked_segments_spared.value());
  w.u64(stats_.tail_probes.value());
  w.u64(outstanding_.size());
  for (const auto& [offset, seg] : outstanding_) {
    w.u64(offset);
    w.blob(ByteView(seg.data));
    w.time(seg.sent_at);
    w.i64(seg.transmissions);
    w.i64(seg.timeout_retx);
    w.b(seg.sacked);
  }
  w.u64(snd_una_);
  w.u64(snd_nxt_);
  w.u64(last_ack_seen_);
  w.i64(dupacks_);
  w.b(in_fast_recovery_);
  w.u64(recovery_end_);
  w.dur(rto_);
  w.b(srtt_.has_value());
  w.dur(srtt_.value_or(Duration::nanos(0)));
  w.dur(rttvar_);
  w.b(probe_pending_);
  retx_timer_.save(w);
  w.u64(received_.size());
  for (const auto& [start, end] : received_) {
    w.u64(start);
    w.u64(end);
  }
  w.u64(rcv_next_);
}

void ReliableDelivery::restore(sim::SnapshotReader& r) {
  stats_.segments_sent.restore_local(r.u64());
  stats_.bytes_sent.restore_local(r.u64());
  stats_.fast_retransmits.restore_local(r.u64());
  stats_.timeout_retransmits.restore_local(r.u64());
  stats_.acks_sent.restore_local(r.u64());
  stats_.acks_received.restore_local(r.u64());
  stats_.duplicate_acks.restore_local(r.u64());
  stats_.bytes_delivered_up.restore_local(r.u64());
  stats_.duplicate_bytes_dropped.restore_local(r.u64());
  stats_.sacked_segments_spared.restore_local(r.u64());
  stats_.tail_probes.restore_local(r.u64());
  outstanding_.clear();
  const std::uint64_t nout = r.u64();
  for (std::uint64_t i = 0; i < nout; ++i) {
    const std::uint64_t offset = r.u64();
    Outstanding seg;
    seg.data = r.blob();
    seg.sent_at = r.time();
    seg.transmissions = static_cast<int>(r.i64());
    seg.timeout_retx = static_cast<int>(r.i64());
    seg.sacked = r.b();
    outstanding_.emplace(offset, std::move(seg));
  }
  snd_una_ = r.u64();
  snd_nxt_ = r.u64();
  last_ack_seen_ = r.u64();
  dupacks_ = static_cast<int>(r.i64());
  in_fast_recovery_ = r.b();
  recovery_end_ = r.u64();
  rto_ = r.dur();
  const bool have_srtt = r.b();
  const Duration srtt = r.dur();
  srtt_ = have_srtt ? std::optional<Duration>(srtt) : std::nullopt;
  rttvar_ = r.dur();
  probe_pending_ = r.b();
  retx_timer_.restore(r);
  received_.clear();
  const std::uint64_t nrecv = r.u64();
  for (std::uint64_t i = 0; i < nrecv; ++i) {
    const std::uint64_t start = r.u64();
    received_[start] = r.u64();
  }
  rcv_next_ = r.u64();
}

}  // namespace sublayer::transport
