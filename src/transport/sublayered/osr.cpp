#include "transport/sublayered/osr.hpp"

#include <algorithm>

#include "sim/snapshot.hpp"
#include "telemetry/span.hpp"

namespace sublayer::transport {

Osr::Osr(sim::Simulator& sim, OsrConfig config, Callbacks callbacks)
    : sim_(sim),
      config_(config),
      cb_(std::move(callbacks)),
      cc_(make_cc(config.cc, config.cc_config)),
      pacing_timer_(sim, [this] { maybe_send(); }),
      next_release_time_(sim.now()) {
  stats_.bytes_from_app.bind("transport.osr.bytes_from_app");
  stats_.segments_released.bind("transport.osr.segments_released");
  stats_.bytes_to_app.bind("transport.osr.bytes_to_app");
  stats_.reassembly_buffered.bind("transport.osr.reassembly_buffered");
  stats_.flow_control_stalls.bind("transport.osr.flow_control_stalls");
  stats_.cwnd_stalls.bind("transport.osr.cwnd_stalls");
  span_ = telemetry::SpanTracer::instance().intern("transport.osr");
}

void Osr::send(Bytes data) {
  stats_.bytes_from_app += data.size();
  stream_.insert(stream_.end(), data.begin(), data.end());
  stream_end_ += data.size();
  if (established_) maybe_send();
}

void Osr::set_established() {
  established_ = true;
  maybe_send();
}

bool Osr::pacing_gate_open() const {
  return !cc_->pacing_bps() || sim_.now() >= next_release_time_;
}

void Osr::schedule_pacing() {
  if (!pacing_timer_.armed() && next_release_time_ > sim_.now()) {
    pacing_timer_.restart(next_release_time_ - sim_.now());
  }
}

void Osr::maybe_send() {
  while (established_ && next_to_send_ < stream_end_) {
    const std::uint64_t in_flight = next_to_send_ - acked_;
    const std::uint64_t seg_len = std::min<std::uint64_t>(
        config_.mss, stream_end_ - next_to_send_);

    if (in_flight + seg_len > cc_->cwnd_bytes()) {
      ++stats_.cwnd_stalls;
      return;  // window closed; an ack will reopen it
    }
    if (in_flight + seg_len > peer_window_) {
      ++stats_.flow_control_stalls;
      return;  // receiver buffer full; a window update will reopen it
    }
    if (!pacing_gate_open()) {
      schedule_pacing();
      return;
    }
    release_one();
  }
}

void Osr::release_one() {
  const std::uint64_t seg_len =
      std::min<std::uint64_t>(config_.mss, stream_end_ - next_to_send_);
  const auto from = static_cast<std::size_t>(next_to_send_ - stream_base_);
  Bytes data(stream_.begin() + static_cast<std::ptrdiff_t>(from),
             stream_.begin() + static_cast<std::ptrdiff_t>(from + seg_len));
  const std::uint64_t offset = next_to_send_;
  next_to_send_ += seg_len;
  ++stats_.segments_released;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             seg_len);

  if (const auto bps = cc_->pacing_bps()) {
    const double seconds = static_cast<double>(seg_len) * 8.0 / *bps;
    next_release_time_ = sim_.now() + Duration::seconds(seconds);
  }
  if (cb_.rd_send) cb_.rd_send(offset, std::move(data));
}

void Osr::on_ack_feedback(const AckFeedback& feedback) {
  peer_window_ = feedback.peer_recv_window;
  if (feedback.acked_through > acked_) {
    acked_ = feedback.acked_through;
    // Drop acked bytes from the stream buffer.
    const auto drop = static_cast<std::size_t>(acked_ - stream_base_);
    stream_.erase(stream_.begin(),
                  stream_.begin() + static_cast<std::ptrdiff_t>(drop));
    stream_base_ = acked_;
  }
  AckEvent event;
  event.now = feedback.now;
  event.bytes_newly_acked = feedback.bytes_newly_acked;
  event.rtt = feedback.rtt;
  event.bytes_in_flight = in_flight();
  event.ecn_echo = feedback.ecn_echo;
  cc_->on_ack(event);
  maybe_send();
}

void Osr::on_loss(LossKind kind) {
  LossEvent event;
  event.now = sim_.now();
  event.kind = kind;
  event.bytes_in_flight = in_flight();
  cc_->on_loss(event);
  maybe_send();
}

void Osr::on_rd_deliver(std::uint64_t offset, Bytes data) {
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             data.size());
  if (offset + data.size() <= delivered_) return;  // stale (shouldn't happen)
  if (offset <= delivered_) {
    // Contiguous (possibly overlapping the frontier): trim and deliver.
    const auto skip = static_cast<std::size_t>(delivered_ - offset);
    data.erase(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(skip));
    delivered_ += data.size();
    stats_.bytes_to_app += data.size();
    if (config_.manual_consume) unconsumed_ += data.size();
    if (cb_.on_data) cb_.on_data(std::move(data));
    drain_in_order();
  } else {
    reassembly_bytes_ += data.size();
    stats_.reassembly_buffered.set_max(
        static_cast<std::int64_t>(reassembly_bytes_));
    reassembly_.emplace(offset, std::move(data));
  }
  if (peer_stream_length_ && delivered_ >= *peer_stream_length_ &&
      !stream_end_signalled_) {
    stream_end_signalled_ = true;
    if (cb_.on_stream_end) cb_.on_stream_end();
  }
}

void Osr::drain_in_order() {
  auto it = reassembly_.begin();
  while (it != reassembly_.end() && it->first <= delivered_) {
    Bytes piece = std::move(it->second);
    const std::uint64_t offset = it->first;
    reassembly_bytes_ -= piece.size();
    it = reassembly_.erase(it);
    if (offset + piece.size() <= delivered_) continue;  // fully stale
    const auto skip = static_cast<std::size_t>(delivered_ - offset);
    piece.erase(piece.begin(), piece.begin() + static_cast<std::ptrdiff_t>(skip));
    delivered_ += piece.size();
    stats_.bytes_to_app += piece.size();
    if (config_.manual_consume) unconsumed_ += piece.size();
    if (cb_.on_data) cb_.on_data(std::move(piece));
    it = reassembly_.begin();  // frontier moved; rescan from the front
  }
}

void Osr::set_peer_stream_length(std::uint64_t length) {
  peer_stream_length_ = length;
  if (delivered_ >= length && !stream_end_signalled_) {
    stream_end_signalled_ = true;
    if (cb_.on_stream_end) cb_.on_stream_end();
  }
}

void Osr::consume(std::uint64_t n) {
  const std::uint64_t eaten = std::min(unconsumed_, n);
  unconsumed_ -= eaten;
  if (eaten > 0 && cb_.window_update) cb_.window_update();
}

void Osr::save(sim::SnapshotWriter& w) const {
  w.u64(stats_.bytes_from_app.value());
  w.u64(stats_.segments_released.value());
  w.u64(stats_.bytes_to_app.value());
  w.i64(stats_.reassembly_buffered.value());
  w.u64(stats_.flow_control_stalls.value());
  w.u64(stats_.cwnd_stalls.value());
  const Bytes stream(stream_.begin(), stream_.end());
  w.blob(stream);
  w.u64(stream_base_);
  w.u64(stream_end_);
  w.u64(next_to_send_);
  w.u64(acked_);
  w.u32(peer_window_);
  w.b(established_);
  w.time(next_release_time_);
  pacing_timer_.save(w);
  w.u64(reassembly_.size());
  for (const auto& [offset, piece] : reassembly_) {
    w.u64(offset);
    w.blob(piece);
  }
  w.u64(delivered_);
  w.u64(unconsumed_);
  w.b(peer_stream_length_.has_value());
  w.u64(peer_stream_length_.value_or(0));
  w.b(stream_end_signalled_);
  w.b(ecn_pending_);
  cc_->save(w);
}

void Osr::restore(sim::SnapshotReader& r) {
  stats_.bytes_from_app.restore_local(r.u64());
  stats_.segments_released.restore_local(r.u64());
  stats_.bytes_to_app.restore_local(r.u64());
  stats_.reassembly_buffered.restore_local(r.i64());
  stats_.flow_control_stalls.restore_local(r.u64());
  stats_.cwnd_stalls.restore_local(r.u64());
  const Bytes stream = r.blob();
  stream_.assign(stream.begin(), stream.end());
  stream_base_ = r.u64();
  stream_end_ = r.u64();
  next_to_send_ = r.u64();
  acked_ = r.u64();
  peer_window_ = r.u32();
  established_ = r.b();
  next_release_time_ = r.time();
  pacing_timer_.restore(r);
  reassembly_.clear();
  reassembly_bytes_ = 0;
  const std::uint64_t npieces = r.u64();
  for (std::uint64_t i = 0; i < npieces; ++i) {
    const std::uint64_t offset = r.u64();
    Bytes piece = r.blob();
    reassembly_bytes_ += piece.size();
    reassembly_.emplace(offset, std::move(piece));
  }
  delivered_ = r.u64();
  unconsumed_ = r.u64();
  const bool have_len = r.b();
  const std::uint64_t len = r.u64();
  peer_stream_length_ =
      have_len ? std::optional<std::uint64_t>(len) : std::nullopt;
  stream_end_signalled_ = r.b();
  ecn_pending_ = r.b();
  cc_->restore(r);
}

OsrHeader Osr::current_header() {
  OsrHeader h;
  const std::uint64_t charged = reassembly_bytes_ + unconsumed_;
  h.recv_window = static_cast<std::uint32_t>(
      config_.recv_buffer > charged ? config_.recv_buffer - charged : 0);
  h.ecn_echo = ecn_pending_;
  ecn_pending_ = false;
  return h;
}

}  // namespace sublayer::transport
