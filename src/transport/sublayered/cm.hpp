// CM — the connection-management sublayer (Fig. 5).
//
// Encapsulates everything about connection setup and teardown: the
// SYN/SYNACK handshake, FIN/FINACK teardown, RST aborts, TIME-WAIT, and —
// its main service — establishing a pair of Initial Sequence Numbers that
// are "unique in time and hard to predict" (§3), through a pluggable
// IsnProvider.  CM owns its own bootstrap reliability (SYN/FIN timers with
// exponential backoff, no windows) — the paper notes this seeming
// duplication with RD is already implicit in classical TCP.
//
// Narrow interfaces (T2):
//   up (to RD):  on_established(isn_local, isn_peer);  validated DATA
//                segments are passed through; peer-FIN reports the exact
//                stream length so OSR knows where the byte stream ends.
//   down (to DM): fully-formed control segments; stamping of the CM
//                header (kind + ISN pair) onto outgoing DATA segments.
//
// CM also *validates* every inbound segment's ISN pair, rejecting (and
// RST-ing) segments from other connection incarnations — the formal
// guarantee it owes RD ("a range of sequence numbers not present in the
// network", Smith [29]).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/isn.hpp"
#include "transport/wire/sublayered_header.hpp"
#include "transport/wire/tuple.hpp"

namespace sublayer::transport {

enum class CmState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kTimeWait,
  kAborted,
};

const char* to_string(CmState s);

/// Mirrors a CM state transition into the calling thread's flight recorder
/// (a no-op without one, and for self-transitions): a kCmTransition record
/// tagged with the new state's name, plus kFlowOpen on reaching
/// kEstablished and kFlowClose on leaving an open connection for
/// kClosed/kAborted.  The flow id is a deterministic mix of the four-tuple,
/// so a connection's records pair up across the dump.  Both CM mechanisms
/// route every state change through this.
void record_cm_transition(const FourTuple& tuple, CmState from, CmState to);

/// Which connection-management mechanism runs behind the CM interface —
/// the paper's Challenge 5 names exactly this swap: "replace ... connection
/// management (by a timer-based scheme [31])".
enum class CmScheme {
  /// Classical SYN/SYNACK handshake with TIME-WAIT (the §3 design).
  kHandshake,
  /// Watson Delta-t style: no connection-opening handshake — the first
  /// data segment carries the (clock-monotonic) ISN and state is bounded
  /// by timers rather than an exchange.  Buys a full RTT on open; safety
  /// rests on ISN monotonicity plus quiet-time, not on the three-way
  /// agreement.
  kTimerBased,
};

struct CmConfig {
  CmScheme scheme = CmScheme::kHandshake;
  Duration handshake_rto = Duration::millis(200);
  int max_handshake_retries = 8;
  Duration time_wait = Duration::millis(500);  // stands in for 2*MSL
  /// Idle keepalive: after this long with no inbound segment, CM sends a
  /// kProbe; an unanswered probe schedule aborts the connection as
  /// dead-peer.  Zero disables keepalives (the default — probes only pay
  /// for themselves on long-lived idle connections, and the RFC 793 shim
  /// cannot translate a reply).
  Duration keepalive_interval = Duration::nanos(0);
  /// Unanswered probes tolerated before declaring the peer dead.
  int max_keepalive_probes = 3;
};

/// Exponential backoff for CM control-segment retransmission, shared by
/// every retry site in both CM mechanisms.  The shift is clamped: without
/// it `1 << retries` is undefined behaviour once retries reaches the bit
/// width, and a misconfigured retry budget would turn the backoff into a
/// negative or zero delay instead of a long one.
inline Duration cm_backoff(const CmConfig& config, int retries) {
  constexpr int kMaxShift = 16;  // caps the multiplier at 65536x
  const int shift = retries < 0 ? 0 : (retries > kMaxShift ? kMaxShift
                                                           : retries);
  return config.handshake_rto *
         static_cast<double>(std::int64_t{1} << shift);
}

/// Registry-backed (`transport.cm.*`); reads stay per-instance.
struct CmStats {
  telemetry::Counter syn_sent;
  telemetry::Counter syn_retransmits;
  telemetry::Counter fin_sent;
  telemetry::Counter fin_retransmits;
  telemetry::Counter rst_sent;
  telemetry::Counter bad_incarnation;  // segments rejected by ISN validation
  telemetry::Counter keepalive_probes_sent;
  telemetry::Counter keepalive_replies_sent;
  telemetry::Counter keepalive_aborts;  // dead-peer declarations
};

/// Shared by both CM mechanisms (handshake and timer-based): binds the
/// stats struct to the registry and interns the CM boundary for the span
/// tracer.  Returns the interned boundary id.
std::uint32_t bind_cm_telemetry(CmStats& stats);

/// Snapshot helpers for the 4-tuple, shared by both CM mechanisms and the
/// host's connection table.
void save_tuple(sim::SnapshotWriter& w, const FourTuple& t);
FourTuple restore_tuple(sim::SnapshotReader& r);

/// Snapshot helpers for the shared stats block (both CM mechanisms).
void save_cm_stats(sim::SnapshotWriter& w, const CmStats& stats);
void restore_cm_stats(sim::SnapshotReader& r, CmStats& stats);

/// The CM sublayer interface — what the rest of the connection sees.
/// Two mechanisms implement it (handshake and timer-based); swapping them
/// touches nothing else in the stack.
class CmInterface {
 public:
  struct Callbacks {
    /// Connection is up; RD may start using the agreed sequence basis.
    std::function<void(std::uint32_t isn_local, std::uint32_t isn_peer)>
        on_established;
    /// Peer closed its direction; the peer's byte stream ends at
    /// `stream_length` (OSR uses this to signal EOF after reassembly).
    std::function<void(std::uint64_t stream_length)> on_peer_fin;
    /// Our FIN was acknowledged.
    std::function<void()> on_local_fin_acked;
    /// Fully closed (after TIME-WAIT); the endpoint can be unbound.
    std::function<void()> on_closed;
    /// Connection aborted (RST or handshake failure).
    std::function<void(std::string reason)> on_reset;
    /// Transmission of a CM control segment (DM fills the ports).
    std::function<void(SublayeredSegment)> send;
    /// A validated DATA segment for the RD sublayer.
    std::function<void(SublayeredSegment)> deliver_data;
    /// Ask RD to emit a pure acknowledgement (used when a retransmitted
    /// SYNACK shows our handshake-completing ack was lost).
    std::function<void()> request_ack;
  };

  virtual ~CmInterface() = default;

  /// Active open (client side).
  virtual void open_active(const FourTuple& tuple) = 0;
  /// Passive open: consume the connection-creating segment the listener
  /// handed us (a SYN for the handshake scheme; the first data segment
  /// for the timer-based scheme).
  virtual void open_passive(const FourTuple& tuple,
                            const SublayeredSegment& first) = 0;

  /// Local close: our byte stream ends at `stream_length` bytes.
  virtual void close(std::uint64_t stream_length) = 0;
  /// Hard abort: send RST and tear down.
  virtual void abort(const std::string& reason) = 0;

  /// Entry point for every inbound segment on this connection.  CM
  /// consumes control segments and validates DATA segments' incarnation
  /// before passing them up via deliver_data.
  virtual void on_segment(SublayeredSegment segment) = 0;

  /// Stamps the CM header fields onto an outgoing DATA segment.
  virtual void stamp_data(SublayeredSegment& segment) const = 0;

  virtual CmState state() const = 0;
  virtual std::uint32_t isn_local() const = 0;
  virtual std::uint32_t isn_peer() const = 0;
  virtual bool peer_fin_seen() const = 0;
  virtual bool local_fin_acked() const = 0;
  virtual const CmStats& stats() const = 0;

  /// Checkpoint/restore (sim/snapshot.hpp): the connection's tuple, state
  /// machine, ISN pair, retry/probe budgets, and control timers.  restore
  /// sets the state directly — no transition records, no callbacks.  The
  /// restore graph must run the same CM scheme.  Inline format; the owning
  /// Connection brackets.
  virtual void save(sim::SnapshotWriter& w) const = 0;
  virtual void restore(sim::SnapshotReader& r) = 0;
};

/// Factory dispatching on config.scheme.
std::unique_ptr<CmInterface> make_cm(sim::Simulator& sim,
                                     IsnProvider& isn_provider,
                                     CmConfig config,
                                     CmInterface::Callbacks callbacks);

/// The classical handshake mechanism (§3 of the paper).
class ConnectionManager final : public CmInterface {
 public:
  ConnectionManager(sim::Simulator& sim, IsnProvider& isn_provider,
                    CmConfig config, Callbacks callbacks);

  void open_active(const FourTuple& tuple) override;
  void open_passive(const FourTuple& tuple,
                    const SublayeredSegment& first) override;
  void close(std::uint64_t stream_length) override;
  void abort(const std::string& reason) override;
  void on_segment(SublayeredSegment segment) override;
  void stamp_data(SublayeredSegment& segment) const override;

  CmState state() const override { return state_; }
  std::uint32_t isn_local() const override { return isn_local_; }
  std::uint32_t isn_peer() const override { return isn_peer_; }
  bool peer_fin_seen() const override { return peer_fin_seen_; }
  bool local_fin_acked() const override { return local_fin_acked_; }
  const CmStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override;
  void restore(sim::SnapshotReader& r) override;

 private:
  void send_syn();
  void send_synack();
  void send_fin();
  void send_finack();
  void send_rst();
  void send_probe();
  void send_probe_ack();
  void on_handshake_timer();
  void on_keepalive_timer();
  /// Inbound traffic observed: reset the dead-peer probe budget and (in
  /// the established state) push the keepalive deadline out.
  void note_inbound_activity();
  bool incarnation_ok(const SublayeredSegment& s) const;
  void maybe_time_wait();
  void enter_time_wait();
  /// The single gateway for state changes — records the transition in the
  /// flight recorder before switching.
  void enter_state(CmState next);

  sim::Simulator& sim_;
  IsnProvider& isn_provider_;
  CmConfig config_;
  Callbacks cb_;

  FourTuple tuple_;
  CmState state_ = CmState::kClosed;
  std::uint32_t isn_local_ = 0;
  std::uint32_t isn_peer_ = 0;
  int retries_ = 0;
  bool local_fin_sent_ = false;
  bool local_fin_acked_ = false;
  bool peer_fin_seen_ = false;
  std::uint64_t local_stream_length_ = 0;
  int probes_outstanding_ = 0;
  CmStats stats_;
  std::uint32_t span_ = 0;
  sim::Timer handshake_timer_;
  sim::Timer time_wait_timer_;
  sim::Timer keepalive_timer_;
};

}  // namespace sublayer::transport
