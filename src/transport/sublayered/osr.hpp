// OSR — the ordering / segmenting / rate-control sublayer, top of the
// sublayered transport (Fig. 5).
//
// Sender side: takes the application byte stream, cuts it into <= MSS
// segments, and decides *when* each segment is "ready" for RD — the
// paper's framing of rate control as OSR's interface to RD.  Readiness is
// governed by the pluggable congestion-control algorithm (window- or
// pacing-based) and by the peer's advertised flow-control window.
//
// Receiver side: RD delivers byte ranges exactly once but possibly out of
// order; OSR pastes them back together and hands the application a
// contiguous stream — this is where TCP's headline property ("bytes out
// equal bytes in, in order") is discharged, using only RD's exactly-once
// guarantee.  The receive window advertised to the peer reflects the
// reassembly/consume buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "transport/sublayered/cc.hpp"
#include "transport/sublayered/rd.hpp"

namespace sublayer::transport {

struct OsrConfig {
  std::uint32_t mss = 1200;
  /// Receive buffer capacity: bytes buffered out-of-order plus delivered-
  /// but-unconsumed bytes are charged against it.
  std::uint64_t recv_buffer = 1 << 20;
  /// Congestion-control algorithm name ("reno", "cubic", "aimd", "rate").
  std::string cc = "reno";
  CcConfig cc_config;
  /// When false (default), delivered data is considered consumed
  /// immediately; when true, the application must call consume() and the
  /// advertised window closes accordingly (exercises flow control).
  bool manual_consume = false;
};

/// Registry-backed (`transport.osr.*`); reads stay per-instance.
struct OsrStats {
  telemetry::Counter bytes_from_app;
  telemetry::Counter segments_released;  // handed to RD as "ready"
  telemetry::Counter bytes_to_app;
  telemetry::Gauge reassembly_buffered;  // ooo bytes held at peak
  telemetry::Counter flow_control_stalls;
  telemetry::Counter cwnd_stalls;
};

class Osr {
 public:
  struct Callbacks {
    /// Release a ready segment to RD.
    std::function<void(std::uint64_t offset, Bytes data)> rd_send;
    /// Contiguous stream data for the application.
    std::function<void(Bytes)> on_data;
    /// The peer's whole stream (per CM's FIN length) has been delivered.
    std::function<void()> on_stream_end;
    /// The receive window reopened (application consumed data): ask RD to
    /// emit a window-update ack so a flow-control-stalled sender resumes.
    std::function<void()> window_update;
  };

  Osr(sim::Simulator& sim, OsrConfig config, Callbacks callbacks);

  // ---- sender path ----
  /// Application write: appends to the outgoing byte stream.
  void send(Bytes data);
  /// Marks the connection live; sending may begin.
  void set_established();
  /// RD's ack summary: advances the stream, credits the CC algorithm, and
  /// releases any segments that just became ready.
  void on_ack_feedback(const AckFeedback& feedback);
  /// RD's loss summary.
  void on_loss(LossKind kind);

  /// All bytes written so far (the local stream length, for CM's FIN).
  std::uint64_t stream_written() const { return stream_end_; }
  /// True when every written byte has been cumulatively acked.
  bool all_sent_and_acked() const {
    return next_to_send_ == stream_end_ && acked_ == stream_end_;
  }

  // ---- receiver path ----
  /// RD delivers a byte range (exactly once, possibly out of order).
  void on_rd_deliver(std::uint64_t offset, Bytes data);
  /// CM reports the peer's stream length (from FIN).
  void set_peer_stream_length(std::uint64_t length);
  /// Application consumed n delivered bytes (manual_consume mode).
  void consume(std::uint64_t n);

  /// A received segment's IP datagram carried the congestion-experienced
  /// mark; the next acknowledgement echoes it (one-shot, like ECE).
  void note_ecn_mark() { ecn_pending_ = true; }

  /// The OSR header bits for outgoing segments (window + ECN echo).  The
  /// pending ECN echo is consumed by the call.
  OsrHeader current_header();

  // ---- introspection ----
  std::uint64_t cwnd() const { return cc_->cwnd_bytes(); }
  std::uint64_t in_flight() const { return next_to_send_ - acked_; }
  std::uint32_t peer_window() const { return peer_window_; }
  const CcAlgorithm& cc() const { return *cc_; }
  const OsrStats& stats() const { return stats_; }

  /// Checkpoint/restore (sim/snapshot.hpp): the unacked stream buffer,
  /// send/ack cursors, flow-control window, pacing clock and timer, the
  /// reassembly map with every out-of-order piece, and the congestion
  /// controller's hidden state.  Inline format; the owning Connection
  /// brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  void maybe_send();
  void release_one();
  bool pacing_gate_open() const;
  void schedule_pacing();
  void drain_in_order();

  sim::Simulator& sim_;
  OsrConfig config_;
  Callbacks cb_;
  std::unique_ptr<CcAlgorithm> cc_;
  OsrStats stats_;
  std::uint32_t span_ = 0;

  // Sender: the unacked/unsent suffix of the stream, as a deque anchored
  // at `stream_base_`.
  std::deque<std::uint8_t> stream_;
  std::uint64_t stream_base_ = 0;  // offset of stream_.front()
  std::uint64_t stream_end_ = 0;   // total bytes written by the app
  std::uint64_t next_to_send_ = 0;
  std::uint64_t acked_ = 0;
  std::uint32_t peer_window_ = 1 << 20;
  bool established_ = false;
  sim::Timer pacing_timer_;
  TimePoint next_release_time_;

  // Receiver: out-of-order pieces keyed by offset.
  std::map<std::uint64_t, Bytes> reassembly_;
  std::uint64_t reassembly_bytes_ = 0;
  std::uint64_t delivered_ = 0;    // contiguous bytes handed to the app
  std::uint64_t unconsumed_ = 0;   // manual_consume backlog
  std::optional<std::uint64_t> peer_stream_length_;
  bool stream_end_signalled_ = false;
  bool ecn_pending_ = false;
};

}  // namespace sublayer::transport
