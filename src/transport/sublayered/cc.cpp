// Congestion-control algorithm implementations.
#include "transport/sublayered/cc.hpp"

#include <algorithm>
#include <cmath>

#include "sim/snapshot.hpp"

namespace sublayer::transport {
namespace {

constexpr std::uint64_t kMinCwndSegments = 2;

class Reno : public CcAlgorithm {
 public:
  explicit Reno(const CcConfig& config)
      : mss_(config.mss),
        cwnd_(config.initial_cwnd_segments * config.mss),
        ssthresh_(~0ull) {}

  std::string name() const override { return "reno"; }

  void on_ack(const AckEvent& event) override {
    if (ecn_holdoff_ > 0) {
      ecn_holdoff_ -= std::min(ecn_holdoff_, event.bytes_newly_acked);
    }
    if (event.ecn_echo) {
      // ECN: react like a loss, at most once per window of acked data.
      if (ecn_holdoff_ == 0) {
        react_to_congestion();
        ecn_holdoff_ = cwnd_;
      }
      return;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += event.bytes_newly_acked;  // slow start
    } else if (cwnd_ > 0) {
      // Congestion avoidance: +MSS per cwnd of acked data.
      cwnd_ += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(mss_) * mss_ / cwnd_ *
                 std::max<std::uint64_t>(1, event.bytes_newly_acked / mss_));
    }
  }

  void on_loss(const LossEvent& event) override {
    if (event.kind == LossKind::kTimeout) {
      ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, kMinCwndSegments * mss_);
      cwnd_ = mss_;  // restart from one segment
    } else {
      react_to_congestion();
    }
  }

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }

  void save(sim::SnapshotWriter& w) const override {
    w.u64(cwnd_);
    w.u64(ssthresh_);
    w.u64(ecn_holdoff_);
  }
  void restore(sim::SnapshotReader& r) override {
    cwnd_ = r.u64();
    ssthresh_ = r.u64();
    ecn_holdoff_ = r.u64();
  }

 protected:
  void react_to_congestion() {
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, kMinCwndSegments * mss_);
    cwnd_ = ssthresh_;  // fast recovery's post-recovery window
  }

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t ecn_holdoff_ = 0;
};

class Cubic : public CcAlgorithm {
 public:
  explicit Cubic(const CcConfig& config)
      : mss_(config.mss),
        cwnd_(config.initial_cwnd_segments * config.mss),
        ssthresh_(~0ull) {}

  std::string name() const override { return "cubic"; }

  void on_ack(const AckEvent& event) override {
    if (ecn_holdoff_ > 0) {
      ecn_holdoff_ -= std::min(ecn_holdoff_, event.bytes_newly_acked);
    }
    if (event.ecn_echo) {
      if (ecn_holdoff_ == 0) {
        on_loss(LossEvent{event.now, LossKind::kFastRetransmit,
                          event.bytes_in_flight});
        ecn_holdoff_ = cwnd_;
      }
      return;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += event.bytes_newly_acked;
      return;
    }
    if (!epoch_started_) {
      epoch_started_ = true;
      epoch_start_ = event.now;
      // K = cbrt(w_max * (1-beta) / C), with window in segments.
      const double wmax_seg = static_cast<double>(w_max_) / mss_;
      k_ = std::cbrt(wmax_seg * (1.0 - kBeta) / kC);
    }
    const double t = (event.now - epoch_start_).to_seconds();
    const double wmax_seg = static_cast<double>(w_max_) / mss_;
    const double target_seg = kC * std::pow(t - k_, 3.0) + wmax_seg;
    const auto target =
        static_cast<std::uint64_t>(std::max(target_seg, 1.0) * mss_);
    if (target > cwnd_) {
      // Approach the cubic target over the next RTT.
      cwnd_ += std::max<std::uint64_t>(
          1, (target - cwnd_) * std::max<std::uint64_t>(
                                    1, event.bytes_newly_acked) /
                 std::max<std::uint64_t>(cwnd_, 1));
    } else {
      // TCP-friendly floor: grow at least like AIMD.
      cwnd_ += std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(mss_) * mss_ / std::max<std::uint64_t>(cwnd_, 1));
    }
  }

  void on_loss(const LossEvent& event) override {
    w_max_ = cwnd_;
    epoch_started_ = false;
    ssthresh_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(cwnd_) * kBeta),
        kMinCwndSegments * mss_);
    cwnd_ = event.kind == LossKind::kTimeout ? mss_ : ssthresh_;
  }

  std::uint64_t cwnd_bytes() const override { return cwnd_; }
  std::uint64_t ssthresh_bytes() const override { return ssthresh_; }

  void save(sim::SnapshotWriter& w) const override {
    w.u64(cwnd_);
    w.u64(ssthresh_);
    w.u64(w_max_);
    w.b(epoch_started_);
    w.time(epoch_start_);
    w.f64(k_);
    w.u64(ecn_holdoff_);
  }
  void restore(sim::SnapshotReader& r) override {
    cwnd_ = r.u64();
    ssthresh_ = r.u64();
    w_max_ = r.u64();
    epoch_started_ = r.b();
    epoch_start_ = r.time();
    k_ = r.f64();
    ecn_holdoff_ = r.u64();
  }

 private:
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::uint64_t w_max_ = 0;
  bool epoch_started_ = false;
  TimePoint epoch_start_;
  double k_ = 0;
  std::uint64_t ecn_holdoff_ = 0;
};

class Aimd : public CcAlgorithm {
 public:
  explicit Aimd(const CcConfig& config)
      : mss_(config.mss),
        alpha_bytes_(static_cast<std::uint64_t>(config.aimd_increase_segments *
                                                config.mss)),
        beta_(config.aimd_beta),
        cwnd_(config.initial_cwnd_segments * config.mss) {}

  std::string name() const override { return "aimd"; }

  void on_ack(const AckEvent& event) override {
    if (event.ecn_echo) {
      decrease();
      return;
    }
    // Additive increase: alpha per cwnd's worth of acks (no slow start —
    // deliberately simpler dynamics than Reno).
    cwnd_ += alpha_bytes_ * std::max<std::uint64_t>(1, event.bytes_newly_acked) /
             std::max<std::uint64_t>(cwnd_, 1);
  }

  void on_loss(const LossEvent&) override { decrease(); }

  std::uint64_t cwnd_bytes() const override { return cwnd_; }

  void save(sim::SnapshotWriter& w) const override { w.u64(cwnd_); }
  void restore(sim::SnapshotReader& r) override { cwnd_ = r.u64(); }

 private:
  void decrease() {
    cwnd_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(cwnd_) * beta_),
        kMinCwndSegments * mss_);
  }

  std::uint32_t mss_;
  std::uint64_t alpha_bytes_;
  double beta_;
  std::uint64_t cwnd_;
};

class RateBased : public CcAlgorithm {
 public:
  explicit RateBased(const CcConfig& config)
      : mss_(config.mss), rate_bps_(config.fixed_rate_bps) {}

  std::string name() const override { return "rate"; }

  void on_ack(const AckEvent& event) override {
    if (event.ecn_echo) {
      rate_bps_ *= 0.85;
      return;
    }
    rate_bps_ += kProbeBps * std::max<std::uint64_t>(
                                 1, event.bytes_newly_acked / mss_);
    rate_bps_ = std::min(rate_bps_, kMaxBps);
  }

  void on_loss(const LossEvent& event) override {
    rate_bps_ *= event.kind == LossKind::kTimeout ? 0.5 : 0.8;
    rate_bps_ = std::max(rate_bps_, kMinBps);
  }

  std::uint64_t cwnd_bytes() const override {
    // A generous cap so the pacing rate, not the window, governs release.
    return 1ull << 24;
  }
  std::optional<double> pacing_bps() const override { return rate_bps_; }

  void save(sim::SnapshotWriter& w) const override { w.f64(rate_bps_); }
  void restore(sim::SnapshotReader& r) override { rate_bps_ = r.f64(); }

 private:
  static constexpr double kProbeBps = 20e3;
  static constexpr double kMinBps = 100e3;
  static constexpr double kMaxBps = 10e9;

  std::uint32_t mss_;
  double rate_bps_;
};

}  // namespace

std::unique_ptr<CcAlgorithm> make_reno(const CcConfig& config) {
  return std::make_unique<Reno>(config);
}
std::unique_ptr<CcAlgorithm> make_cubic(const CcConfig& config) {
  return std::make_unique<Cubic>(config);
}
std::unique_ptr<CcAlgorithm> make_aimd(const CcConfig& config) {
  return std::make_unique<Aimd>(config);
}
std::unique_ptr<CcAlgorithm> make_rate_based(const CcConfig& config) {
  return std::make_unique<RateBased>(config);
}

std::unique_ptr<CcAlgorithm> make_cc(const std::string& name,
                                     const CcConfig& config) {
  if (name == "reno") return make_reno(config);
  if (name == "cubic") return make_cubic(config);
  if (name == "aimd") return make_aimd(config);
  if (name == "rate") return make_rate_based(config);
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace sublayer::transport
