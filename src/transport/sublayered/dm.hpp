// DM — the demultiplexing sublayer, bottom of the sublayered transport
// (Fig. 5).  "Essentially UDP": it owns the port namespace and routes
// segments by the connection 4-tuple, using ONLY the DM header bits
// (test T3).  A segment that matches no bound connection falls through to
// the listener on its destination port (connection acceptance is CM's
// job, one sublayer up), and otherwise to the unmatched handler (the host
// answers with RST).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/flat_hash.hpp"
#include "netlayer/ip.hpp"
#include "telemetry/metrics.hpp"
#include "transport/wire/sublayered_header.hpp"
#include "transport/wire/tuple.hpp"

namespace sublayer::sim {
class SnapshotWriter;
class SnapshotReader;
}  // namespace sublayer::sim

namespace sublayer::transport {

/// Registry-backed (`transport.dm.*`); reads stay per-instance.
struct DmStats {
  telemetry::Counter segments_out;
  telemetry::Counter segments_in;
  telemetry::Counter to_connections;
  telemetry::Counter to_listeners;
  telemetry::Counter unmatched;
  telemetry::Counter malformed;
};

class Demux {
 public:
  /// Delivery of a segment to a bound connection.
  using SegmentHandler = std::function<void(SublayeredSegment)>;
  /// Delivery of a segment for an unbound tuple whose port has a listener.
  using ListenHandler =
      std::function<void(const FourTuple&, SublayeredSegment)>;
  using UnmatchedHandler =
      std::function<void(const FourTuple&, const SublayeredSegment&)>;
  /// Transmission of a segment towards a remote address.  The host owns
  /// the final wire encoding: native sublayered bytes, or RFC 793 bytes
  /// via the shim sublayer.
  using DatagramSink =
      std::function<void(netlayer::IpAddr dst, const SublayeredSegment&)>;

  explicit Demux(netlayer::IpAddr local_addr);

  netlayer::IpAddr local_addr() const { return local_addr_; }

  void set_datagram_sink(DatagramSink sink) { sink_ = std::move(sink); }
  void set_unmatched_handler(UnmatchedHandler h) { unmatched_ = std::move(h); }

  /// Allocates an unused ephemeral port (49152-65535), skipping bound and
  /// listening ports; nullopt once the whole range is in use.  Each port
  /// is O(1) to test, and each is tested at most once per call.
  std::optional<std::uint16_t> try_allocate_port();

  /// try_allocate_port() that throws std::runtime_error on exhaustion —
  /// the shape connect() wants.
  std::uint16_t allocate_port();

  /// Binds a connection; returns false if the tuple is taken.
  bool bind(const FourTuple& tuple, SegmentHandler handler);
  void unbind(const FourTuple& tuple);
  bool is_bound(const FourTuple& tuple) const {
    return connections_.contains(tuple);
  }

  bool listen(std::uint16_t port, ListenHandler handler);
  void unlisten(std::uint16_t port);

  /// Sends a segment for `tuple`; DM stamps the port fields.
  void send(const FourTuple& tuple, SublayeredSegment segment);

  /// Feeds the payload of an incoming IP datagram (native encoding).
  void on_datagram(netlayer::IpAddr src, Bytes payload);

  /// Routes an already-decoded segment (used by the shim path).
  void route(netlayer::IpAddr src, SublayeredSegment segment);

  const DmStats& stats() const { return stats_; }

  /// Checkpoint/restore (sim/snapshot.hpp): stats and the ephemeral-port
  /// cursor only.  The flow tables are NOT serialized — handlers are
  /// closures — and rebuild themselves: restored Connections re-bind()
  /// their tuples (which also repopulates port_use_), and applications
  /// re-listen() on the restore graph before the host restore runs.
  /// Inline format; the owning TcpHost brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  netlayer::IpAddr local_addr_;
  DatagramSink sink_;
  UnmatchedHandler unmatched_;
  // Open-addressing tables: O(1) per-segment demux at any connection
  // count.  The 4-tuple key goes through SipHash so hostile tuples cannot
  // cluster a bucket chain (tested by T3's fall-through cases).
  FlatHashMap<FourTuple, SegmentHandler, FourTupleHash> connections_;
  FlatHashMap<std::uint16_t, ListenHandler, IntHash> listeners_;
  /// Bound-connection count per local port: makes allocate_port() O(1)
  /// per candidate instead of a scan over every connection.
  FlatHashMap<std::uint16_t, std::uint32_t, IntHash> port_use_;
  std::uint16_t next_ephemeral_ = 49152;
  DmStats stats_;
  telemetry::Histogram segment_bytes_;
  std::uint32_t span_ = 0;
};

}  // namespace sublayer::transport
