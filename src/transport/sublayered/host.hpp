// TcpHost: the host-side container for the sublayered transport.
//
// Owns the DM port namespace, the ISN provider shared by all CM
// instances, live connections, and — when configured for RFC 793 wire
// format — the shim sublayer.  Attaches to a netlayer::Router as one of
// its local hosts.
#pragma once

#include <functional>
#include <memory>

#include "common/flat_hash.hpp"

#include "netlayer/router.hpp"
#include "transport/sublayered/connection.hpp"
#include "transport/sublayered/shim.hpp"

namespace sublayer::transport {

struct HostConfig {
  ConnectionConfig connection;
  IsnKind isn = IsnKind::kRfc1948;
  std::uint64_t isn_key_seed = 0x1948;
  /// When true, segments travel as RFC 793 bytes through the shim
  /// (IpProto::kTcp); when false, as native sublayered bytes
  /// (IpProto::kSublayered).
  bool wire_rfc793 = false;
  /// When true (default), fully-closed or reset connections are destroyed;
  /// set false to keep them around for post-mortem stats inspection.
  bool reap_closed = true;
};

class TcpHost {
 public:
  using AcceptHandler = std::function<void(Connection&)>;

  /// Attaches to `router` as local host number `host_octet`.  `sim` must
  /// be the router's own simulator (under the parallel engine, the owning
  /// shard's — a host's timers must share its router's wheel).
  TcpHost(sim::Simulator& sim, netlayer::Router& router,
          std::uint8_t host_octet, HostConfig config = {});

  /// Same, scheduling on the router's simulator — the form that is always
  /// shard-correct.  Construct under the owning shard's scope when the
  /// network is sharded (Network::shard_of names it).
  TcpHost(netlayer::Router& router, std::uint8_t host_octet,
          HostConfig config = {})
      : TcpHost(router.sim(), router, host_octet, config) {}

  netlayer::IpAddr addr() const { return addr_; }

  /// Active open; the returned connection is owned by the host and lives
  /// until fully closed or reset.
  Connection& connect(netlayer::IpAddr remote, std::uint16_t remote_port);

  /// Passive open: accepted connections are announced via `on_accept`.
  void listen(std::uint16_t port, AcceptHandler on_accept);

  Demux& demux() { return demux_; }
  const HeaderShim& shim() const { return shim_; }
  std::size_t live_connections() const { return connections_.size(); }

  /// The live connection for `tuple`, or nullptr.  Snapshot-restore
  /// support: after TcpHost::restore, applications re-find their active
  /// connections by tuple and re-attach callbacks with set_app_callbacks.
  Connection* find(const FourTuple& tuple);

  /// Checkpoint/restore (sim/snapshot.hpp): the ISN provider, DM stats and
  /// port cursor, and every live connection (keyed by tuple, saved in
  /// sorted order).  restore() runs on a freshly constructed host with no
  /// connections; applications must have re-listen()ed first.  Each
  /// restored passive connection is re-announced to its port's acceptor so
  /// the server application re-attaches its callbacks; active connections
  /// are re-found via find().  Brackets its own section.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  Connection& make_connection(const FourTuple& tuple);
  void reap(const FourTuple& tuple);

  sim::Simulator& sim_;
  netlayer::Router& router_;
  netlayer::IpAddr addr_;
  HostConfig config_;
  Demux demux_;
  HeaderShim shim_;
  std::unique_ptr<IsnProvider> isn_;
  // Hashed like DM's tables: connection count must not show up in any
  // per-segment or per-accept cost.  Connection objects are uniquely
  // owned, so their addresses survive table rehashes.
  FlatHashMap<FourTuple, std::unique_ptr<Connection>, FourTupleHash>
      connections_;
  FlatHashMap<std::uint16_t, AcceptHandler, IntHash> acceptors_;
};

}  // namespace sublayer::transport
