#include "transport/sublayered/dm.hpp"

#include <stdexcept>

#include "sim/snapshot.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::transport {

Demux::Demux(netlayer::IpAddr local_addr) : local_addr_(local_addr) {
  stats_.segments_out.bind("transport.dm.segments_out");
  stats_.segments_in.bind("transport.dm.segments_in");
  stats_.to_connections.bind("transport.dm.to_connections");
  stats_.to_listeners.bind("transport.dm.to_listeners");
  stats_.unmatched.bind("transport.dm.unmatched");
  stats_.malformed.bind("transport.dm.malformed");
  segment_bytes_.bind("transport.dm.segment_bytes");
  span_ = telemetry::SpanTracer::instance().intern("transport.dm");
}

std::optional<std::uint16_t> Demux::try_allocate_port() {
  constexpr std::uint32_t kLo = 49152;
  constexpr std::uint32_t kHi = 65535;
  for (std::uint32_t probed = 0; probed <= kHi - kLo; ++probed) {
    const std::uint16_t candidate = next_ephemeral_;
    // Wrap strictly inside [kLo, kHi]; the uint16 can never overflow past
    // 65535 into the reserved/registered ranges.
    next_ephemeral_ = candidate >= kHi ? static_cast<std::uint16_t>(kLo)
                                       : static_cast<std::uint16_t>(candidate + 1);
    if (!listeners_.contains(candidate) && !port_use_.contains(candidate)) {
      return candidate;
    }
  }
  return std::nullopt;  // all 16384 ephemeral ports bound or listening
}

std::uint16_t Demux::allocate_port() {
  if (const auto port = try_allocate_port()) return *port;
  throw std::runtime_error(
      "Demux: ephemeral port range 49152-65535 exhausted");
}

bool Demux::bind(const FourTuple& tuple, SegmentHandler handler) {
  const auto [slot, inserted] = connections_.try_emplace(tuple);
  if (!inserted) return false;
  *slot = std::move(handler);
  ++*port_use_.try_emplace(tuple.local_port, 0u).first;
  return true;
}

void Demux::unbind(const FourTuple& tuple) {
  if (!connections_.erase(tuple)) return;
  if (auto* uses = port_use_.find(tuple.local_port);
      uses != nullptr && --*uses == 0) {
    port_use_.erase(tuple.local_port);
  }
}

bool Demux::listen(std::uint16_t port, ListenHandler handler) {
  const auto [slot, inserted] = listeners_.try_emplace(port);
  if (!inserted) return false;
  *slot = std::move(handler);
  return true;
}

void Demux::unlisten(std::uint16_t port) { listeners_.erase(port); }

void Demux::send(const FourTuple& tuple, SublayeredSegment segment) {
  segment.dm.src_port = tuple.local_port;
  segment.dm.dst_port = tuple.remote_port;
  ++stats_.segments_out;
  segment_bytes_.observe(segment.payload.size());
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             segment.payload.size());
  // The netlayer/transport seam: the segment payload as it leaves DM.
  SUBLAYER_TAP(telemetry::TapPoint::kNetTransport, telemetry::Dir::kDown,
               ByteView(segment.payload));
  if (sink_) sink_(tuple.remote_addr, segment);
}

void Demux::on_datagram(netlayer::IpAddr src, Bytes payload) {
  auto segment = SublayeredSegment::decode(std::move(payload));
  if (!segment) {
    ++stats_.segments_in;
    ++stats_.malformed;
    return;
  }
  route(src, std::move(*segment));
}

void Demux::route(netlayer::IpAddr src, SublayeredSegment segment) {
  ++stats_.segments_in;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             segment.payload.size());
  SUBLAYER_TAP(telemetry::TapPoint::kNetTransport, telemetry::Dir::kUp,
               ByteView(segment.payload));
  const FourTuple tuple{local_addr_, segment.dm.dst_port, src,
                        segment.dm.src_port};
  // Handlers are invoked through a copy, never through the table slot: a
  // handler may unbind itself (connection teardown) or bind new tuples
  // (rehashing the table), so no pointer into a table may be live across
  // the invocation.  The slot itself stays populated, so a handler whose
  // send re-enters route() for its own tuple (a self-connection with
  // mirrored ports — Router::forward delivers locally in-line) finds a
  // live handler and recurses, as the std::map code did.  The copy is
  // cheap: every handler captures a single object pointer (SBO).
  if (SegmentHandler* slot = connections_.find(tuple)) {
    ++stats_.to_connections;
    SegmentHandler handler = *slot;
    handler(std::move(segment));
    return;
  }
  if (ListenHandler* slot = listeners_.find(tuple.local_port)) {
    ++stats_.to_listeners;
    ListenHandler handler = *slot;
    handler(tuple, std::move(segment));
    return;
  }
  ++stats_.unmatched;
  if (unmatched_) unmatched_(tuple, segment);
}

void Demux::save(sim::SnapshotWriter& w) const {
  w.u64(stats_.segments_out.value());
  w.u64(stats_.segments_in.value());
  w.u64(stats_.to_connections.value());
  w.u64(stats_.to_listeners.value());
  w.u64(stats_.unmatched.value());
  w.u64(stats_.malformed.value());
  w.u16(next_ephemeral_);
}

void Demux::restore(sim::SnapshotReader& r) {
  stats_.segments_out.restore_local(r.u64());
  stats_.segments_in.restore_local(r.u64());
  stats_.to_connections.restore_local(r.u64());
  stats_.to_listeners.restore_local(r.u64());
  stats_.unmatched.restore_local(r.u64());
  stats_.malformed.restore_local(r.u64());
  next_ephemeral_ = r.u16();
}

}  // namespace sublayer::transport
