#include "transport/sublayered/dm.hpp"

#include <stdexcept>

#include "telemetry/span.hpp"

namespace sublayer::transport {

Demux::Demux(netlayer::IpAddr local_addr) : local_addr_(local_addr) {
  stats_.segments_out.bind("transport.dm.segments_out");
  stats_.segments_in.bind("transport.dm.segments_in");
  stats_.to_connections.bind("transport.dm.to_connections");
  stats_.to_listeners.bind("transport.dm.to_listeners");
  stats_.unmatched.bind("transport.dm.unmatched");
  stats_.malformed.bind("transport.dm.malformed");
  segment_bytes_.bind("transport.dm.segment_bytes");
  span_ = telemetry::SpanTracer::instance().intern("transport.dm");
}

std::uint16_t Demux::allocate_port() {
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? 49152 : next_ephemeral_ + 1;
    bool taken = listeners_.contains(candidate);
    for (const auto& [tuple, handler] : connections_) {
      if (tuple.local_port == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) return candidate;
  }
  throw std::runtime_error("Demux: ephemeral ports exhausted");
}

bool Demux::bind(const FourTuple& tuple, SegmentHandler handler) {
  return connections_.emplace(tuple, std::move(handler)).second;
}

void Demux::unbind(const FourTuple& tuple) { connections_.erase(tuple); }

bool Demux::listen(std::uint16_t port, ListenHandler handler) {
  return listeners_.emplace(port, std::move(handler)).second;
}

void Demux::unlisten(std::uint16_t port) { listeners_.erase(port); }

void Demux::send(const FourTuple& tuple, SublayeredSegment segment) {
  segment.dm.src_port = tuple.local_port;
  segment.dm.dst_port = tuple.remote_port;
  ++stats_.segments_out;
  segment_bytes_.observe(segment.payload.size());
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             segment.payload.size());
  if (sink_) sink_(tuple.remote_addr, segment);
}

void Demux::on_datagram(netlayer::IpAddr src, Bytes payload) {
  auto segment = SublayeredSegment::decode(std::move(payload));
  if (!segment) {
    ++stats_.segments_in;
    ++stats_.malformed;
    return;
  }
  route(src, std::move(*segment));
}

void Demux::route(netlayer::IpAddr src, SublayeredSegment segment) {
  ++stats_.segments_in;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             segment.payload.size());
  const FourTuple tuple{local_addr_, segment.dm.dst_port, src,
                        segment.dm.src_port};
  if (const auto it = connections_.find(tuple); it != connections_.end()) {
    ++stats_.to_connections;
    it->second(std::move(segment));
    return;
  }
  if (const auto it = listeners_.find(tuple.local_port);
      it != listeners_.end()) {
    ++stats_.to_listeners;
    it->second(tuple, std::move(segment));
    return;
  }
  ++stats_.unmatched;
  if (unmatched_) unmatched_(tuple, segment);
}

}  // namespace sublayer::transport
