// The shim sublayer (§3.1, Challenge 2): bidirectional translation between
// the sublayered header of Fig. 6 and the standard RFC 793 header, which
// is what lets a sublayered endpoint interoperate with an unmodified
// monolithic TCP.
//
// The isomorphism, per connection with ISN pair (L = our ISN, P = peer's):
//
//   sublayered                    RFC 793
//   ---------------------------   -----------------------------------
//   SYN                           SYN,            seq = L
//   SYNACK                        SYN|ACK,        seq = L, ack = P+1
//   DATA seq_offset o, ack a      ACK, seq = L+1+o, ack = P+1+a
//   SACK [s, e) (offsets)         SACK [P+1+s, P+1+e) (absolute)
//   recv_window w                 window = min(w, 65535)
//   ecn_echo                      ECE flag
//   FIN at fin_offset f           FIN|ACK, seq = L+1+f
//   FINACK                        ACK with ack = L+1+f+1  (FIN occupies
//                                 one sequence number, as in RFC 793)
//   RST                           RST
//
// Sublayered -> standard needs no per-connection memory beyond what the
// segment itself carries (the ISNs ride in the CM header — "redundant but
// static", §3.1); standard -> sublayered is stateful because RFC 793 only
// reveals ISNs during the handshake, so the shim records them per tuple,
// exactly as a middlebox would.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "netlayer/ip.hpp"
#include "telemetry/metrics.hpp"
#include "transport/wire/sublayered_header.hpp"
#include "transport/wire/tcp_header.hpp"

namespace sublayer::transport {

/// Registry-backed (`transport.shim.*`); reads stay per-instance.
struct ShimStats {
  telemetry::Counter translated_out;
  telemetry::Counter translated_in;
  telemetry::Counter synthesized_finacks;
  telemetry::Counter untranslatable;  // e.g. data before handshake seen
};

class HeaderShim {
 public:
  HeaderShim();

  /// Native segment departing towards `remote`: returns RFC 793 bytes.
  Bytes outgoing(netlayer::IpAddr remote, const SublayeredSegment& segment);

  /// RFC 793 bytes arriving from `remote`: returns the equivalent native
  /// segments (a single 793 segment can mean several sublayered ones,
  /// e.g. a FIN piggybacked on a data ack).
  std::vector<SublayeredSegment> incoming(netlayer::IpAddr remote,
                                          ByteView raw);

  const ShimStats& stats() const { return stats_; }

 private:
  struct ConnState {
    std::uint32_t isn_local = 0;  // our side's ISN
    std::uint32_t isn_peer = 0;
    bool have_local = false;
    bool have_peer = false;
    std::optional<std::uint32_t> local_fin_offset;
    std::optional<std::uint32_t> peer_fin_offset;
    std::uint32_t last_out_seq_offset = 0;  // for pure control segments
    std::uint32_t last_out_ack_offset = 0;
  };
  using Key = std::tuple<netlayer::IpAddr, std::uint16_t, std::uint16_t>;

  ConnState& state_for(netlayer::IpAddr remote, std::uint16_t local_port,
                       std::uint16_t remote_port) {
    return state_[Key{remote, local_port, remote_port}];
  }

  std::map<Key, ConnState> state_;
  ShimStats stats_;
  std::uint32_t span_ = 0;
};

}  // namespace sublayer::transport
