// Timer-based connection management (Watson's Delta-t, simplified) — the
// alternative CM mechanism the paper's Challenge 5 names explicitly.
//
// No connection-opening handshake: the active side picks a clock-monotonic
// ISN and is immediately established; its first data segment both opens
// the peer's connection state and anchors the sequence space.  The peer's
// ISN is learned from the first segment heard in the other direction.
// Where the handshake scheme buys old-duplicate safety from the three-way
// exchange, this scheme buys it from ISN monotonicity plus bounded segment
// lifetimes and quiet times — the timers.
//
// What is deliberately kept from the sibling implementation: reliable FIN
// delivery (the stream length must reach OSR), RST aborts, and the exact
// same CmInterface — nothing outside the sublayer can tell which mechanism
// is running, except that connections open one RTT faster.
#include "transport/sublayered/cm.hpp"

#include "sim/snapshot.hpp"

namespace sublayer::transport {
namespace {

class TimerCm final : public CmInterface {
 public:
  TimerCm(sim::Simulator& sim, IsnProvider& isn_provider, CmConfig config,
          Callbacks callbacks)
      : isn_provider_(isn_provider),
        config_(config),
        cb_(std::move(callbacks)),
        span_(bind_cm_telemetry(stats_)),
        fin_timer_(sim, [this] { on_fin_timer(); }),
        quiet_timer_(sim, [this] {
          enter_state(CmState::kClosed);
          if (cb_.on_closed) cb_.on_closed();
        }),
        keepalive_timer_(sim, [this] { on_keepalive_timer(); }) {
    // Same boundary accounting as the handshake CM: control segments cross
    // down through the wrapped send callback, data in stamp_data().
    if (cb_.send) {
      cb_.send = [this, send = std::move(cb_.send)](SublayeredSegment s) {
        telemetry::SpanTracer::instance().crossing(
            span_, telemetry::Dir::kDown, s.payload.size());
        send(std::move(s));
      };
    }
  }

  void open_active(const FourTuple& tuple) override {
    tuple_ = tuple;
    isn_local_ = isn_provider_.isn(tuple);
    // Established immediately: the first data segment carries the ISN.
    enter_state(CmState::kEstablished);
    note_inbound_activity();
    if (cb_.on_established) cb_.on_established(isn_local_, 0);
  }

  void open_passive(const FourTuple& tuple,
                    const SublayeredSegment& first) override {
    tuple_ = tuple;
    isn_local_ = isn_provider_.isn(tuple);
    isn_peer_ = first.cm.isn_local;
    peer_known_ = true;
    enter_state(CmState::kEstablished);
    note_inbound_activity();
    if (cb_.on_established) cb_.on_established(isn_local_, isn_peer_);
    // The connection-creating segment itself carries the first payload.
    on_segment(first);
  }

  void close(std::uint64_t stream_length) override {
    if (local_fin_sent_ || state_ != CmState::kEstablished) return;
    local_stream_length_ = stream_length;
    local_fin_sent_ = true;
    retries_ = 0;
    send_fin();
  }

  void abort(const std::string& reason) override {
    if (state_ == CmState::kAborted || state_ == CmState::kClosed) return;
    SublayeredSegment rst;
    rst.cm.kind = CmKind::kRst;
    rst.cm.isn_local = isn_local_;
    rst.cm.isn_peer = isn_peer_;
    ++stats_.rst_sent;
    if (cb_.send) cb_.send(std::move(rst));
    fin_timer_.stop();
    keepalive_timer_.stop();
    enter_state(CmState::kAborted);
    if (cb_.on_reset) cb_.on_reset(reason);
  }

  void on_segment(SublayeredSegment segment) override {
    // Covers the connection-creating segment too: open_passive re-enters
    // here, so every inbound segment is one up-crossing.
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                               segment.payload.size());
    switch (segment.cm.kind) {
      case CmKind::kData:
        if (!validate_and_learn(segment)) return;
        note_inbound_activity();
        if (state_ == CmState::kEstablished ||
            state_ == CmState::kTimeWait) {
          if (cb_.deliver_data) cb_.deliver_data(std::move(segment));
        }
        return;

      case CmKind::kFin:
        if (!validate_and_learn(segment)) return;
        note_inbound_activity();
        if (state_ != CmState::kEstablished &&
            state_ != CmState::kTimeWait) {
          return;
        }
        send_finack();
        if (!peer_fin_seen_) {
          peer_fin_seen_ = true;
          if (cb_.on_peer_fin) cb_.on_peer_fin(segment.cm.fin_offset);
          maybe_quiet();
        }
        return;

      case CmKind::kFinAck:
        if (!validate_and_learn(segment)) return;
        note_inbound_activity();
        if (local_fin_sent_ && !local_fin_acked_) {
          local_fin_acked_ = true;
          fin_timer_.stop();
          if (cb_.on_local_fin_acked) cb_.on_local_fin_acked();
          maybe_quiet();
        }
        return;

      case CmKind::kRst:
        if (segment.cm.isn_peer == isn_local_ ||
            (peer_known_ && segment.cm.isn_local == isn_peer_)) {
          fin_timer_.stop();
          keepalive_timer_.stop();
          enter_state(CmState::kAborted);
          if (cb_.on_reset) cb_.on_reset("peer reset");
        } else {
          ++stats_.bad_incarnation;
        }
        return;

      case CmKind::kProbe:
        if (!validate_and_learn(segment)) return;
        note_inbound_activity();
        if (state_ == CmState::kEstablished ||
            state_ == CmState::kTimeWait) {
          send_probe_ack();
        }
        return;

      case CmKind::kProbeAck:
        if (!validate_and_learn(segment)) return;
        note_inbound_activity();
        return;

      case CmKind::kSyn:
      case CmKind::kSynAck:
        // A handshake peer talking to a timer-based endpoint: mechanisms
        // must match within a deployment; reject loudly.
        abort("handshake segment on a timer-based connection");
        return;
    }
  }

  void stamp_data(SublayeredSegment& segment) const override {
    segment.cm.kind = CmKind::kData;
    segment.cm.isn_local = isn_local_;
    segment.cm.isn_peer = peer_known_ ? isn_peer_ : 0;
    segment.cm.fin_offset = 0;
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                               segment.payload.size());
  }

  CmState state() const override { return state_; }
  std::uint32_t isn_local() const override { return isn_local_; }
  std::uint32_t isn_peer() const override { return isn_peer_; }
  bool peer_fin_seen() const override { return peer_fin_seen_; }
  bool local_fin_acked() const override { return local_fin_acked_; }
  const CmStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    save_tuple(w, tuple_);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u32(isn_local_);
    w.u32(isn_peer_);
    w.b(peer_known_);
    w.b(local_fin_sent_);
    w.b(local_fin_acked_);
    w.b(peer_fin_seen_);
    w.u64(local_stream_length_);
    w.i64(retries_);
    w.i64(probes_outstanding_);
    save_cm_stats(w, stats_);
    fin_timer_.save(w);
    quiet_timer_.save(w);
    keepalive_timer_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    tuple_ = restore_tuple(r);
    state_ = static_cast<CmState>(r.u8());  // no transition record
    isn_local_ = r.u32();
    isn_peer_ = r.u32();
    peer_known_ = r.b();
    local_fin_sent_ = r.b();
    local_fin_acked_ = r.b();
    peer_fin_seen_ = r.b();
    local_stream_length_ = r.u64();
    retries_ = static_cast<int>(r.i64());
    probes_outstanding_ = static_cast<int>(r.i64());
    restore_cm_stats(r, stats_);
    fin_timer_.restore(r);
    quiet_timer_.restore(r);
    keepalive_timer_.restore(r);
  }

 private:
  /// Timer-based incarnation filtering: the peer's ISN is learned from the
  /// first segment and pinned thereafter; our own ISN must be echoed (or
  /// still unknown to the peer).  Staleness protection comes from the
  /// provider's monotonic clock, not an exchange.
  bool validate_and_learn(const SublayeredSegment& s) {
    if (!peer_known_) {
      isn_peer_ = s.cm.isn_local;
      peer_known_ = true;
    } else if (s.cm.isn_local != isn_peer_) {
      ++stats_.bad_incarnation;
      return false;
    }
    if (s.cm.isn_peer != 0 && s.cm.isn_peer != isn_local_) {
      ++stats_.bad_incarnation;
      return false;
    }
    return true;
  }

  void send_fin() {
    SublayeredSegment fin;
    fin.cm.kind = CmKind::kFin;
    fin.cm.isn_local = isn_local_;
    fin.cm.isn_peer = peer_known_ ? isn_peer_ : 0;
    fin.cm.fin_offset = static_cast<std::uint32_t>(local_stream_length_);
    ++stats_.fin_sent;
    fin_timer_.restart(cm_backoff(config_, retries_));
    if (cb_.send) cb_.send(std::move(fin));
  }

  void send_finack() {
    SublayeredSegment ack;
    ack.cm.kind = CmKind::kFinAck;
    ack.cm.isn_local = isn_local_;
    ack.cm.isn_peer = isn_peer_;
    if (cb_.send) cb_.send(std::move(ack));
  }

  void send_probe() {
    SublayeredSegment s;
    s.cm.kind = CmKind::kProbe;
    s.cm.isn_local = isn_local_;
    s.cm.isn_peer = peer_known_ ? isn_peer_ : 0;
    ++stats_.keepalive_probes_sent;
    if (cb_.send) cb_.send(std::move(s));
  }

  void send_probe_ack() {
    SublayeredSegment s;
    s.cm.kind = CmKind::kProbeAck;
    s.cm.isn_local = isn_local_;
    s.cm.isn_peer = isn_peer_;
    ++stats_.keepalive_replies_sent;
    if (cb_.send) cb_.send(std::move(s));
  }

  void enter_state(CmState next) {
    record_cm_transition(tuple_, state_, next);
    state_ = next;
  }

  void note_inbound_activity() {
    probes_outstanding_ = 0;
    if (config_.keepalive_interval.is_zero()) return;
    if (state_ == CmState::kEstablished) {
      keepalive_timer_.restart(config_.keepalive_interval);
    }
  }

  void on_keepalive_timer() {
    if (state_ != CmState::kEstablished) return;
    if (probes_outstanding_ >= config_.max_keepalive_probes) {
      ++stats_.keepalive_aborts;
      abort("keepalive timeout: peer is dead");
      return;
    }
    send_probe();
    keepalive_timer_.restart(cm_backoff(config_, probes_outstanding_));
    ++probes_outstanding_;
  }

  void on_fin_timer() {
    if (!local_fin_sent_ || local_fin_acked_) return;
    if (++retries_ > config_.max_handshake_retries) {
      // Timer-based teardown: give up on the ack and let quiet time
      // finish the job (the peer's own timers reclaim its state).
      maybe_quiet(/*force=*/true);
      return;
    }
    ++stats_.fin_retransmits;
    send_fin();
  }

  void maybe_quiet(bool force = false) {
    const bool done = local_fin_acked_ && peer_fin_seen_;
    if ((done || force) && state_ == CmState::kEstablished) {
      fin_timer_.stop();
      keepalive_timer_.stop();
      enter_state(CmState::kTimeWait);  // quiet time before reclaiming state
      quiet_timer_.restart(config_.time_wait);
    }
  }

  IsnProvider& isn_provider_;
  CmConfig config_;
  Callbacks cb_;

  FourTuple tuple_;
  CmState state_ = CmState::kClosed;
  std::uint32_t isn_local_ = 0;
  std::uint32_t isn_peer_ = 0;
  bool peer_known_ = false;
  bool local_fin_sent_ = false;
  bool local_fin_acked_ = false;
  bool peer_fin_seen_ = false;
  std::uint64_t local_stream_length_ = 0;
  int retries_ = 0;
  int probes_outstanding_ = 0;
  CmStats stats_;
  std::uint32_t span_ = 0;
  sim::Timer fin_timer_;
  sim::Timer quiet_timer_;
  sim::Timer keepalive_timer_;
};

}  // namespace

std::unique_ptr<CmInterface> make_cm(sim::Simulator& sim,
                                     IsnProvider& isn_provider,
                                     CmConfig config,
                                     CmInterface::Callbacks callbacks) {
  switch (config.scheme) {
    case CmScheme::kHandshake:
      return std::make_unique<ConnectionManager>(sim, isn_provider, config,
                                                 std::move(callbacks));
    case CmScheme::kTimerBased:
      return std::make_unique<TimerCm>(sim, isn_provider, config,
                                       std::move(callbacks));
  }
  throw std::invalid_argument("unknown CM scheme");
}

}  // namespace sublayer::transport
