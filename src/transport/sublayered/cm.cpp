#include "transport/sublayered/cm.hpp"

#include "sim/snapshot.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sublayer::transport {

const char* to_string(CmState s) {
  switch (s) {
    case CmState::kClosed: return "CLOSED";
    case CmState::kSynSent: return "SYN_SENT";
    case CmState::kSynRcvd: return "SYN_RCVD";
    case CmState::kEstablished: return "ESTABLISHED";
    case CmState::kTimeWait: return "TIME_WAIT";
    case CmState::kAborted: return "ABORTED";
  }
  return "?";
}

void record_cm_transition(const FourTuple& tuple, CmState from, CmState to) {
  auto* fr = telemetry::FlightRecorder::current();
  if (fr == nullptr || from == to) return;
  // A deterministic per-endpoint flow id: each side of a connection mixes
  // its own (addr, port) with the peer's, so open and close records from
  // one endpoint always pair, and the two directions stay distinct.
  const std::uint64_t local =
      static_cast<std::uint64_t>(tuple.local_addr) << 16 | tuple.local_port;
  const std::uint64_t remote =
      static_cast<std::uint64_t>(tuple.remote_addr) << 16 | tuple.remote_port;
  const std::uint64_t flow = local ^ (remote * 0x9E3779B97F4A7C15ull);
  fr->record_now(telemetry::FlightType::kCmTransition, to_string(to), flow,
                 static_cast<std::uint64_t>(from),
                 static_cast<std::uint64_t>(to));
  if (to == CmState::kEstablished) {
    fr->record_now(telemetry::FlightType::kFlowOpen, "cm", flow);
  } else if ((to == CmState::kClosed || to == CmState::kAborted) &&
             (from == CmState::kEstablished || from == CmState::kTimeWait)) {
    fr->record_now(telemetry::FlightType::kFlowClose, "cm", flow);
  }
}

void save_tuple(sim::SnapshotWriter& w, const FourTuple& t) {
  w.u32(t.local_addr);
  w.u16(t.local_port);
  w.u32(t.remote_addr);
  w.u16(t.remote_port);
}

FourTuple restore_tuple(sim::SnapshotReader& r) {
  FourTuple t;
  t.local_addr = r.u32();
  t.local_port = r.u16();
  t.remote_addr = r.u32();
  t.remote_port = r.u16();
  return t;
}

std::uint32_t bind_cm_telemetry(CmStats& stats) {
  stats.syn_sent.bind("transport.cm.syn_sent");
  stats.syn_retransmits.bind("transport.cm.syn_retransmits");
  stats.fin_sent.bind("transport.cm.fin_sent");
  stats.fin_retransmits.bind("transport.cm.fin_retransmits");
  stats.rst_sent.bind("transport.cm.rst_sent");
  stats.bad_incarnation.bind("transport.cm.bad_incarnation");
  stats.keepalive_probes_sent.bind("transport.cm.keepalive_probes_sent");
  stats.keepalive_replies_sent.bind("transport.cm.keepalive_replies_sent");
  stats.keepalive_aborts.bind("transport.cm.keepalive_aborts");
  return telemetry::SpanTracer::instance().intern("transport.cm");
}

ConnectionManager::ConnectionManager(sim::Simulator& sim,
                                     IsnProvider& isn_provider,
                                     CmConfig config, Callbacks callbacks)
    : sim_(sim),
      isn_provider_(isn_provider),
      config_(config),
      cb_(std::move(callbacks)),
      span_(bind_cm_telemetry(stats_)),
      handshake_timer_(sim, [this] { on_handshake_timer(); }),
      time_wait_timer_(sim, [this] {
        enter_state(CmState::kClosed);
        if (cb_.on_closed) cb_.on_closed();
      }),
      keepalive_timer_(sim, [this] { on_keepalive_timer(); }) {
  // Every control segment CM emits is a down-crossing of the CM/DM
  // boundary; data segments cross in stamp_data().
  if (cb_.send) {
    cb_.send = [this, send = std::move(cb_.send)](SublayeredSegment s) {
      telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                                 s.payload.size());
      send(std::move(s));
    };
  }
}

void ConnectionManager::open_active(const FourTuple& tuple) {
  tuple_ = tuple;
  isn_local_ = isn_provider_.isn(tuple);
  enter_state(CmState::kSynSent);
  retries_ = 0;
  send_syn();
}

void ConnectionManager::open_passive(const FourTuple& tuple,
                                     const SublayeredSegment& first) {
  const SublayeredSegment& syn = first;
  // The connection-creating SYN reached CM via the listener, not
  // on_segment; it is an up-crossing all the same.
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             first.payload.size());
  tuple_ = tuple;
  isn_peer_ = syn.cm.isn_local;
  isn_local_ = isn_provider_.isn(tuple);
  enter_state(CmState::kSynRcvd);
  retries_ = 0;
  send_synack();
}

void ConnectionManager::send_syn() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kSyn;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = 0;
  ++stats_.syn_sent;
  handshake_timer_.restart(cm_backoff(config_, retries_));
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_synack() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kSynAck;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  handshake_timer_.restart(cm_backoff(config_, retries_));
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_fin() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kFin;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  s.cm.fin_offset = static_cast<std::uint32_t>(local_stream_length_);
  ++stats_.fin_sent;
  handshake_timer_.restart(cm_backoff(config_, retries_));
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_finack() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kFinAck;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_rst() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kRst;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  ++stats_.rst_sent;
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_probe() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kProbe;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  ++stats_.keepalive_probes_sent;
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::send_probe_ack() {
  SublayeredSegment s;
  s.cm.kind = CmKind::kProbeAck;
  s.cm.isn_local = isn_local_;
  s.cm.isn_peer = isn_peer_;
  ++stats_.keepalive_replies_sent;
  if (cb_.send) cb_.send(std::move(s));
}

void ConnectionManager::note_inbound_activity() {
  probes_outstanding_ = 0;
  if (config_.keepalive_interval.is_zero()) return;
  if (state_ == CmState::kEstablished) {
    keepalive_timer_.restart(config_.keepalive_interval);
  }
}

void ConnectionManager::on_keepalive_timer() {
  if (state_ != CmState::kEstablished) return;
  if (probes_outstanding_ >= config_.max_keepalive_probes) {
    ++stats_.keepalive_aborts;
    abort("keepalive timeout: peer is dead");
    return;
  }
  send_probe();
  // Probes retry on the handshake backoff schedule, so a dead peer is
  // declared in roughly keepalive_interval + rto * (2^probes - 1) rather
  // than probes * keepalive_interval.
  keepalive_timer_.restart(cm_backoff(config_, probes_outstanding_));
  ++probes_outstanding_;
}

void ConnectionManager::on_handshake_timer() {
  if (++retries_ > config_.max_handshake_retries) {
    abort("handshake/teardown retries exhausted");
    return;
  }
  switch (state_) {
    case CmState::kSynSent:
      ++stats_.syn_retransmits;
      send_syn();
      break;
    case CmState::kSynRcvd:
      send_synack();
      break;
    case CmState::kEstablished:
      if (local_fin_sent_ && !local_fin_acked_) {
        ++stats_.fin_retransmits;
        send_fin();
      }
      break;
    default:
      break;
  }
}

bool ConnectionManager::incarnation_ok(const SublayeredSegment& s) const {
  return s.cm.isn_local == isn_peer_ && s.cm.isn_peer == isn_local_;
}

void ConnectionManager::close(std::uint64_t stream_length) {
  if (local_fin_sent_ || state_ != CmState::kEstablished) return;
  local_stream_length_ = stream_length;
  local_fin_sent_ = true;
  retries_ = 0;
  send_fin();
}

void ConnectionManager::abort(const std::string& reason) {
  if (state_ == CmState::kAborted || state_ == CmState::kClosed) return;
  send_rst();
  handshake_timer_.stop();
  keepalive_timer_.stop();
  enter_state(CmState::kAborted);
  if (cb_.on_reset) cb_.on_reset(reason);
}

void ConnectionManager::enter_state(CmState next) {
  record_cm_transition(tuple_, state_, next);
  state_ = next;
}

void ConnectionManager::maybe_time_wait() {
  if (state_ == CmState::kEstablished && local_fin_acked_ && peer_fin_seen_) {
    enter_time_wait();
  }
}

void ConnectionManager::enter_time_wait() {
  handshake_timer_.stop();
  keepalive_timer_.stop();
  enter_state(CmState::kTimeWait);
  time_wait_timer_.restart(config_.time_wait);
}

void ConnectionManager::on_segment(SublayeredSegment segment) {
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             segment.payload.size());
  switch (segment.cm.kind) {
    case CmKind::kSyn:
      // Duplicate SYN from our peer while we wait for the final ack.
      if (state_ == CmState::kSynRcvd && segment.cm.isn_local == isn_peer_) {
        send_synack();
      }
      return;

    case CmKind::kSynAck:
      if (state_ == CmState::kSynSent && segment.cm.isn_peer == isn_local_) {
        isn_peer_ = segment.cm.isn_local;
        handshake_timer_.stop();
        enter_state(CmState::kEstablished);
        note_inbound_activity();  // arm the keepalive clock
        if (cb_.on_established) cb_.on_established(isn_local_, isn_peer_);
      } else if (state_ == CmState::kEstablished && incarnation_ok(segment)) {
        // Our handshake-completing ack was lost; re-ack.
        if (cb_.request_ack) cb_.request_ack();
      }
      return;

    case CmKind::kData:
      if (!incarnation_ok(segment)) {
        ++stats_.bad_incarnation;
        // A delayed duplicate from another incarnation: CM's guarantee to
        // RD is that such segments never reach it.
        return;
      }
      // A validated segment proves the peer is alive; forged or stale
      // segments deliberately do NOT reset the dead-peer probe budget.
      note_inbound_activity();
      if (state_ == CmState::kSynRcvd) {
        // First valid segment of the new incarnation completes the
        // handshake on the passive side.
        handshake_timer_.stop();
        enter_state(CmState::kEstablished);
        note_inbound_activity();
        if (cb_.on_established) cb_.on_established(isn_local_, isn_peer_);
      }
      if (state_ == CmState::kEstablished || state_ == CmState::kTimeWait) {
        if (cb_.deliver_data) cb_.deliver_data(std::move(segment));
      }
      return;

    case CmKind::kFin:
      if (!incarnation_ok(segment)) {
        ++stats_.bad_incarnation;
        return;
      }
      note_inbound_activity();
      if (state_ == CmState::kSynRcvd) {
        handshake_timer_.stop();
        enter_state(CmState::kEstablished);
        note_inbound_activity();
        if (cb_.on_established) cb_.on_established(isn_local_, isn_peer_);
      }
      if (state_ == CmState::kEstablished || state_ == CmState::kTimeWait) {
        send_finack();  // re-ack duplicates too
        if (!peer_fin_seen_) {
          peer_fin_seen_ = true;
          if (cb_.on_peer_fin) cb_.on_peer_fin(segment.cm.fin_offset);
          maybe_time_wait();
        }
      }
      return;

    case CmKind::kFinAck:
      if (!incarnation_ok(segment)) {
        ++stats_.bad_incarnation;
        return;
      }
      note_inbound_activity();
      if (local_fin_sent_ && !local_fin_acked_) {
        local_fin_acked_ = true;
        handshake_timer_.stop();
        if (cb_.on_local_fin_acked) cb_.on_local_fin_acked();
        maybe_time_wait();
      }
      return;

    case CmKind::kRst:
      // Validate loosely: a RST must at least quote one of our ISNs so a
      // blind attacker cannot tear the connection down.
      if (segment.cm.isn_peer == isn_local_ ||
          segment.cm.isn_local == isn_peer_) {
        handshake_timer_.stop();
        keepalive_timer_.stop();
        enter_state(CmState::kAborted);
        if (cb_.on_reset) cb_.on_reset("peer reset");
      } else {
        ++stats_.bad_incarnation;
      }
      return;

    case CmKind::kProbe:
      if (!incarnation_ok(segment)) {
        ++stats_.bad_incarnation;
        return;
      }
      note_inbound_activity();
      if (state_ == CmState::kEstablished || state_ == CmState::kTimeWait) {
        send_probe_ack();
      }
      return;

    case CmKind::kProbeAck:
      // Validated reply: the peer is alive, clear the dead-peer budget.  A
      // blind forged reply must not keep a stale incarnation alive.
      if (!incarnation_ok(segment)) {
        ++stats_.bad_incarnation;
        return;
      }
      note_inbound_activity();
      return;
  }
}

void save_cm_stats(sim::SnapshotWriter& w, const CmStats& stats) {
  w.u64(stats.syn_sent.value());
  w.u64(stats.syn_retransmits.value());
  w.u64(stats.fin_sent.value());
  w.u64(stats.fin_retransmits.value());
  w.u64(stats.rst_sent.value());
  w.u64(stats.bad_incarnation.value());
  w.u64(stats.keepalive_probes_sent.value());
  w.u64(stats.keepalive_replies_sent.value());
  w.u64(stats.keepalive_aborts.value());
}

void restore_cm_stats(sim::SnapshotReader& r, CmStats& stats) {
  stats.syn_sent.restore_local(r.u64());
  stats.syn_retransmits.restore_local(r.u64());
  stats.fin_sent.restore_local(r.u64());
  stats.fin_retransmits.restore_local(r.u64());
  stats.rst_sent.restore_local(r.u64());
  stats.bad_incarnation.restore_local(r.u64());
  stats.keepalive_probes_sent.restore_local(r.u64());
  stats.keepalive_replies_sent.restore_local(r.u64());
  stats.keepalive_aborts.restore_local(r.u64());
}

void ConnectionManager::save(sim::SnapshotWriter& w) const {
  save_tuple(w, tuple_);
  w.u8(static_cast<std::uint8_t>(state_));
  w.u32(isn_local_);
  w.u32(isn_peer_);
  w.i64(retries_);
  w.b(local_fin_sent_);
  w.b(local_fin_acked_);
  w.b(peer_fin_seen_);
  w.u64(local_stream_length_);
  w.i64(probes_outstanding_);
  save_cm_stats(w, stats_);
  handshake_timer_.save(w);
  time_wait_timer_.save(w);
  keepalive_timer_.save(w);
}

void ConnectionManager::restore(sim::SnapshotReader& r) {
  tuple_ = restore_tuple(r);
  // Straight into state_, not through enter_state(): a restore is not a
  // transition, so no flight-recorder record and no callbacks.
  state_ = static_cast<CmState>(r.u8());
  isn_local_ = r.u32();
  isn_peer_ = r.u32();
  retries_ = static_cast<int>(r.i64());
  local_fin_sent_ = r.b();
  local_fin_acked_ = r.b();
  peer_fin_seen_ = r.b();
  local_stream_length_ = r.u64();
  probes_outstanding_ = static_cast<int>(r.i64());
  restore_cm_stats(r, stats_);
  handshake_timer_.restore(r);
  time_wait_timer_.restore(r);
  keepalive_timer_.restore(r);
}

void ConnectionManager::stamp_data(SublayeredSegment& segment) const {
  segment.cm.kind = CmKind::kData;
  segment.cm.isn_local = isn_local_;
  segment.cm.isn_peer = isn_peer_;
  segment.cm.fin_offset = 0;
  // Data (and ack) segments pass down through CM here on their way to DM.
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             segment.payload.size());
}

}  // namespace sublayer::transport
