#include "transport/sublayered/shim.hpp"

#include <algorithm>

#include "telemetry/span.hpp"

namespace sublayer::transport {

HeaderShim::HeaderShim() {
  stats_.translated_out.bind("transport.shim.translated_out");
  stats_.translated_in.bind("transport.shim.translated_in");
  stats_.synthesized_finacks.bind("transport.shim.synthesized_finacks");
  stats_.untranslatable.bind("transport.shim.untranslatable");
  span_ = telemetry::SpanTracer::instance().intern("transport.shim");
}

Bytes HeaderShim::outgoing(netlayer::IpAddr remote,
                           const SublayeredSegment& s) {
  ConnState& st = state_for(remote, s.dm.src_port, s.dm.dst_port);
  TcpHeader h;
  h.src_port = s.dm.src_port;
  h.dst_port = s.dm.dst_port;
  ++stats_.translated_out;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             s.payload.size());

  switch (s.cm.kind) {
    case CmKind::kSyn:
      st.isn_local = s.cm.isn_local;
      st.have_local = true;
      h.flag_syn = true;
      h.seq = st.isn_local;
      h.mss = 1200;
      return h.encode({});

    case CmKind::kSynAck:
      st.isn_local = s.cm.isn_local;
      st.isn_peer = s.cm.isn_peer;
      st.have_local = st.have_peer = true;
      h.flag_syn = h.flag_ack = true;
      h.seq = st.isn_local;
      h.ack = st.isn_peer + 1;
      h.mss = 1200;
      return h.encode({});

    case CmKind::kData: {
      // The CM header carries the ISNs on every data segment, so this
      // direction needs no handshake memory.
      st.isn_local = s.cm.isn_local;
      st.isn_peer = s.cm.isn_peer;
      st.have_local = st.have_peer = true;
      h.flag_ack = true;
      h.seq = st.isn_local + 1 + s.rd.seq_offset;
      h.ack = st.isn_peer + 1 + s.rd.ack_offset;
      h.window = static_cast<std::uint16_t>(
          std::min<std::uint32_t>(s.osr.recv_window, 65535));
      h.flag_ece = s.osr.ecn_echo;
      for (const auto& block : s.rd.sack) {
        h.sack.push_back(SackBlock{st.isn_peer + 1 + block.start,
                                   st.isn_peer + 1 + block.end});
      }
      st.last_out_seq_offset =
          s.rd.seq_offset + static_cast<std::uint32_t>(s.payload.size());
      st.last_out_ack_offset = s.rd.ack_offset;
      return h.encode(s.payload);
    }

    case CmKind::kFin:
      st.local_fin_offset = s.cm.fin_offset;
      h.flag_fin = h.flag_ack = true;
      h.seq = s.cm.isn_local + 1 + s.cm.fin_offset;
      h.ack = s.cm.isn_peer + 1 + st.last_out_ack_offset;
      return h.encode({});

    case CmKind::kFinAck: {
      // Acknowledge the peer's FIN: its sequence number is one past the
      // peer's final byte.
      h.flag_ack = true;
      h.seq = s.cm.isn_local + 1 + st.last_out_seq_offset;
      const std::uint32_t peer_fin =
          st.peer_fin_offset ? *st.peer_fin_offset : st.last_out_ack_offset;
      h.ack = s.cm.isn_peer + 1 + peer_fin + 1;
      return h.encode({});
    }

    case CmKind::kRst:
      h.flag_rst = true;
      h.seq = st.have_local ? st.isn_local + 1 + st.last_out_seq_offset : 0;
      h.ack = st.have_peer ? st.isn_peer + 1 + st.last_out_ack_offset : 0;
      h.flag_ack = st.have_peer;
      return h.encode({});

    case CmKind::kProbe:
    case CmKind::kProbeAck:
      // RFC 793 has no distinct keepalive segment; the closest rendering is
      // a duplicate pure ACK.  A standard peer will not answer it, so
      // keepalives are only effective on native-wire deployments — the
      // shim keeps the bits flowing but cannot conjure a reply protocol.
      h.flag_ack = true;
      h.seq = s.cm.isn_local + 1 + st.last_out_seq_offset;
      h.ack = s.cm.isn_peer + 1 + st.last_out_ack_offset;
      return h.encode({});
  }
  return h.encode({});
}

std::vector<SublayeredSegment> HeaderShim::incoming(netlayer::IpAddr remote,
                                                    ByteView raw) {
  std::vector<SublayeredSegment> out;
  // One up-crossing per native segment the translation yields.
  const auto emit = [this](std::vector<SublayeredSegment> v) {
    for (const auto& s : v) {
      telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                                 s.payload.size());
    }
    return v;
  };
  const auto parsed = decode_tcp_segment(raw);
  if (!parsed) {
    ++stats_.untranslatable;
    return out;
  }
  const TcpHeader& h = parsed->header;
  ConnState& st = state_for(remote, h.dst_port, h.src_port);

  const auto base = [&](CmKind kind) {
    SublayeredSegment s;
    s.dm.src_port = h.src_port;
    s.dm.dst_port = h.dst_port;
    s.cm.kind = kind;
    s.cm.isn_local = st.isn_peer;  // sender of this segment is the peer
    s.cm.isn_peer = st.isn_local;
    return s;
  };

  if (h.flag_rst) {
    ++stats_.translated_in;
    out.push_back(base(CmKind::kRst));
    return emit(std::move(out));
  }

  if (h.flag_syn && !h.flag_ack) {
    st.isn_peer = h.seq;
    st.have_peer = true;
    ++stats_.translated_in;
    SublayeredSegment s = base(CmKind::kSyn);
    s.cm.isn_local = h.seq;
    s.cm.isn_peer = 0;
    return emit({s});
  }

  if (h.flag_syn && h.flag_ack) {
    st.isn_peer = h.seq;
    st.have_peer = true;
    st.isn_local = h.ack - 1;
    st.have_local = true;
    ++stats_.translated_in;
    SublayeredSegment s = base(CmKind::kSynAck);
    s.cm.isn_local = st.isn_peer;
    s.cm.isn_peer = st.isn_local;
    return emit({s});
  }

  if (!st.have_local || !st.have_peer) {
    ++stats_.untranslatable;  // data before any observed handshake
    return out;
  }

  // 1. Does this ack cover our FIN?  (FIN occupies one sequence number.)
  if (st.local_fin_offset && h.flag_ack &&
      seq_ge(h.ack, st.isn_local + 1 + *st.local_fin_offset + 1)) {
    ++stats_.synthesized_finacks;
    out.push_back(base(CmKind::kFinAck));
  }

  // 2. The data/ack content.
  {
    SublayeredSegment s = base(CmKind::kData);
    s.rd.seq_offset = h.seq - (st.isn_peer + 1);
    std::uint32_t ack_offset = h.ack - (st.isn_local + 1);
    if (st.local_fin_offset && seq_gt(h.ack, st.isn_local + 1 +
                                                 *st.local_fin_offset)) {
      ack_offset = *st.local_fin_offset;  // clamp: the +1 was for our FIN
    }
    s.rd.ack_offset = ack_offset;
    // SACK blocks live in the same sequence space as the ack field: they
    // acknowledge data WE sent, so they are anchored at our ISN.
    for (const auto& block : h.sack) {
      s.rd.sack.push_back(SackBlock{block.start - (st.isn_local + 1),
                                    block.end - (st.isn_local + 1)});
    }
    s.osr.recv_window = h.window;
    s.osr.ecn_echo = h.flag_ece;
    s.payload = parsed->payload;
    ++stats_.translated_in;
    out.push_back(std::move(s));
  }

  // 3. A FIN, possibly piggybacked on data.
  if (h.flag_fin) {
    const std::uint32_t fin_offset =
        h.seq + static_cast<std::uint32_t>(parsed->payload.size()) -
        (st.isn_peer + 1);
    st.peer_fin_offset = fin_offset;
    SublayeredSegment s = base(CmKind::kFin);
    s.cm.fin_offset = fin_offset;
    ++stats_.translated_in;
    out.push_back(std::move(s));
  }
  return emit(std::move(out));
}

}  // namespace sublayer::transport
