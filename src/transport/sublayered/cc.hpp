// Congestion-control plug-in interface for the OSR sublayer.
//
// Following the paper's T3 requirement and Narayan et al. [26], all
// congestion signals reach the algorithm through this narrow interface:
// ack events (with RTT samples) and loss events (summarized by RD), plus
// explicit ECN marks carried in the OSR subheader.  The algorithm answers
// with a congestion window and, optionally, a pacing rate.  Swapping the
// algorithm touches nothing outside this interface (Challenge 5).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/time.hpp"

namespace sublayer::sim {
class SnapshotWriter;
class SnapshotReader;
}  // namespace sublayer::sim

namespace sublayer::transport {

struct AckEvent {
  TimePoint now;
  std::uint64_t bytes_newly_acked = 0;
  std::optional<Duration> rtt;  // absent for acks of retransmitted data
  std::uint64_t bytes_in_flight = 0;
  bool ecn_echo = false;
};

enum class LossKind {
  kFastRetransmit,  // triple duplicate ack / SACK-inferred hole
  kTimeout,         // retransmission timer expiry
};

struct LossEvent {
  TimePoint now;
  LossKind kind = LossKind::kFastRetransmit;
  std::uint64_t bytes_in_flight = 0;
};

class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;

  virtual std::string name() const = 0;

  virtual void on_ack(const AckEvent& event) = 0;
  virtual void on_loss(const LossEvent& event) = 0;

  /// Current congestion window in bytes.
  virtual std::uint64_t cwnd_bytes() const = 0;

  /// Pacing rate in bits/s for rate-based algorithms; nullopt means pure
  /// window-based release.
  virtual std::optional<double> pacing_bps() const { return std::nullopt; }

  /// Slow-start threshold, for diagnostics/benchmarks.
  virtual std::uint64_t ssthresh_bytes() const { return 0; }

  /// Checkpoint/restore (sim/snapshot.hpp): the algorithm's hidden state —
  /// windows, thresholds, cubic epochs, pacing rates.  Config is not
  /// saved; the restore graph constructs the same algorithm from the same
  /// config.  Inline format; the owning OSR brackets.
  virtual void save(sim::SnapshotWriter& w) const = 0;
  virtual void restore(sim::SnapshotReader& r) = 0;
};

struct CcConfig {
  std::uint32_t mss = 1200;
  std::uint64_t initial_cwnd_segments = 4;
  double aimd_increase_segments = 1.0;  // AIMD: additive increase per RTT
  double aimd_beta = 0.5;               // AIMD: multiplicative decrease
  double fixed_rate_bps = 8e6;          // rate-based: constant pacing rate
};

std::unique_ptr<CcAlgorithm> make_reno(const CcConfig& config = {});
std::unique_ptr<CcAlgorithm> make_cubic(const CcConfig& config = {});
std::unique_ptr<CcAlgorithm> make_aimd(const CcConfig& config = {});
/// A rate-based controller with AIMD-adjusted pacing (no cwnd dynamics):
/// demonstrates replacing window-based congestion control wholesale.
std::unique_ptr<CcAlgorithm> make_rate_based(const CcConfig& config = {});

/// Factory by name: "reno", "cubic", "aimd", "rate".
std::unique_ptr<CcAlgorithm> make_cc(const std::string& name,
                                     const CcConfig& config = {});

}  // namespace sublayer::transport
