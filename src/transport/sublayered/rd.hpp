// RD — the reliable-delivery sublayer (Fig. 5).
//
// Service: exactly-once delivery of byte segments identified by their
// stream offset.  OSR hands RD a segment when rate control deems it
// "ready"; RD retransmits until acknowledged.  At the receiver, RD
// delivers each byte range exactly once but possibly OUT OF ORDER —
// reassembly is OSR's job (§3).
//
// Mechanisms encapsulated here (invisible above or below, T3):
//   - retransmission queue and RTO (Jacobson/Karels estimator, Karn's
//     rule, exponential backoff),
//   - duplicate-ack counting and fast retransmit,
//   - SACK generation (receiver) and SACK-aware retransmission (sender),
//   - received-range tracking for exactly-once semantics.
//
// Congestion signals are *summarized* upward to OSR through the ack/loss
// feedback callbacks (the CCP-style split of Narayan et al. [26]); RD
// itself makes no rate decisions.  The OSR header bits that ride on RD's
// acks (receive window, ECN echo) are obtained opaquely through the
// osr_header callback — RD never interprets them (T3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "transport/sublayered/cc.hpp"
#include "transport/wire/sublayered_header.hpp"

namespace sublayer::transport {

struct RdConfig {
  Duration initial_rto = Duration::millis(200);
  Duration min_rto = Duration::millis(20);
  Duration max_rto = Duration::seconds(10.0);
  int dupack_threshold = 3;
  int max_retransmits = 12;  // per segment, before declaring the peer dead
  /// Ablation switch: with SACK off, acks carry no blocks and the sender
  /// ignores any it receives (pure cumulative-ack operation).
  bool enable_sack = true;
  /// Tail-loss probe (RACK/TLP-style): when outstanding data has drawn no
  /// acks for ~1.5 smoothed RTTs, retransmit the head hole once WITHOUT
  /// declaring a timeout — if the probe's ack shows losses, recovery runs
  /// at fast-retransmit cost instead of an RTO's window collapse.
  bool enable_tail_probe = true;
};

/// Registry-backed (`transport.rd.*`); reads stay per-instance.
struct RdStats {
  telemetry::Counter segments_sent;
  telemetry::Counter bytes_sent;
  telemetry::Counter fast_retransmits;
  telemetry::Counter timeout_retransmits;
  telemetry::Counter acks_sent;
  telemetry::Counter acks_received;
  telemetry::Counter duplicate_acks;
  telemetry::Counter bytes_delivered_up;
  telemetry::Counter duplicate_bytes_dropped;
  telemetry::Counter sacked_segments_spared;  // retransmissions avoided by SACK
  telemetry::Counter tail_probes;
};

/// Feedback summarized to OSR on every ack (T2 interface).
struct AckFeedback {
  TimePoint now;
  std::uint64_t acked_through = 0;      // cumulative: all bytes < this acked
  std::uint64_t bytes_newly_acked = 0;  // includes newly SACKed bytes
  std::optional<Duration> rtt;
  std::uint32_t peer_recv_window = 0;
  bool ecn_echo = false;
};

class ReliableDelivery {
 public:
  struct Callbacks {
    /// Transmission of a DATA segment (CM stamps its header, DM the ports).
    std::function<void(SublayeredSegment)> send;
    /// Exactly-once delivery of a byte range to OSR (maybe out of order).
    std::function<void(std::uint64_t offset, Bytes data)> deliver;
    /// Ack summary for OSR's rate control.
    std::function<void(const AckFeedback&)> on_ack_feedback;
    /// Loss summary for OSR's rate control.
    std::function<void(LossKind)> on_loss;
    /// OSR's header bits for outgoing segments (opaque to RD).
    std::function<OsrHeader()> osr_header;
    /// The peer stopped acknowledging entirely (retransmit budget spent).
    std::function<void()> on_peer_dead;
  };

  ReliableDelivery(sim::Simulator& sim, RdConfig config, Callbacks callbacks);

  /// OSR says this segment is ready: transmit and guarantee delivery.
  void send_segment(std::uint64_t offset, Bytes data);

  /// A pure acknowledgement (also used to complete the CM handshake).
  void send_pure_ack();

  /// Inbound validated DATA segment from CM.
  void on_data_segment(const SublayeredSegment& segment);

  /// Sender-side progress.
  std::uint64_t acked() const { return snd_una_; }
  std::uint64_t highest_sent() const { return snd_nxt_; }
  bool all_acked() const { return outstanding_.empty(); }

  /// Receiver-side progress: next byte offset expected in order.
  std::uint64_t rcv_next() const { return rcv_next_; }

  Duration current_rto() const { return rto_; }
  const RdStats& stats() const { return stats_; }

  /// Checkpoint/restore (sim/snapshot.hpp): the retransmission queue with
  /// every segment's payload and retry bookkeeping, the RTT estimator, the
  /// fast-recovery episode, received-range tracking, and the retransmit
  /// timer — a mid-retransmit window resumes exactly where it parked.
  /// Inline format; the owning Connection brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  struct Outstanding {
    Bytes data;
    TimePoint sent_at;
    int transmissions = 1;
    int timeout_retx = 0;  // only RTO attempts count against the budget
    bool sacked = false;
  };

  void transmit(std::uint64_t offset, const Outstanding& seg);
  void on_retx_timer();
  void on_rto();
  void send_tail_probe();
  void arm_timer();
  void process_ack(const SublayeredSegment& segment);
  void process_payload(const SublayeredSegment& segment);
  void emit_ack();
  void note_rtt(Duration sample);
  std::vector<SackBlock> build_sack() const;

  sim::Simulator& sim_;
  RdConfig config_;
  Callbacks cb_;
  RdStats stats_;
  telemetry::Histogram rtt_us_;
  std::uint32_t span_ = 0;

  // Sender state.
  std::map<std::uint64_t, Outstanding> outstanding_;  // keyed by offset
  std::uint64_t snd_una_ = 0;  // lowest unacked byte
  std::uint64_t snd_nxt_ = 0;  // next byte offset never sent
  std::uint64_t last_ack_seen_ = 0;
  int dupacks_ = 0;
  // Fast-recovery episode (NewReno-style): at most one fast retransmit per
  // window of data; partial acks inside the episode retransmit the next
  // hole without waiting for three more duplicates.
  bool in_fast_recovery_ = false;
  std::uint64_t recovery_end_ = 0;
  Duration rto_;
  std::optional<Duration> srtt_;
  Duration rttvar_;
  sim::Timer retx_timer_;
  bool probe_pending_ = false;  // next timer expiry is a tail probe, not RTO

  // Receiver state: coalesced received ranges [start, end).
  std::map<std::uint64_t, std::uint64_t> received_;
  std::uint64_t rcv_next_ = 0;
};

}  // namespace sublayer::transport
