#include "common/time.hpp"

#include <cstdio>

namespace sublayer {

std::string to_string(Duration d) {
  char buf[64];
  const double ms = d.to_millis();
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d.ns()));
  }
  return buf;
}

std::string to_string(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.to_seconds());
  return buf;
}

}  // namespace sublayer
