#include "common/time.hpp"

#include <cstdio>
#include <vector>

namespace sublayer {

std::string to_string(Duration d) {
  char buf[64];
  const double ms = d.to_millis();
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d.ns()));
  }
  return buf;
}

std::string to_string(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.to_seconds());
  return buf;
}

namespace simclock {
namespace {
// A stack, not a single slot: tests nest simulator lifetimes (build one,
// build another, destroy the inner), and the surviving simulator must get
// its clock back.
//
// thread_local: each ParallelSimulator worker publishes the clock of the
// shard it is currently running, so concurrent shards timestamp telemetry
// from their own virtual clocks without ever observing another shard's.
thread_local std::vector<const TimePoint*> g_clocks;
}

namespace detail {
thread_local const TimePoint* g_active = nullptr;
}  // namespace detail

void attach(const TimePoint* now) {
  g_clocks.push_back(now);
  detail::g_active = now;
}

void detach(const TimePoint* now) {
  std::erase(g_clocks, now);
  detail::g_active = g_clocks.empty() ? nullptr : g_clocks.back();
}

}  // namespace simclock

}  // namespace sublayer
