#include "common/logging.hpp"

#include "common/time.hpp"

namespace sublayer {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const char* component, const std::string& msg) {
  // When a simulator is running, every line carries its virtual time, so a
  // log interleaves cleanly with traces and telemetry spans.
  if (simclock::active()) {
    std::fprintf(stderr, "[%s] [%12.6fs] %-10s %s\n", level_name(level),
                 simclock::now().to_seconds(), component, msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %-10s %s\n", level_name(level), component,
                 msg.c_str());
  }
}
}  // namespace detail

}  // namespace sublayer
