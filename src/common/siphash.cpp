#include "common/siphash.hpp"

#include <bit>

namespace sublayer {
namespace {

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
              std::uint64_t& v3) {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

}  // namespace

std::uint64_t siphash24(const SipHashKey& key, ByteView data) {
  std::uint64_t v0 = 0x736f6d6570736575ull ^ key[0];
  std::uint64_t v1 = 0x646f72616e646f6dull ^ key[1];
  std::uint64_t v2 = 0x6c7967656e657261ull ^ key[0];
  std::uint64_t v3 = 0x7465646279746573ull ^ key[1];

  const std::size_t n = data.size();
  const std::size_t full = n / 8 * 8;
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load_le64(&data[i]);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = full; i < n; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - full));
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace sublayer
