// Minimal leveled logging.
//
// Silent by default so tests and benchmarks stay quiet; examples turn on
// Info to narrate what the stack is doing.  Not thread-safe by design —
// the simulator is single-threaded.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace sublayer {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* component, const std::string& msg);

template <typename... Args>
std::string format_str(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return {};
  std::string s(static_cast<std::size_t>(n), '\0');
  std::snprintf(s.data(), s.size() + 1, fmt, std::forward<Args>(args)...);
  return s;
}
inline std::string format_str(const char* fmt) { return fmt; }
}  // namespace detail

/// Component-tagged logger; each protocol module owns one.
class Logger {
 public:
  explicit Logger(const char* component) : component_(component) {}

  template <typename... Args>
  void trace(const char* fmt, Args&&... args) const {
    log(LogLevel::kTrace, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(const char* fmt, Args&&... args) const {
    log(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(const char* fmt, Args&&... args) const {
    log(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(const char* fmt, Args&&... args) const {
    log(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(const char* fmt, Args&&... args) const {
    log(LogLevel::kError, fmt, std::forward<Args>(args)...);
  }

 private:
  template <typename... Args>
  void log(LogLevel level, const char* fmt, Args&&... args) const {
    if (level < log_level()) return;
    detail::log_line(level, component_,
                     detail::format_str(fmt, std::forward<Args>(args)...));
  }
  const char* component_;
};

}  // namespace sublayer
