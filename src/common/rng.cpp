#include "common/rng.hpp"

#include <bit>

namespace sublayer {
namespace {

// splitmix64: expands one 64-bit seed into the 256-bit xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

BitString Rng::next_bits(std::size_t n) {
  BitString out;
  std::uint64_t pool = 0;
  int avail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (avail == 0) {
      pool = next_u64();
      avail = 64;
    }
    out.push_back((pool & 1) != 0);
    pool >>= 1;
    --avail;
  }
  return out;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(next_u64());
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace sublayer
