// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the repository (link loss, workload
// generation, randomized tests) draws from Rng so that every run is
// reproducible from a single seed.  The core is xoshiro256**, which is
// fast, has a 256-bit state, and is well distributed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/bytes.hpp"

namespace sublayer {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniformly random bit string of the given length.
  BitString next_bits(std::size_t n);

  /// Uniformly random byte vector of the given length.
  Bytes next_bytes(std::size_t n);

  /// Split off an independent generator (for per-component streams).
  Rng fork();

  /// The raw 256-bit xoshiro state, for checkpoint/restore: a restored
  /// stream continues bit-identically from where the saved one stood.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace sublayer
