#include "common/frame_arena.hpp"

namespace sublayer {

FrameArenaCounters& FrameArenaCounters::instance() {
  thread_local FrameArenaCounters counters;
  return counters;
}

}  // namespace sublayer
