// FrameArena: recycled frame buffers for the batched data path.
//
// The steady-state forwarding loop turns one payload into a handful of
// short-lived buffers — the ARQ frame, the framed/stuffed bit string, the
// channel bits, the wire bytes — and the unbatched path pays a malloc and
// a free for each.  The arena keeps two free-lists (Bytes and BitString)
// of retired buffers; acquire() pops one with its capacity intact, so a
// pipeline that recycles what it consumes reaches a fixed point where no
// call touches the heap at all.
//
// Ownership rules (DESIGN.md §13):
//  - acquire_*() transfers ownership to the caller; the buffer arrives
//    empty (size 0) but with whatever capacity its last life left it.
//  - recycle() transfers ownership back.  It is always optional — a
//    recycled buffer and a destroyed buffer are behaviourally identical;
//    recycling is purely an allocation-count optimisation, so buffers that
//    escape into callbacks or containers may simply be dropped.
//  - A buffer must not be used after recycle() (hardened builds poison the
//    backing store on recycle so stale reads surface as 0xA5 garbage).
//  - The arena is single-threaded, like the Simulator shard that owns its
//    users; each shard's stacks use their own arenas.
//
// The fresh/recycled counters are thread-local so the bench harness can
// split "allocations per frame" into heap misses vs arena hits without
// threading a handle through every layer — and without an atomic RMW on
// every acquire in the forwarding loop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace sublayer {

/// Per-thread arena traffic counters.  Arenas are single-threaded (each
/// shard owns its own), so a thread's counters cover exactly the arenas it
/// drives; benches sample them on the thread that ran the measured region.
/// Plain integers: the batched path bumps one per acquire, and a relaxed
/// atomic RMW here costs more than the pool hit it is counting.
struct FrameArenaCounters {
  std::uint64_t bytes_fresh = 0;     // acquire_bytes heap misses
  std::uint64_t bytes_recycled = 0;  // acquire_bytes pool hits
  std::uint64_t bits_fresh = 0;
  std::uint64_t bits_recycled = 0;

  static FrameArenaCounters& instance();
  void reset() { *this = FrameArenaCounters{}; }
  std::uint64_t recycled_total() const {
    return bytes_recycled + bits_recycled;
  }
  std::uint64_t fresh_total() const { return bytes_fresh + bits_fresh; }
};

class FrameArena {
 public:
  /// `pool_cap` bounds each free-list; recycles beyond it destroy the
  /// buffer instead (a burst of jumbo frames must not pin memory forever).
  explicit FrameArena(std::size_t pool_cap = 256) : pool_cap_(pool_cap) {}

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// An empty Bytes, reusing a retired buffer's capacity when one is free.
  Bytes acquire_bytes() {
    auto& c = FrameArenaCounters::instance();
    if (bytes_pool_.empty()) {
      ++c.bytes_fresh;
      return Bytes();
    }
    ++c.bytes_recycled;
    Bytes b = std::move(bytes_pool_.back());
    bytes_pool_.pop_back();
    b.clear();
    return b;
  }

  /// An empty BitString, reusing a retired word store when one is free.
  BitString acquire_bits() {
    auto& c = FrameArenaCounters::instance();
    if (bits_pool_.empty()) {
      ++c.bits_fresh;
      return BitString();
    }
    ++c.bits_recycled;
    BitString b = std::move(bits_pool_.back());
    bits_pool_.pop_back();
    b.clear();
    return b;
  }

  void recycle(Bytes&& b) {
    if (bytes_pool_.size() >= pool_cap_ || b.capacity() == 0) return;
#ifndef NDEBUG
    // Poison, then clear: stale reads through a dangling reference see
    // 0xA5 garbage instead of plausible old frame data.
    b.assign(b.capacity(), 0xA5);
    b.clear();
#endif
    bytes_pool_.push_back(std::move(b));
  }

  void recycle(BitString&& b) {
    if (bits_pool_.size() >= pool_cap_) return;
#ifndef NDEBUG
    b.poison_for_reuse();
#endif
    bits_pool_.push_back(std::move(b));
  }

  std::size_t pooled_bytes_buffers() const { return bytes_pool_.size(); }
  std::size_t pooled_bit_buffers() const { return bits_pool_.size(); }

 private:
  std::size_t pool_cap_;
  std::vector<Bytes> bytes_pool_;
  std::vector<BitString> bits_pool_;
};

}  // namespace sublayer
