// Simulated-time types used throughout the stack.
//
// The simulator advances a virtual clock; protocols never read wall-clock
// time.  Strong types prevent accidentally mixing durations, absolute
// times, and raw integers.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace sublayer {

/// A span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1000000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint{n}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

std::string to_string(Duration d);
std::string to_string(TimePoint t);

/// Process-wide view of the *currently running* simulator's clock.
///
/// A Simulator attaches the address of its clock on construction and
/// detaches on destruction; telemetry (span tracer, metrics) and logging
/// read it without holding a reference to any particular simulator.  With
/// several simulators alive (some tests build them back to back), the most
/// recently constructed one wins — matching "the sim currently driving
/// events" in every existing usage.
namespace simclock {

/// Registers `now` as the active simulated clock.
void attach(const TimePoint* now);
/// Unregisters; a no-op unless `now` is still the active clock.
void detach(const TimePoint* now);

namespace detail {
/// Top of the thread's clock stack (nullptr when empty), mirrored out of
/// the stack by attach/detach so now() inlines to a TLS load + deref —
/// telemetry stamps one timestamp per crossing on the batched hot path.
extern thread_local const TimePoint* g_active;
}  // namespace detail

/// True when a simulator is alive and its clock is readable.
inline bool active() { return detail::g_active != nullptr; }
/// The active simulator's current time; TimePoint{} when none is active.
inline TimePoint now() {
  const TimePoint* p = detail::g_active;
  return p != nullptr ? *p : TimePoint{};
}

}  // namespace simclock

}  // namespace sublayer
