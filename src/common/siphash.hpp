// SipHash-2-4: a keyed pseudo-random function.
//
// Used by the RFC 1948-style initial-sequence-number provider in the
// connection-management sublayer: ISN = PRF(key, 4-tuple) + clock, which
// makes ISNs hard for an off-path attacker to predict.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sublayer {

using SipHashKey = std::array<std::uint64_t, 2>;

/// SipHash-2-4 of `data` under a 128-bit key.
std::uint64_t siphash24(const SipHashKey& key, ByteView data);

}  // namespace sublayer
