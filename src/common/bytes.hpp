// Byte- and bit-level buffers shared by every layer of the stack.
//
// Bytes is a thin alias over std::vector<std::uint8_t> with serialization
// helpers (big-endian, as on the wire).  BitString is a growable sequence
// of bits used by the physical-coding and framing sublayers, where frames
// are genuinely bit-granular (HDLC stuffing operates on bits, not bytes).
//
// BitString packs 64 bits per uint64_t word, MSB-first within each word:
// stream bit i lives in word i/64 at bit position 63-(i%64).  That makes
// from_bytes/to_bytes straight big-endian word assembly (O(n/64)) and lets
// find/matches_at compare 64 bits per step (shift-and-compare), while the
// public API and the bit-0-transmitted-first iteration order are unchanged
// from the one-byte-per-bit representation it replaces.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sublayer {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends big-endian encodings to a byte vector (network byte order).
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(ByteView v) { out_.insert(out_.end(), v.begin(), v.end()); }

 private:
  Bytes& out_;
};

/// Reads big-endian encodings from a byte view; throws std::out_of_range on
/// underrun so malformed packets surface as parse failures, not UB.
class ByteReader {
 public:
  explicit ByteReader(ByteView in) : in_(in) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes(std::size_t n);
  /// All bytes not yet consumed.
  Bytes rest();
  /// Non-owning views for callers that only parse: valid as long as the
  /// underlying buffer the reader was constructed over.
  ByteView view(std::size_t n);
  ByteView rest_view() { return view(remaining()); }
  /// Discards n bytes (underrun throws, like every other accessor).
  void skip(std::size_t n);
  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;
  ByteView in_;
  std::size_t pos_ = 0;
};

Bytes bytes_from_string(std::string_view s);
std::string string_from_bytes(ByteView b);
std::string hex_dump(ByteView b);

/// A growable bit sequence.  Bit 0 is transmitted first.
class BitString {
 public:
  BitString() = default;
  BitString(std::initializer_list<int> bits);

  /// Parses a string like "0111 1110" (spaces ignored). Throws on other chars.
  static BitString parse(std::string_view s);
  /// All bits of `b`, MSB-first per byte (the usual HDLC convention here).
  static BitString from_bytes(ByteView b);
  /// from_bytes into *this, reusing the existing word storage (no alloc when
  /// capacity suffices) — the arena-friendly form.
  void assign_bytes(ByteView b);
  /// All 2^n bit strings of length n enumerate as integers; this builds the
  /// length-n string whose bits are the binary digits of `value`, MSB first.
  static BitString from_uint(std::uint64_t value, int width);

  void push_back(bool bit) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (bit) words_[size_ >> 6] |= 1ull << (63 - (size_ & 63));
    ++size_;
  }
  void append(const BitString& other);
  /// Appends the low `width` bits of `value`, MSB first — the bulk form of
  /// from_uint+append, O(1) instead of O(width).  Inline: this is the
  /// innermost emit primitive of the stuffing/coding hot loops.
  void append_word(std::uint64_t value, int width) {
    if (width < 0 || width > 64) throw_width();
    if (width == 0) return;
    append_top(value << (64 - width), static_cast<std::size_t>(width));
  }
  /// Reserves capacity for `nbits` total bits.
  void reserve(std::size_t nbits) { words_.reserve((nbits + 63) >> 6); }

  bool operator[](std::size_t i) const {
    return (words_[i >> 6] >> (63 - (i & 63))) & 1;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    words_.clear();
    size_ = 0;
  }

  /// The value of the n bits starting at pos, MSB first (n <= 64;
  /// pos+n must be <= size()).  O(1): at most two word reads.
  std::uint64_t bits_at(std::size_t pos, std::size_t n) const {
    return n == 0 ? 0 : top_at(pos) >> (64 - n);
  }

  /// Raw storage word i, MSB-first; every bit past size() reads as zero.
  /// The word-at-a-time framing passes use this to skip the offset
  /// arithmetic of bits_at when they walk the string from bit 0.
  std::uint64_t word(std::size_t i) const { return words_[i]; }
  std::size_t word_count() const { return words_.size(); }

  /// Replaces the n bits starting at pos (MSB first) with the low `width`
  /// bits of `value`, leaving size() unchanged — used to patch a reserved
  /// length prefix after its payload has been appended in place.
  void overwrite_bits(std::size_t pos, std::uint64_t value, int width);

  /// Fills the backing store with an 0xA5 poison pattern, then clears.
  /// FrameArena calls this on recycle in hardened builds so stale reads of
  /// a recycled buffer surface as garbage instead of old frame data.
  void poison_for_reuse();

  /// Substring [pos, pos+len).
  BitString slice(std::size_t pos, std::size_t len) const;
  /// Drops all bits past the first n (n <= size()).  O(1) amortized.
  void truncate(std::size_t n);
  /// True if `pattern` occurs starting at position `pos`.
  bool matches_at(std::size_t pos, const BitString& pattern) const;
  /// First index >= from where `pattern` occurs, or npos.
  std::size_t find(const BitString& pattern, std::size_t from = 0) const;
  /// Number of (possibly overlapping) occurrences of `pattern`.
  std::size_t count_overlapping(const BitString& pattern) const;

  /// Packs bits into bytes MSB-first; size() must be a multiple of 8.
  Bytes to_bytes() const;
  /// Appends ceil(size()/8) bytes to `out`, zero-padding a partial final
  /// byte — the alloc-free form of to_bytes for already-owned buffers.
  void copy_bytes_into(Bytes& out) const;
  std::uint64_t to_uint() const;
  std::string to_string() const;

  friend bool operator==(const BitString&, const BitString&) = default;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Bulk MSB-first append cursor.  Pre-sizes the backing store for a stated
  /// upper bound and then writes words through a raw pointer, so the
  /// innermost loops of stuffing/coding pay no per-call capacity checks.
  /// The bound is a hard contract: emitting more than `max_append_bits`
  /// is undefined.  The target BitString must not be touched through any
  /// other handle while a Writer is live; finish() (idempotent, also run by
  /// the destructor) truncates to what was actually written and restores
  /// the tail-bits-are-zero invariant.
  class Writer {
   public:
    Writer(BitString& out, std::size_t max_append_bits) : out_(out) {
      out.words_.resize((out.size_ + max_append_bits + 63) >> 6, 0);
      base_ = out.words_.data();
      nw_ = out.size_ >> 6;
      fill_ = static_cast<unsigned>(out.size_ & 63);
      acc_ = fill_ != 0 ? base_[nw_] : 0;
    }
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    ~Writer() { finish(); }

    /// Appends the top `nbits` of `top` (left-aligned: first bit at
    /// position 63).  Lower bits of `top` are ignored.  nbits <= 64.
    void emit(std::uint64_t top, std::size_t nbits) {
      if (nbits == 0) return;
      if (nbits < 64) top &= ~0ull << (64 - nbits);
      acc_ |= top >> fill_;
      fill_ += static_cast<unsigned>(nbits);
      if (fill_ >= 64) {
        base_[nw_++] = acc_;
        fill_ -= 64;
        acc_ = fill_ != 0 ? top << (nbits - fill_) : 0;
      }
    }
    void push(bool bit) {
      emit(bit ? 1ull << 63 : 0ull, 1);
    }
    /// Total bits in the target once finished (already-present + emitted).
    std::size_t bits() const { return (nw_ << 6) + fill_; }

    void finish() {
      if (done_) return;
      done_ = true;
      if (fill_ != 0) base_[nw_] = acc_;
      out_.size_ = (nw_ << 6) + fill_;
      out_.words_.resize((out_.size_ + 63) >> 6);
    }

   private:
    BitString& out_;
    std::uint64_t* base_;
    std::uint64_t acc_;
    std::size_t nw_;
    unsigned fill_;
    bool done_ = false;
  };

 private:
  /// Up to 64 bits starting at pos, left-aligned (bit pos at position 63),
  /// zero-padded past the end of the string.
  std::uint64_t top_at(std::size_t pos) const {
    const std::size_t w = pos >> 6;
    const std::size_t r = pos & 63;
    std::uint64_t x = words_[w] << r;
    if (r != 0 && w + 1 < words_.size()) x |= words_[w + 1] >> (64 - r);
    return x;
  }
  /// Appends `nbits` bits given left-aligned in `top` (bit 0 of the run at
  /// position 63).  Bits of `top` past `nbits` are masked off, preserving
  /// the invariant that bits beyond size_ in the last word are zero.
  void append_top(std::uint64_t top, std::size_t nbits) {
    if (nbits == 0) return;
    if (nbits < 64) top &= ~0ull << (64 - nbits);
    const std::size_t r = size_ & 63;
    if (r == 0) {
      words_.push_back(top);
    } else {
      words_.back() |= top >> r;
      if (nbits > 64 - r) words_.push_back(top << (64 - r));
    }
    size_ += nbits;
  }

  [[noreturn]] static void throw_width();

  // Invariant: words_.size() == ceil(size_/64) and every bit past size_ in
  // the final word is zero (so defaulted operator== is exact).
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace sublayer
