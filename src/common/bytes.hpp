// Byte- and bit-level buffers shared by every layer of the stack.
//
// Bytes is a thin alias over std::vector<std::uint8_t> with serialization
// helpers (big-endian, as on the wire).  BitString is a growable sequence
// of bits used by the physical-coding and framing sublayers, where frames
// are genuinely bit-granular (HDLC stuffing operates on bits, not bytes).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sublayer {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends big-endian encodings to a byte vector (network byte order).
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(ByteView v) { out_.insert(out_.end(), v.begin(), v.end()); }

 private:
  Bytes& out_;
};

/// Reads big-endian encodings from a byte view; throws std::out_of_range on
/// underrun so malformed packets surface as parse failures, not UB.
class ByteReader {
 public:
  explicit ByteReader(ByteView in) : in_(in) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes(std::size_t n);
  /// All bytes not yet consumed.
  Bytes rest();
  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const;
  ByteView in_;
  std::size_t pos_ = 0;
};

Bytes bytes_from_string(std::string_view s);
std::string string_from_bytes(ByteView b);
std::string hex_dump(ByteView b);

/// A growable bit sequence.  Bit 0 is transmitted first.
class BitString {
 public:
  BitString() = default;
  BitString(std::initializer_list<int> bits);

  /// Parses a string like "0111 1110" (spaces ignored). Throws on other chars.
  static BitString parse(std::string_view s);
  /// All bits of `b`, MSB-first per byte (the usual HDLC convention here).
  static BitString from_bytes(ByteView b);
  /// All 2^n bit strings of length n enumerate as integers; this builds the
  /// length-n string whose bits are the binary digits of `value`, MSB first.
  static BitString from_uint(std::uint64_t value, int width);

  void push_back(bool bit) { bits_.push_back(bit ? 1 : 0); }
  void append(const BitString& other);

  bool operator[](std::size_t i) const { return bits_[i] != 0; }
  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  void clear() { bits_.clear(); }

  /// Substring [pos, pos+len).
  BitString slice(std::size_t pos, std::size_t len) const;
  /// True if `pattern` occurs starting at position `pos`.
  bool matches_at(std::size_t pos, const BitString& pattern) const;
  /// First index >= from where `pattern` occurs, or npos.
  std::size_t find(const BitString& pattern, std::size_t from = 0) const;
  /// Number of (possibly overlapping) occurrences of `pattern`.
  std::size_t count_overlapping(const BitString& pattern) const;

  /// Packs bits into bytes MSB-first; size() must be a multiple of 8.
  Bytes to_bytes() const;
  std::uint64_t to_uint() const;
  std::string to_string() const;

  friend bool operator==(const BitString&, const BitString&) = default;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<std::uint8_t> bits_;  // one bit per element; 0 or 1
};

}  // namespace sublayer
