// Open-addressing hash map for the flow-scale hot paths (DM's connection
// and listener tables, the host's connection registry).
//
// Power-of-two capacity, linear probing, tombstone deletion with automatic
// rehash once full+tombstone load crosses 3/4.  Keys and values must be
// default-constructible and movable; erase() resets the value slot to a
// default-constructed T, so RAII values (unique_ptr, std::function)
// release immediately.  Pointers returned by find()/try_emplace() are
// stable until the next insertion (a rehash moves slots), matching how
// std::map iterators were used at the call sites this replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sublayer {

/// Mixer for small integer keys (ports, ids): the map masks low bits, so
/// fold the multiply's high bits back down (splitmix64 finalizer).
struct IntHash {
  std::size_t operator()(std::uint64_t x) const {
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <typename Key, typename T, typename Hash>
class FlatHashMap {
 public:
  FlatHashMap() = default;
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;
  FlatHashMap(FlatHashMap&&) = default;
  FlatHashMap& operator=(FlatHashMap&&) = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* find(const Key& key) {
    const std::size_t i = find_slot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const T* find(const Key& key) const {
    const std::size_t i = find_slot(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  bool contains(const Key& key) const { return find_slot(key) != kNpos; }

  /// Inserts key -> T(args...) if absent.  Returns {value slot, inserted};
  /// like std::map::try_emplace, args are untouched when the key exists.
  template <typename... Args>
  std::pair<T*, bool> try_emplace(const Key& key, Args&&... args) {
    // Probe for the key before reserving: a try_emplace that finds it
    // inserts nothing, so it must not rehash (pointers stay stable until
    // a real insertion).
    if (const std::size_t found = find_slot(key); found != kNpos) {
      return {&slots_[found].value, false};
    }
    reserve_for_insert();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    std::size_t target = kNpos;  // first tombstone on the probe path
    for (; state_[i] != kEmpty; i = (i + 1) & mask) {
      if (state_[i] == kTomb && target == kNpos) target = i;
    }
    if (target == kNpos) {
      target = i;
    } else {
      --tombs_;
    }
    state_[target] = kFull;
    slots_[target].key = key;
    slots_[target].value = T(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[target].value, true};
  }

  bool erase(const Key& key) {
    const std::size_t i = find_slot(key);
    if (i == kNpos) return false;
    state_[i] = kTomb;
    slots_[i].key = Key{};
    slots_[i].value = T{};
    --size_;
    ++tombs_;
    return true;
  }

  void clear() {
    slots_.clear();
    state_.clear();
    size_ = tombs_ = 0;
  }

  /// Visits every live entry as f(const Key&, T&); insertion/erase during
  /// the walk is not supported.
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }

  /// Const walk: f(const Key&, const T&).  Visit order depends on table
  /// history — callers needing determinism (snapshots) must sort the keys.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kFull) f(slots_[i].key, slots_[i].value);
    }
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  struct Slot {
    Key key{};
    T value{};
  };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t find_slot(const Key& key) const {
    if (slots_.empty()) return kNpos;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) return kNpos;
      if (state_[i] == kFull && slots_[i].key == key) return i;
    }
  }

  void reserve_for_insert() {
    if (slots_.empty()) {
      slots_.resize(kMinCapacity);
      state_.assign(kMinCapacity, kEmpty);
      return;
    }
    if ((size_ + tombs_ + 1) * 4 < slots_.size() * 3) return;
    // Grow on real load; a tombstone-heavy table rehashes at equal size.
    std::size_t capacity = slots_.size();
    while ((size_ + 1) * 4 >= capacity * 3) capacity *= 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    slots_ = std::vector<Slot>(capacity);  // resize, move-only-T friendly
    state_.assign(capacity, kEmpty);
    const std::size_t mask = capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = Hash{}(old_slots[i].key) & mask;
      while (state_[j] != kEmpty) j = (j + 1) & mask;
      state_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
    tombs_ = 0;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace sublayer
