#include "common/bytes.hpp"

#include <cstring>
#include <stdexcept>

namespace {

// Loads 8 bytes big-endian (byte 0 most significant) — the word layout
// BitString uses, so from_bytes/to_bytes are straight memcpy+bswap.
inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return w;
#else
  return __builtin_bswap64(w);
#endif
}

inline void store_be64(std::uint8_t* p, std::uint64_t w) {
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ != __ORDER_BIG_ENDIAN__
  w = __builtin_bswap64(w);
#endif
  std::memcpy(p, &w, 8);
}

}  // namespace

namespace sublayer {

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > in_.size()) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return in_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(in_[pos_]) << 8 |
                                 in_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return hi << 16 | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return hi << 32 | lo;
}

Bytes ByteReader::bytes(std::size_t n) {
  require(n);
  Bytes out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::rest() { return bytes(remaining()); }

ByteView ByteReader::view(std::size_t n) {
  require(n);
  const ByteView v = in_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

Bytes bytes_from_string(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_from_bytes(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_dump(ByteView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 3);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i != 0) out.push_back(i % 16 == 0 ? '\n' : ' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  return out;
}

BitString::BitString(std::initializer_list<int> bits) {
  reserve(bits.size());
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("BitString: bit must be 0/1");
    push_back(b != 0);
  }
}

BitString BitString::parse(std::string_view s) {
  BitString out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '_') continue;
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      throw std::invalid_argument("BitString::parse: expected 0/1/space");
    }
  }
  return out;
}

BitString BitString::from_bytes(ByteView b) {
  BitString out;
  out.assign_bytes(b);
  return out;
}

void BitString::assign_bytes(ByteView b) {
  words_.resize((b.size() + 7) / 8);
  size_ = b.size() * 8;
  // Big-endian word assembly: byte j lands at bits [8j, 8j+8), which is
  // exactly byte position 7-(j%8) of word j/8 — so full words are a
  // memcpy+bswap and only the ragged tail is assembled per byte.
  const std::size_t full = b.size() >> 3;
  for (std::size_t w = 0; w < full; ++w) {
    words_[w] = load_be64(b.data() + 8 * w);
  }
  if (const std::size_t tail = b.size() & 7; tail != 0) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < tail; ++j) {
      w |= static_cast<std::uint64_t>(b[8 * full + j]) << (56 - 8 * j);
    }
    words_[full] = w;
  }
}

BitString BitString::from_uint(std::uint64_t value, int width) {
  if (width < 0 || width > 64) throw std::invalid_argument("BitString width");
  BitString out;
  out.append_word(value, width);
  return out;
}

void BitString::throw_width() {
  throw std::invalid_argument("BitString width");
}

void BitString::append(const BitString& other) {
  reserve(size_ + other.size_);
  for (std::size_t k = 0; k < other.words_.size(); ++k) {
    append_top(other.words_[k], std::min<std::size_t>(64, other.size_ - 64 * k));
  }
}

BitString BitString::slice(std::size_t pos, std::size_t len) const {
  if (pos + len > size_) throw std::out_of_range("BitString::slice");
  BitString out;
  out.reserve(len);
  for (std::size_t off = 0; off < len; off += 64) {
    out.append_top(top_at(pos + off), std::min<std::size_t>(64, len - off));
  }
  return out;
}

void BitString::truncate(std::size_t n) {
  if (n > size_) throw std::out_of_range("BitString::truncate");
  size_ = n;
  words_.resize((n + 63) >> 6);
  const std::size_t r = n & 63;
  if (r != 0) words_.back() &= ~0ull << (64 - r);
}

bool BitString::matches_at(std::size_t pos, const BitString& pattern) const {
  if (pos + pattern.size_ > size_) return false;
  // Shift-and-compare, 64 bits per step.
  for (std::size_t off = 0; off < pattern.size_; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, pattern.size_ - off);
    if (bits_at(pos + off, n) != pattern.bits_at(off, n)) return false;
  }
  return true;
}

std::size_t BitString::find(const BitString& pattern, std::size_t from) const {
  if (pattern.empty() || pattern.size_ > size_) return npos;
  const std::size_t head = std::min<std::size_t>(64, pattern.size_);
  const std::uint64_t want = pattern.bits_at(0, head);
  for (std::size_t i = from; i + pattern.size_ <= size_; ++i) {
    if (bits_at(i, head) != want) continue;
    if (pattern.size_ <= 64 || matches_at(i, pattern)) return i;
  }
  return npos;
}

std::size_t BitString::count_overlapping(const BitString& pattern) const {
  if (pattern.empty() || pattern.size_ > size_) return 0;
  const std::size_t head = std::min<std::size_t>(64, pattern.size_);
  const std::uint64_t want = pattern.bits_at(0, head);
  std::size_t n = 0;
  for (std::size_t i = 0; i + pattern.size_ <= size_; ++i) {
    if (bits_at(i, head) != want) continue;
    if (pattern.size_ <= 64 || matches_at(i, pattern)) ++n;
  }
  return n;
}

Bytes BitString::to_bytes() const {
  if (size_ % 8 != 0) {
    throw std::logic_error("BitString::to_bytes: size not a multiple of 8");
  }
  Bytes out;
  copy_bytes_into(out);
  return out;
}

void BitString::copy_bytes_into(Bytes& out) const {
  const std::size_t nbytes = (size_ + 7) / 8;
  const std::size_t base = out.size();
  out.resize(base + nbytes);
  std::uint8_t* p = out.data() + base;
  const std::size_t full = nbytes >> 3;
  for (std::size_t w = 0; w < full; ++w) {
    store_be64(p + 8 * w, words_[w]);
  }
  for (std::size_t j = 8 * full; j < nbytes; ++j) {
    p[j] = static_cast<std::uint8_t>(words_[j >> 3] >> (56 - 8 * (j & 7)));
  }
}

void BitString::overwrite_bits(std::size_t pos, std::uint64_t value,
                               int width) {
  if (width < 0 || width > 64) throw std::invalid_argument("BitString width");
  if (pos + static_cast<std::size_t>(width) > size_) {
    throw std::out_of_range("BitString::overwrite_bits");
  }
  if (width == 0) return;
  const std::uint64_t top = width < 64 ? value << (64 - width) : value;
  const std::uint64_t keep =
      width < 64 ? ~(~0ull << (64 - width)) : 0ull;  // low bits to preserve
  const std::size_t w = pos >> 6;
  const std::size_t r = pos & 63;
  if (r == 0) {
    words_[w] = (words_[w] & keep) | top;
  } else {
    // Straddles up to two words: high part into word w, rest into w+1.
    const std::uint64_t hi_mask = (~0ull >> r) & ~(keep >> r);
    words_[w] = (words_[w] & ~hi_mask) | ((top >> r) & hi_mask);
    if (static_cast<std::size_t>(width) > 64 - r) {
      const std::uint64_t lo_mask = ~0ull << (128 - r - width);
      words_[w + 1] = (words_[w + 1] & ~lo_mask) | ((top << (64 - r)) & lo_mask);
    }
  }
}

void BitString::poison_for_reuse() {
  words_.assign(words_.capacity(), 0xA5A5A5A5A5A5A5A5ull);
  words_.clear();
  size_ = 0;
}

std::uint64_t BitString::to_uint() const {
  if (size_ > 64) throw std::logic_error("BitString::to_uint: too long");
  return size_ == 0 ? 0 : words_[0] >> (64 - size_);
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

}  // namespace sublayer
