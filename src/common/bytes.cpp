#include "common/bytes.hpp"

#include <stdexcept>

namespace sublayer {

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > in_.size()) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return in_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(in_[pos_]) << 8 |
                                 in_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return hi << 16 | lo;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return hi << 32 | lo;
}

Bytes ByteReader::bytes(std::size_t n) {
  require(n);
  Bytes out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::rest() { return bytes(remaining()); }

Bytes bytes_from_string(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_from_bytes(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_dump(ByteView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 3);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i != 0) out.push_back(i % 16 == 0 ? '\n' : ' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  return out;
}

BitString::BitString(std::initializer_list<int> bits) {
  bits_.reserve(bits.size());
  for (int b : bits) {
    if (b != 0 && b != 1) throw std::invalid_argument("BitString: bit must be 0/1");
    bits_.push_back(static_cast<std::uint8_t>(b));
  }
}

BitString BitString::parse(std::string_view s) {
  BitString out;
  for (char c : s) {
    if (c == ' ' || c == '_') continue;
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      throw std::invalid_argument("BitString::parse: expected 0/1/space");
    }
  }
  return out;
}

BitString BitString::from_bytes(ByteView b) {
  BitString out;
  out.bits_.reserve(b.size() * 8);
  for (std::uint8_t byte : b) {
    for (int i = 7; i >= 0; --i) {
      out.push_back((byte >> i & 1) != 0);
    }
  }
  return out;
}

BitString BitString::from_uint(std::uint64_t value, int width) {
  if (width < 0 || width > 64) throw std::invalid_argument("BitString width");
  BitString out;
  for (int i = width - 1; i >= 0; --i) {
    out.push_back((value >> i & 1) != 0);
  }
  return out;
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

BitString BitString::slice(std::size_t pos, std::size_t len) const {
  if (pos + len > bits_.size()) throw std::out_of_range("BitString::slice");
  BitString out;
  out.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                   bits_.begin() + static_cast<std::ptrdiff_t>(pos + len));
  return out;
}

bool BitString::matches_at(std::size_t pos, const BitString& pattern) const {
  if (pos + pattern.size() > bits_.size()) return false;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (bits_[pos + i] != pattern.bits_[i]) return false;
  }
  return true;
}

std::size_t BitString::find(const BitString& pattern, std::size_t from) const {
  if (pattern.empty() || pattern.size() > bits_.size()) return npos;
  for (std::size_t i = from; i + pattern.size() <= bits_.size(); ++i) {
    if (matches_at(i, pattern)) return i;
  }
  return npos;
}

std::size_t BitString::count_overlapping(const BitString& pattern) const {
  if (pattern.empty()) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i + pattern.size() <= bits_.size(); ++i) {
    if (matches_at(i, pattern)) ++n;
  }
  return n;
}

Bytes BitString::to_bytes() const {
  if (bits_.size() % 8 != 0) {
    throw std::logic_error("BitString::to_bytes: size not a multiple of 8");
  }
  Bytes out(bits_.size() / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

std::uint64_t BitString::to_uint() const {
  if (bits_.size() > 64) throw std::logic_error("BitString::to_uint: too long");
  std::uint64_t v = 0;
  for (std::uint8_t b : bits_) v = v << 1 | b;
  return v;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (std::uint8_t b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

}  // namespace sublayer
