// Protocol models for the explicit-state checker (experiment E4).
//
// All models use the standard message-set network semantics: the network
// is a SET of messages, initially empty (matching §4.2's "assuming the
// network is initially empty").  Delivering a message does NOT remove it
// (so every message can arrive duplicated and arbitrarily reordered), and
// an explicit drop action removes it (loss).  This gives the full
// loss/duplication/reordering adversary with a finite state space.
//
// Each model can be instantiated with an injected bug so tests can confirm
// the checker actually finds violations (the paper's §4.1 point that
// verification catches the subtle failure modes).
#pragma once

#include <memory>

#include "verify/checker.hpp"

namespace sublayer::verify {

// ---- Monolithic TCP model ---------------------------------------------------
//
// One flat transition system containing handshake, sliding-window
// reliability, in-order delivery, and teardown together — the entangled
// shape of §4.2.  The checker pays for the PRODUCT of the features.

enum class MonoBug {
  kNone,
  /// Receiver accepts out-of-order data as if in order (breaks the byte
  /// stream): the entangled-reassembly bug class.
  kAcceptOutOfOrder,
  /// Receiver acknowledges one past what it received (breaks the meaning
  /// of cumulative acks): the entangled-window bug class.
  kAckBeyondReceived,
};

struct MonoModelConfig {
  int segments = 4;   // N
  int window = 2;     // W
  MonoBug bug = MonoBug::kNone;
};

std::unique_ptr<Model> make_monolithic_tcp_model(const MonoModelConfig& c);

// ---- Compositional (sublayered) models --------------------------------------
//
// Each sublayer checked against its own contract, with the layer below
// abstracted by that contract.  The checker pays for the SUM of three
// small spaces.

enum class CmBug {
  kNone,
  /// Client accepts a SYNACK for a stale incarnation's ISN: the classic
  /// delayed-duplicate confusion that ISN freshness exists to prevent.
  kNoIsnValidation,
};

struct CmModelConfig {
  CmBug bug = CmBug::kNone;
};

/// CM sublayer: handshake with two client incarnations and stale messages
/// afloat.  Property: when both sides are established, they agree on the
/// CURRENT incarnation's ISN.
std::unique_ptr<Model> make_cm_model(const CmModelConfig& c);

enum class RdBug {
  kNone,
  /// Receiver delivers duplicate segments upward again (no exactly-once
  /// dedup).
  kDeliverDuplicates,
};

struct RdModelConfig {
  int segments = 4;
  int window = 2;
  RdBug bug = RdBug::kNone;
};

/// RD sublayer: sliding-window exactly-once segment delivery, ASSUMING
/// CM's contract (fresh sequence basis, initially-empty network).
/// Property: no segment is handed to OSR twice.
std::unique_ptr<Model> make_rd_model(const RdModelConfig& c);

enum class OsrBug {
  kNone,
  /// Reassembly releases whatever buffered segment is smallest, even past
  /// a hole (breaks stream order).
  kReleasePastHole,
};

struct OsrModelConfig {
  int segments = 4;
  OsrBug bug = OsrBug::kNone;
};

/// OSR sublayer: reassembly ASSUMING RD's contract (each segment arrives
/// exactly once, in arbitrary order).  Property: the application sees the
/// segments strictly in order 0,1,2,...
std::unique_ptr<Model> make_osr_model(const OsrModelConfig& c);

// ---- The effort comparison (E4) ---------------------------------------------

struct EffortComparison {
  CheckResult monolithic;
  CheckResult cm;
  CheckResult rd;
  CheckResult osr;
  std::uint64_t compositional_states() const {
    return cm.states_explored + rd.states_explored + osr.states_explored;
  }
};

/// Runs the monolithic model and the three sublayer models at matched
/// parameters and returns all four results.
EffortComparison compare_verification_effort(int segments, int window,
                                             const CheckOptions& opts = {});

}  // namespace sublayer::verify
