#include "verify/checker.hpp"

#include <deque>
#include <unordered_set>

namespace sublayer::verify {

std::string CheckResult::summary() const {
  std::string s = ok ? "OK" : ("VIOLATION: " + violation.value_or("?"));
  s += " states=" + std::to_string(states_explored) +
       " transitions=" + std::to_string(transitions) +
       " peak_frontier=" + std::to_string(peak_frontier) +
       (complete ? " (complete)" : " (TRUNCATED)") +
       (goal_reached ? " goal" : "");
  return s;
}

CheckResult check(const Model& model, const CheckOptions& options) {
  CheckResult result;

  std::unordered_set<std::string> visited;
  struct Item {
    Bytes state;
    std::uint64_t depth;
  };
  std::deque<Item> frontier;

  const auto key_of = [](const Bytes& b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  };

  const Bytes init = model.initial_state();
  visited.insert(key_of(init));
  frontier.push_back(Item{init, 0});

  while (!frontier.empty()) {
    result.peak_frontier = std::max(result.peak_frontier, frontier.size());
    const Item item = std::move(frontier.front());
    frontier.pop_front();
    ++result.states_explored;

    if (const auto bad = model.violation(item.state)) {
      result.ok = false;
      result.violation = bad;
      result.violation_depth = item.depth;
      return result;
    }
    if (model.is_goal(item.state)) result.goal_reached = true;

    if (result.states_explored >= options.max_states) {
      result.ok = true;  // nothing bad *found*; not a proof
      result.complete = false;
      return result;
    }

    for (Bytes& next : model.successors(item.state)) {
      ++result.transitions;
      auto [it, inserted] = visited.insert(key_of(next));
      if (inserted) {
        frontier.push_back(Item{std::move(next), item.depth + 1});
      }
    }
  }

  result.ok = true;
  result.complete = true;
  return result;
}

}  // namespace sublayer::verify
