// Explicit-state model checker — the C++ stand-in for the paper's Dafny
// experiment (§4.2).
//
// The paper's lesson from verifying a monolithic lwIP TCP was that
// entangled shared state forces whole-system reasoning (30 lemmas, ~3500
// lines of annotations for one property).  The operational analogue here:
// model-check the same delivery property twice —
//
//   (a) MONOLITHIC: one flat transition system containing the handshake,
//       the sliding window, and reassembly together; the checker must
//       explore the PRODUCT of all the features' states.
//   (b) COMPOSITIONAL (sublayered): check each sublayer against its own
//       contract, with the sublayer below replaced by that contract as an
//       adversarial environment (CM: ISN agreement; RD: exactly-once
//       delivery given a fresh sequence basis; OSR: in-order reassembly
//       given exactly-once, possibly reordered input).  The checker
//       explores the SUM of three small spaces.
//
// States-explored / wall-clock of (a) vs (b) is the repository's measure
// of "verification effort" (see bench_verify_effort, experiment E4).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace sublayer::verify {

/// A finite transition system with serialized states.
class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;
  virtual Bytes initial_state() const = 0;

  /// All successor states of `state` (the nondeterminism of the network —
  /// drop, duplicate, reorder — appears as multiple successors).
  virtual std::vector<Bytes> successors(const Bytes& state) const = 0;

  /// Safety check: a violation description, or nullopt if the state is ok.
  virtual std::optional<std::string> violation(const Bytes& state) const = 0;

  /// Optional reachability target ("the whole stream was delivered"),
  /// reported so benches can confirm the model makes progress.
  virtual bool is_goal(const Bytes& /*state*/) const { return false; }
};

struct CheckOptions {
  std::uint64_t max_states = 50'000'000;
};

struct CheckResult {
  bool ok = false;             // no violation within the explored space
  bool complete = false;       // state space exhausted (not truncated)
  bool goal_reached = false;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::size_t peak_frontier = 0;
  std::optional<std::string> violation;
  /// Depth (BFS level) at which the violation was found, if any.
  std::uint64_t violation_depth = 0;

  std::string summary() const;
};

/// Breadth-first exhaustive exploration with hashed state deduplication.
CheckResult check(const Model& model, const CheckOptions& options = {});

}  // namespace sublayer::verify
