#include "verify/models.hpp"

#include <stdexcept>

namespace sublayer::verify {
namespace {

// Small helpers for packed states.
void put_u32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}
std::uint32_t get_u32(const Bytes& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) << 24 |
         static_cast<std::uint32_t>(b[at + 1]) << 16 |
         static_cast<std::uint32_t>(b[at + 2]) << 8 | b[at + 3];
}

// ============================================================================
// Monolithic TCP model
// ============================================================================

class MonoModel final : public Model {
 public:
  explicit MonoModel(const MonoModelConfig& c) : c_(c) {
    if (c_.segments < 1 || c_.segments > 10) {
      throw std::invalid_argument("MonoModel: 1..10 segments");
    }
  }

  std::string name() const override { return "monolithic-tcp"; }

  // State layout: s_phase, r_phase, s_acked, r_next, r_delivered, mask:u32.
  struct S {
    std::uint8_t s_phase, r_phase, s_acked, r_next, r_delivered;
    std::uint32_t mask;
  };

  // Message bit indices.
  int kSyn() const { return 0; }
  int kSynAck() const { return 1; }
  int kHack() const { return 2; }
  int kData(int i) const { return 3 + i; }
  int kAck(int j) const { return 3 + c_.segments + j; }  // j in 0..N
  int kFin() const { return 3 + 2 * c_.segments + 1; }
  int kFinAck() const { return 3 + 2 * c_.segments + 2; }
  int universe() const { return 3 + 2 * c_.segments + 3; }

  static Bytes pack(const S& s) {
    Bytes b{s.s_phase, s.r_phase, s.s_acked, s.r_next, s.r_delivered};
    put_u32(b, s.mask);
    return b;
  }
  static S unpack(const Bytes& b) {
    return S{b[0], b[1], b[2], b[3], b[4], get_u32(b, 5)};
  }

  Bytes initial_state() const override {
    return pack(S{0, 0, 0, 0, 0, 0});
  }

  std::vector<Bytes> successors(const Bytes& state) const override {
    const S s = unpack(state);
    std::vector<Bytes> out;
    const auto emit = [&](S next) { out.push_back(pack(next)); };
    const auto has = [&](int bit) { return (s.mask >> bit & 1) != 0; };
    const int n = c_.segments;

    // --- sender spontaneous actions ---
    if (s.s_phase <= 1) {  // (re)send SYN
      S t = s;
      t.s_phase = 1;
      t.mask |= 1u << kSyn();
      emit(t);
    }
    if (s.s_phase == 2) {
      for (int i = s.s_acked; i < std::min(s.s_acked + c_.window, n); ++i) {
        S t = s;
        t.mask |= 1u << kData(i);
        emit(t);
      }
      if (s.s_acked == n) {  // all data acked: send FIN
        S t = s;
        t.s_phase = 3;
        t.mask |= 1u << kFin();
        emit(t);
      }
    }
    if (s.s_phase == 3) {  // retransmit FIN
      S t = s;
      t.mask |= 1u << kFin();
      emit(t);
    }

    // --- deliveries (message stays in the set: duplication for free) ---
    if (has(kSyn()) && s.r_phase <= 1) {
      S t = s;
      t.r_phase = 1;
      t.mask |= 1u << kSynAck();
      emit(t);
    }
    if (has(kSynAck()) && s.s_phase == 1) {
      S t = s;
      t.s_phase = 2;
      t.mask |= 1u << kHack();
      emit(t);
    }
    if (has(kHack()) && s.r_phase == 1) {
      S t = s;
      t.r_phase = 2;
      emit(t);
    }
    for (int i = 0; i < n; ++i) {
      if (!has(kData(i))) continue;
      if (s.r_phase != 1 && s.r_phase != 2) continue;
      S t = s;
      t.r_phase = 2;  // data completes the handshake (entanglement)
      if (i == t.r_next) {
        ++t.r_next;
        ++t.r_delivered;
      } else if (c_.bug == MonoBug::kAcceptOutOfOrder && i > t.r_next) {
        t.r_next = static_cast<std::uint8_t>(i + 1);
        ++t.r_delivered;
      }
      const int ack = c_.bug == MonoBug::kAckBeyondReceived
                          ? std::min<int>(t.r_next + 1, n)
                          : t.r_next;
      t.mask |= 1u << kAck(ack);
      emit(t);
    }
    for (int j = 0; j <= n; ++j) {
      if (!has(kAck(j))) continue;
      if (s.s_phase >= 2 && j > s.s_acked) {
        S t = s;
        t.s_acked = static_cast<std::uint8_t>(j);
        emit(t);
      }
    }
    if (has(kFin()) && s.r_phase == 2 && s.r_next == n) {
      S t = s;
      t.r_phase = 3;
      t.mask |= 1u << kFinAck();
      emit(t);
    }
    if (has(kFinAck()) && s.s_phase == 3) {
      S t = s;
      t.s_phase = 4;
      emit(t);
    }

    // --- drops ---
    for (int bit = 0; bit < universe(); ++bit) {
      if (has(bit)) {
        S t = s;
        t.mask &= ~(1u << bit);
        emit(t);
      }
    }
    return out;
  }

  std::optional<std::string> violation(const Bytes& state) const override {
    const S s = unpack(state);
    if (s.r_delivered != s.r_next) {
      return "application stream has a gap or duplicate (delivered=" +
             std::to_string(s.r_delivered) +
             " frontier=" + std::to_string(s.r_next) + ")";
    }
    if (s.r_next > c_.segments) return "receive frontier past stream end";
    if (s.s_acked > s.r_next) {
      return "sender believes unreceived data was acked (acked=" +
             std::to_string(s.s_acked) +
             " received=" + std::to_string(s.r_next) + ")";
    }
    if (s.s_phase == 4 && s.r_next != c_.segments) {
      return "connection closed before the stream was delivered";
    }
    return std::nullopt;
  }

  bool is_goal(const Bytes& state) const override {
    const S s = unpack(state);
    return s.s_phase == 4 && s.r_phase == 3 && s.r_next == c_.segments;
  }

 private:
  MonoModelConfig c_;
};

// ============================================================================
// CM model (compositional)
// ============================================================================

class CmModel final : public Model {
 public:
  explicit CmModel(const CmModelConfig& c) : c_(c) {}
  std::string name() const override { return "cm-sublayer"; }

  // Messages: SYN(i), SYNACK(i), HACK(i) for incarnation i in {0,1}.
  static int kSyn(int i) { return i; }
  static int kSynAck(int i) { return 2 + i; }
  static int kHack(int i) { return 4 + i; }
  static constexpr int kUniverse = 6;
  static constexpr std::uint8_t kNone = 0xff;

  struct S {
    std::uint8_t c_phase, c_cur, c_agreed, s_phase, s_learned;
    std::uint8_t mask;
  };
  static Bytes pack(const S& s) {
    return Bytes{s.c_phase, s.c_cur, s.c_agreed, s.s_phase, s.s_learned,
                 s.mask};
  }
  static S unpack(const Bytes& b) {
    return S{b[0], b[1], b[2], b[3], b[4], b[5]};
  }

  Bytes initial_state() const override {
    return pack(S{0, 0, kNone, 0, kNone, 0});
  }

  std::vector<Bytes> successors(const Bytes& state) const override {
    const S s = unpack(state);
    std::vector<Bytes> out;
    const auto emit = [&](S t) { out.push_back(pack(t)); };
    const auto has = [&](int bit) { return (s.mask >> bit & 1) != 0; };

    // Client (re)sends its SYN.
    if (s.c_phase <= 1) {
      S t = s;
      t.c_phase = 1;
      t.mask |= static_cast<std::uint8_t>(1u << kSyn(s.c_cur));
      emit(t);
    }
    // Client aborts the first incarnation's handshake and reopens: the old
    // SYN may still be in the network.
    if (s.c_cur == 0 && s.c_phase == 1) {
      S t = s;
      t.c_cur = 1;
      t.c_phase = 0;
      emit(t);
    }
    // Server hears a SYN.
    for (int i = 0; i < 2; ++i) {
      if (!has(kSyn(i))) continue;
      if (s.s_phase == 0) {
        S t = s;
        t.s_phase = 1;
        t.s_learned = static_cast<std::uint8_t>(i);
        t.mask |= static_cast<std::uint8_t>(1u << kSynAck(i));
        emit(t);
      } else if (s.s_phase == 1 && s.s_learned == i) {
        S t = s;  // duplicate SYN: re-offer the SYNACK
        t.mask |= static_cast<std::uint8_t>(1u << kSynAck(i));
        emit(t);
      }
    }
    // Client hears a SYNACK.
    for (int i = 0; i < 2; ++i) {
      if (!has(kSynAck(i))) continue;
      if (s.c_phase != 1) continue;
      const bool acceptable =
          c_.bug == CmBug::kNoIsnValidation || i == s.c_cur;
      if (acceptable) {
        S t = s;
        t.c_phase = 2;
        t.c_agreed = static_cast<std::uint8_t>(i);
        t.mask |= static_cast<std::uint8_t>(1u << kHack(i));
        emit(t);
      }
    }
    // Server hears the handshake ack.
    for (int i = 0; i < 2; ++i) {
      if (!has(kHack(i))) continue;
      if (s.s_phase == 1 && s.s_learned == i) {
        S t = s;
        t.s_phase = 2;
        emit(t);
      }
    }
    // Drops.
    for (int bit = 0; bit < kUniverse; ++bit) {
      if (has(bit)) {
        S t = s;
        t.mask &= static_cast<std::uint8_t>(~(1u << bit));
        emit(t);
      }
    }
    return out;
  }

  std::optional<std::string> violation(const Bytes& state) const override {
    const S s = unpack(state);
    if (s.c_phase == 2 && s.s_phase == 2 && s.s_learned != s.c_cur) {
      return "incarnation confusion: server established with a stale ISN";
    }
    if (s.c_phase == 2 && s.c_agreed != kNone && s.c_agreed != s.c_cur &&
        c_.bug == CmBug::kNone) {
      return "client agreed to a stale ISN despite validation";
    }
    return std::nullopt;
  }

  bool is_goal(const Bytes& state) const override {
    const S s = unpack(state);
    return s.c_phase == 2 && s.s_phase == 2 && s.s_learned == s.c_cur;
  }

 private:
  CmModelConfig c_;
};

// ============================================================================
// RD model (compositional)
// ============================================================================

class RdModel final : public Model {
 public:
  explicit RdModel(const RdModelConfig& c) : c_(c) {
    if (c_.segments < 1 || c_.segments > 10) {
      throw std::invalid_argument("RdModel: 1..10 segments");
    }
  }
  std::string name() const override { return "rd-sublayer"; }

  int kData(int i) const { return i; }
  int kAck(int j) const { return c_.segments + j; }  // j in 0..N
  int universe() const { return 2 * c_.segments + 1; }

  struct S {
    std::uint8_t acked;       // sender's cumulative ack
    std::uint16_t received;   // receiver's segment bitmap
    std::uint8_t over;        // a segment was handed to OSR twice
    std::uint32_t mask;
  };
  static Bytes pack(const S& s) {
    Bytes b{s.acked, static_cast<std::uint8_t>(s.received >> 8),
            static_cast<std::uint8_t>(s.received), s.over};
    put_u32(b, s.mask);
    return b;
  }
  static S unpack(const Bytes& b) {
    return S{b[0], static_cast<std::uint16_t>(b[1] << 8 | b[2]), b[3],
             get_u32(b, 4)};
  }

  int lowest_missing(std::uint16_t received) const {
    for (int i = 0; i < c_.segments; ++i) {
      if ((received >> i & 1) == 0) return i;
    }
    return c_.segments;
  }

  Bytes initial_state() const override { return pack(S{0, 0, 0, 0}); }

  std::vector<Bytes> successors(const Bytes& state) const override {
    const S s = unpack(state);
    std::vector<Bytes> out;
    const auto emit = [&](S t) { out.push_back(pack(t)); };
    const auto has = [&](int bit) { return (s.mask >> bit & 1) != 0; };
    const int n = c_.segments;

    // Sender (re)transmits anything in its window.
    for (int i = s.acked; i < std::min<int>(s.acked + c_.window, n); ++i) {
      S t = s;
      t.mask |= 1u << kData(i);
      emit(t);
    }
    // Receiver hears DATA(i).
    for (int i = 0; i < n; ++i) {
      if (!has(kData(i))) continue;
      S t = s;
      if ((t.received >> i & 1) == 0) {
        t.received |= static_cast<std::uint16_t>(1u << i);  // deliver once
      } else if (c_.bug == RdBug::kDeliverDuplicates) {
        t.over = 1;  // handed upward a second time
      }
      t.mask |= 1u << kAck(lowest_missing(t.received));
      emit(t);
    }
    // Sender hears ACK(j).
    for (int j = 0; j <= n; ++j) {
      if (!has(kAck(j))) continue;
      if (j > s.acked) {
        S t = s;
        t.acked = static_cast<std::uint8_t>(j);
        emit(t);
      }
    }
    // Drops.
    for (int bit = 0; bit < universe(); ++bit) {
      if (has(bit)) {
        S t = s;
        t.mask &= ~(1u << bit);
        emit(t);
      }
    }
    return out;
  }

  std::optional<std::string> violation(const Bytes& state) const override {
    const S s = unpack(state);
    if (s.over) return "segment delivered to OSR twice";
    if (s.acked > lowest_missing(s.received)) {
      return "cumulative ack beyond the receiver's contiguous prefix";
    }
    return std::nullopt;
  }

  bool is_goal(const Bytes& state) const override {
    const S s = unpack(state);
    return s.acked == c_.segments;
  }

 private:
  RdModelConfig c_;
};

// ============================================================================
// OSR model (compositional)
// ============================================================================

class OsrModel final : public Model {
 public:
  explicit OsrModel(const OsrModelConfig& c) : c_(c) {
    if (c_.segments < 1 || c_.segments > 12) {
      throw std::invalid_argument("OsrModel: 1..12 segments");
    }
  }
  std::string name() const override { return "osr-sublayer"; }

  struct S {
    std::uint8_t app_next;
    std::uint16_t arrived;
  };
  static Bytes pack(const S& s) {
    return Bytes{s.app_next, static_cast<std::uint8_t>(s.arrived >> 8),
                 static_cast<std::uint8_t>(s.arrived)};
  }
  static S unpack(const Bytes& b) {
    return S{b[0], static_cast<std::uint16_t>(b[1] << 8 | b[2])};
  }

  Bytes initial_state() const override { return pack(S{0, 0}); }

  std::vector<Bytes> successors(const Bytes& state) const override {
    const S s = unpack(state);
    std::vector<Bytes> out;
    // RD's contract as the adversary: any not-yet-arrived segment arrives
    // next (exactly once, any order).
    for (int i = 0; i < c_.segments; ++i) {
      if ((s.arrived >> i & 1) != 0) continue;
      S t = s;
      t.arrived |= static_cast<std::uint16_t>(1u << i);
      if (c_.bug == OsrBug::kReleasePastHole) {
        // Buggy reassembly: release up to and including the newcomer even
        // across holes.
        if (i + 1 > t.app_next) t.app_next = static_cast<std::uint8_t>(i + 1);
      } else {
        while (t.app_next < c_.segments &&
               (t.arrived >> t.app_next & 1) != 0) {
          ++t.app_next;
        }
      }
      out.push_back(pack(t));
    }
    return out;
  }

  std::optional<std::string> violation(const Bytes& state) const override {
    const S s = unpack(state);
    for (int j = 0; j < s.app_next; ++j) {
      if ((s.arrived >> j & 1) == 0) {
        return "application stream released across a hole";
      }
    }
    return std::nullopt;
  }

  bool is_goal(const Bytes& state) const override {
    const S s = unpack(state);
    return s.app_next == c_.segments;
  }

 private:
  OsrModelConfig c_;
};

}  // namespace

std::unique_ptr<Model> make_monolithic_tcp_model(const MonoModelConfig& c) {
  return std::make_unique<MonoModel>(c);
}
std::unique_ptr<Model> make_cm_model(const CmModelConfig& c) {
  return std::make_unique<CmModel>(c);
}
std::unique_ptr<Model> make_rd_model(const RdModelConfig& c) {
  return std::make_unique<RdModel>(c);
}
std::unique_ptr<Model> make_osr_model(const OsrModelConfig& c) {
  return std::make_unique<OsrModel>(c);
}

EffortComparison compare_verification_effort(int segments, int window,
                                             const CheckOptions& opts) {
  EffortComparison out;
  out.monolithic =
      check(*make_monolithic_tcp_model({segments, window, MonoBug::kNone}),
            opts);
  out.cm = check(*make_cm_model({}), opts);
  out.rd = check(*make_rd_model({segments, window, RdBug::kNone}), opts);
  out.osr = check(*make_osr_model({segments, OsrBug::kNone}), opts);
  return out;
}

}  // namespace sublayer::verify
