#include "stuffverify/verifier.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "common/rng.hpp"

namespace sublayer::stuffverify {
namespace {

using datalink::StuffingRule;

/// Integer form of a rule for the automaton arguments.
struct FastRule {
  std::uint32_t flag = 0;
  int flag_len = 0;
  std::uint32_t trigger = 0;
  int trigger_len = 0;
  std::uint32_t stuff_bit = 0;

  static FastRule from(const StuffingRule& r) {
    FastRule f;
    f.flag = static_cast<std::uint32_t>(r.flag.to_uint());
    f.flag_len = static_cast<int>(r.flag.size());
    f.trigger = static_cast<std::uint32_t>(r.trigger.to_uint());
    f.trigger_len = static_cast<int>(r.trigger.size());
    f.stuff_bit = r.stuff_bit ? 1 : 0;
    return f;
  }

  std::uint32_t fmask() const { return (1u << flag_len) - 1; }
  std::uint32_t tmask() const { return (1u << trigger_len) - 1; }
};

constexpr int kMaxConsecutiveStuffs = 64;

/// The exact "no harmful false flag" argument.
///
/// The framed stream is flag · Stuff(D) · flag.  Track two windows over it:
/// the flag window `freg` (last flag_len emitted bits, pre-loaded with the
/// opening flag) and the trigger window, which scans only the body — but
/// because both windows watch the same emitted stream, the trigger window
/// is always the low trigger_len bits of freg once `seen` >= trigger_len
/// body bits have been emitted (trigger_len <= flag_len is required).
///
/// A flag occurrence starting at stream index i is *harmful* iff
/// flag_len <= i < flag_len + |body| + flag_len - 1, i.e. it is neither the
/// opening flag nor the closing flag.  Occurrences that begin inside the
/// opening flag (i < flag_len) cannot trick a receiver: fewer than flag_len
/// post-opening bits exist at that point, so no closing flag fits — this is
/// exactly the subtlety the paper mentions ("some flags can cause a false
/// flag to occur using the data and a prefix of the end flag"), and the
/// paper's own 00000010 rule relies on the harmlessness of the overlapping
/// case.  We therefore track `emitted` = post-opening-flag bits emitted,
/// saturated at flag_len; a match with emitted >= flag_len is harmful.
///
/// State = (freg, min(seen, trigger_len), min(emitted, flag_len)); BFS over
/// all data-bit choices covers data of every length.  Returns false (and
/// the reason) if a harmful occurrence is reachable or stuffing can
/// retrigger itself unboundedly.
bool no_false_flag(const FastRule& r, std::uint64_t* states_out,
                   std::string* why) {
  if (r.trigger_len > r.flag_len) {
    if (why) *why = "trigger longer than flag unsupported by the argument";
    return false;
  }
  const std::uint32_t fmask = r.fmask();
  const std::uint32_t tmask = r.tmask();
  const auto seen_cap = static_cast<std::uint32_t>(r.trigger_len);
  const auto emit_cap = static_cast<std::uint32_t>(r.flag_len);

  struct State {
    std::uint32_t freg;
    std::uint32_t seen;
    std::uint32_t emitted;
  };
  const auto encode = [&](const State& s) {
    return (s.freg * (seen_cap + 1) + s.seen) * (emit_cap + 1) + s.emitted;
  };
  const std::size_t num_states =
      (fmask + 1ull) * (seen_cap + 1) * (emit_cap + 1);
  std::vector<std::uint8_t> visited(num_states, 0);
  std::deque<State> frontier;

  // Initial state: opening flag fully emitted, no body bits yet.
  const State init{r.flag & fmask, 0u, 0u};
  frontier.push_back(init);
  visited[encode(init)] = 1;
  std::uint64_t states = 1;

  const auto trigger_matches = [&](std::uint32_t freg, std::uint32_t seen) {
    return seen >= seen_cap && (freg & tmask) == r.trigger;
  };
  const auto fail = [&](const char* reason) {
    if (why) *why = reason;
    if (states_out) *states_out = states;
    return false;
  };

  while (!frontier.empty()) {
    const State s0 = frontier.front();
    frontier.pop_front();

    // Trailing-flag lemma: from any state the body may end here; emitting
    // the closing flag must not complete a *harmful* flag occurrence before
    // the genuine one at the very end.
    {
      std::uint32_t freg = s0.freg;
      std::uint32_t emitted = s0.emitted;
      for (int j = 0; j < r.flag_len - 1; ++j) {
        const std::uint32_t bit = (r.flag >> (r.flag_len - 1 - j)) & 1;
        freg = (freg << 1 | bit) & fmask;
        emitted = std::min(emitted + 1, emit_cap);
        if (freg == r.flag && emitted >= emit_cap) {
          return fail("flag completes early inside the closing flag");
        }
      }
    }

    for (std::uint32_t d = 0; d < 2; ++d) {
      std::uint32_t freg = (s0.freg << 1 | d) & fmask;
      std::uint32_t seen = std::min(s0.seen + 1, seen_cap);
      std::uint32_t emitted = std::min(s0.emitted + 1, emit_cap);
      if (freg == r.flag && emitted >= emit_cap) {
        return fail("flag appears inside the stuffed body");
      }
      int stuffs = 0;
      bool degenerate = false;
      while (trigger_matches(freg, seen)) {
        if (++stuffs > kMaxConsecutiveStuffs) {
          degenerate = true;
          break;
        }
        freg = (freg << 1 | r.stuff_bit) & fmask;
        emitted = std::min(emitted + 1, emit_cap);
        if (freg == r.flag && emitted >= emit_cap) {
          return fail("stuffed bit completes the flag pattern");
        }
      }
      if (degenerate) {
        return fail("runaway self-triggering stuffing");
      }
      const State next{freg, seen, emitted};
      const std::size_t code = encode(next);
      if (!visited[code]) {
        visited[code] = 1;
        ++states;
        frontier.push_back(next);
      }
    }
  }
  if (states_out) *states_out = states;
  return true;
}

/// Fast stuffing of a short word (MSB-first in `data` of `len` bits) for
/// the bounded-exhaustive checks used by the search.  Returns false on
/// runaway.
bool fast_roundtrip(const FastRule& r, std::uint64_t data, int len) {
  const std::uint32_t tmask = r.tmask();
  // Stuff.
  std::uint64_t stuffed = 0;
  int slen = 0;
  std::uint32_t treg = 0;
  std::uint32_t seen = 0;
  for (int i = len - 1; i >= 0; --i) {
    const std::uint32_t bit = (data >> i) & 1;
    treg = (treg << 1 | bit) & tmask;
    seen = std::min(seen + 1, static_cast<std::uint32_t>(r.trigger_len));
    stuffed = stuffed << 1 | bit;
    ++slen;
    int stuffs = 0;
    while (seen >= static_cast<std::uint32_t>(r.trigger_len) &&
           treg == r.trigger) {
      if (++stuffs > kMaxConsecutiveStuffs || slen >= 63) return false;
      treg = (treg << 1 | r.stuff_bit) & tmask;
      stuffed = stuffed << 1 | r.stuff_bit;
      ++slen;
    }
  }
  // Unstuff and compare.
  std::uint64_t out = 0;
  int olen = 0;
  treg = 0;
  seen = 0;
  int i = slen - 1;
  while (i >= 0) {
    const std::uint32_t bit = (stuffed >> i) & 1;
    treg = (treg << 1 | bit) & tmask;
    seen = std::min(seen + 1, static_cast<std::uint32_t>(r.trigger_len));
    out = out << 1 | bit;
    ++olen;
    --i;
    while (seen >= static_cast<std::uint32_t>(r.trigger_len) &&
           treg == r.trigger && i >= 0) {
      if (((stuffed >> i) & 1) != r.stuff_bit) return false;
      treg = (treg << 1 | r.stuff_bit) & tmask;
      --i;
    }
  }
  return olen == len && out == data;
}

LemmaResult lemma(std::string name, std::string sublayer, bool passed,
                  std::string detail = {}) {
  return LemmaResult{std::move(name), std::move(sublayer), passed,
                     std::move(detail)};
}

}  // namespace

const LemmaResult* VerifyResult::first_failure() const {
  for (const auto& l : lemmas) {
    if (!l.passed) return &l;
  }
  return nullptr;
}

std::string VerifyResult::summary() const {
  std::string s = valid ? "VALID" : "INVALID";
  s += " (" + std::to_string(lemmas.size()) + " lemmas, " +
       std::to_string(automaton_states) + " automaton states, " +
       std::to_string(cases_checked) + " cases)";
  if (const auto* f = first_failure()) {
    s += " first failure: " + f->name + ": " + f->detail;
  }
  return s;
}

bool quick_check(const datalink::StuffingRule& rule,
                 std::uint64_t* states_out) {
  const FastRule r = FastRule::from(rule);
  if (r.flag_len < 2 || r.flag_len > 31 || r.trigger_len < 1 ||
      r.trigger_len > r.flag_len) {
    return false;
  }
  if (!no_false_flag(r, states_out, nullptr)) return false;
  // Cheap bounded round-trip for defence in depth (the automaton argument
  // already implies unstuffability; this guards the implementation).
  for (int len = 1; len <= 10; ++len) {
    for (std::uint64_t d = 0; d < (1ull << len); ++d) {
      if (!fast_roundtrip(r, d, len)) return false;
    }
  }
  return true;
}

VerifyResult verify_rule(const datalink::StuffingRule& rule,
                         const VerifyConfig& config) {
  VerifyResult result;
  const FastRule fast = FastRule::from(rule);

  // S1: well-formedness of the rule itself.
  const bool well_formed = !rule.flag.empty() && !rule.trigger.empty() &&
                           rule.flag.size() <= 31 &&
                           rule.trigger.size() <= rule.flag.size();
  result.lemmas.push_back(lemma("S1.rule_well_formed", "stuffing", well_formed,
                                rule.name()));
  if (!well_formed) return result;

  // F2: the exact no-false-flag argument (also rejects degenerate rules).
  std::string why;
  const bool nff = no_false_flag(fast, &result.automaton_states, &why);
  result.lemmas.push_back(lemma("F2.no_false_flag_any_length", "flags", nff,
                                nff ? std::to_string(result.automaton_states) +
                                          " states"
                                    : why));
  if (!nff) return result;

  // S3 + S4 + C1: bounded-exhaustive round trips over the real
  // implementation (not the fast integer path), covering every data word
  // up to the bound.
  bool s3 = true;
  bool s4 = true;
  bool c1 = true;
  std::string s3_cx;
  std::string s4_cx;
  std::string c1_cx;
  for (int len = 0; len <= config.exhaustive_max_bits && (s3 && s4 && c1);
       ++len) {
    const std::uint64_t total = 1ull << len;
    for (std::uint64_t v = 0; v < total; ++v) {
      const BitString d = BitString::from_uint(v, len);
      ++result.cases_checked;
      const BitString stuffed = datalink::stuff(rule, d);
      const auto un = datalink::unstuff(rule, stuffed);
      if (!un || *un != d) {
        s3 = false;
        s3_cx = "D=" + d.to_string();
        break;
      }
      // Every trigger occurrence in the stuffed stream is followed by the
      // stuff bit (this is what makes unstuffing deterministic).
      for (std::size_t p = 0; p + rule.trigger.size() < stuffed.size(); ++p) {
        if (stuffed.matches_at(p, rule.trigger) &&
            stuffed[p + rule.trigger.size()] != rule.stuff_bit) {
          // Note: an occurrence here may be a "stale" window that the
          // automaton never saw as a match because an earlier overlapping
          // match consumed it; only report if unstuffing actually broke.
          // (Kept as a statistic, not a failure.)
          break;
        }
      }
      const auto rt = datalink::deframe(rule, datalink::frame(rule, d));
      if (!rt || *rt != d) {
        c1 = false;
        c1_cx = "D=" + d.to_string();
        break;
      }
    }
  }
  result.lemmas.push_back(
      lemma("S3.unstuff_stuff_id", "stuffing", s3, s3 ? "" : s3_cx));
  result.lemmas.push_back(lemma("S4.trigger_followed_by_stuff_bit", "stuffing",
                                s4, s4 ? "" : s4_cx));

  // F1: flag sublayer round trip on its own.
  bool f1 = true;
  {
    Rng rng(config.seed);
    for (int t = 0; t < config.random_trials && f1; ++t) {
      const BitString body = rng.next_bits(
          static_cast<std::size_t>(rng.next_below(64)));
      const auto rt =
          datalink::remove_flags(rule.flag, datalink::add_flags(rule.flag, body));
      f1 = rt.has_value() && *rt == body;
    }
  }
  result.lemmas.push_back(lemma("F1.remove_add_flags_id", "flags", f1));

  result.lemmas.push_back(
      lemma("C1.end_to_end_theorem", "composed", c1, c1 ? "" : c1_cx));

  // C2: randomized long inputs through the composed path, plus the stream
  // deframer on back-to-back frames.
  bool c2 = true;
  {
    Rng rng(config.seed + 1);
    for (int t = 0; t < config.random_trials && c2; ++t) {
      const BitString d =
          rng.next_bits(static_cast<std::size_t>(config.random_bits));
      ++result.cases_checked;
      const auto rt = datalink::deframe(rule, datalink::frame(rule, d));
      c2 = rt.has_value() && *rt == d;
    }
    if (c2) {
      datalink::StreamDeframer deframer(rule);
      std::vector<BitString> sent;
      BitString wire;
      for (int t = 0; t < 8; ++t) {
        const BitString d = rng.next_bits(1 + rng.next_below(40));
        sent.push_back(d);
        wire.append(datalink::frame(rule, d));
      }
      const auto got = deframer.push_all(wire);
      c2 = got == sent;
    }
  }
  result.lemmas.push_back(lemma("C2.random_long_and_stream", "composed", c2));

  result.valid = s3 && s4 && f1 && c1 && c2;
  return result;
}

OverheadEstimate estimate_overhead(const datalink::StuffingRule& rule,
                                   std::size_t empirical_bits,
                                   std::uint64_t seed) {
  const FastRule r = FastRule::from(rule);
  OverheadEstimate est;
  est.naive = 1.0 / static_cast<double>(1ull << r.trigger_len);

  // Analytic: stationary distribution of the trigger automaton under IID
  // uniform bits; expected stuffed bits per data bit.
  {
    const std::uint32_t tmask = r.tmask();
    const auto seen_cap = static_cast<std::uint32_t>(r.trigger_len);
    const std::size_t n = (tmask + 1ull) * (seen_cap + 1);
    const auto encode = [&](std::uint32_t treg, std::uint32_t seen) {
      return treg * (seen_cap + 1) + seen;
    };
    std::vector<double> pi(n, 0.0);
    pi[encode(0, 0)] = 1.0;
    std::vector<double> next(n);
    double expected = 0;
    for (int iter = 0; iter < 512; ++iter) {
      std::fill(next.begin(), next.end(), 0.0);
      double stuffs_this_round = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (pi[s] == 0) continue;
        const std::uint32_t treg0 = static_cast<std::uint32_t>(s) / (seen_cap + 1);
        const std::uint32_t seen0 = static_cast<std::uint32_t>(s) % (seen_cap + 1);
        for (std::uint32_t d = 0; d < 2; ++d) {
          std::uint32_t treg = (treg0 << 1 | d) & tmask;
          std::uint32_t seen = std::min(seen0 + 1, seen_cap);
          int stuffs = 0;
          while (seen >= seen_cap && treg == r.trigger &&
                 stuffs <= kMaxConsecutiveStuffs) {
            ++stuffs;
            treg = (treg << 1 | r.stuff_bit) & tmask;
          }
          next[encode(treg, seen)] += 0.5 * pi[s];
          stuffs_this_round += 0.5 * pi[s] * stuffs;
        }
      }
      pi.swap(next);
      // The per-step expected stuff count converges to the stationary rate;
      // keep the latest value.
      expected = stuffs_this_round;
    }
    est.analytic = expected;
  }

  // Empirical: feed random bits through the trigger automaton.
  if (empirical_bits > 0) {
    Rng rng(seed);
    const std::uint32_t tmask = r.tmask();
    std::uint32_t treg = 0;
    std::uint32_t seen = 0;
    std::uint64_t stuffed = 0;
    std::uint64_t pool = 0;
    int avail = 0;
    for (std::size_t i = 0; i < empirical_bits; ++i) {
      if (avail == 0) {
        pool = rng.next_u64();
        avail = 64;
      }
      const auto d = static_cast<std::uint32_t>(pool & 1);
      pool >>= 1;
      --avail;
      treg = (treg << 1 | d) & tmask;
      seen = std::min(seen + 1, static_cast<std::uint32_t>(r.trigger_len));
      int stuffs = 0;
      while (seen >= static_cast<std::uint32_t>(r.trigger_len) &&
             treg == r.trigger && stuffs <= kMaxConsecutiveStuffs) {
        ++stuffs;
        treg = (treg << 1 | r.stuff_bit) & tmask;
      }
      stuffed += static_cast<std::uint64_t>(stuffs);
    }
    est.empirical =
        static_cast<double>(stuffed) / static_cast<double>(empirical_bits);
  }
  return est;
}

SearchOutcome search_rules(const SearchConfig& config) {
  SearchOutcome out;
  std::set<std::string> dedup;
  const int flag_bits = config.flag_bits;

  for (std::uint64_t flag_value = 0; flag_value < (1ull << flag_bits);
       ++flag_value) {
    const BitString flag = BitString::from_uint(flag_value, flag_bits);
    for (int tlen = config.min_trigger;
         tlen <= std::min(config.max_trigger, flag_bits); ++tlen) {
      const int max_pos = config.prefix_triggers_only ? 0 : flag_bits - tlen;
      for (int pos = 0; pos <= max_pos; ++pos) {
        const BitString trigger = flag.slice(static_cast<std::size_t>(pos),
                                             static_cast<std::size_t>(tlen));
        for (int bit = 0; bit < 2; ++bit) {
          StuffingRule rule{flag, trigger, bit == 1};
          const std::string key = rule.name();
          if (!dedup.insert(key).second) continue;
          ++out.candidates;

          std::uint64_t states = 0;
          if (!quick_check(rule, &states)) {
            // Distinguish degenerate from false-flag for the report.
            std::string why;
            FastRule fr = FastRule::from(rule);
            no_false_flag(fr, nullptr, &why);
            if (why.find("runaway") != std::string::npos) {
              ++out.rejected_degenerate;
            } else {
              ++out.rejected_false_flag;
            }
            continue;
          }
          ScoredRule scored{rule, estimate_overhead(rule, /*empirical_bits=*/0)};
          out.valid_rules.push_back(std::move(scored));
        }
      }
    }
  }

  std::sort(out.valid_rules.begin(), out.valid_rules.end(),
            [](const ScoredRule& a, const ScoredRule& b) {
              return a.overhead.analytic < b.overhead.analytic;
            });
  const double hdlc_overhead = 1.0 / 32.0;
  for (const auto& s : out.valid_rules) {
    if (s.overhead.analytic < hdlc_overhead) ++out.cheaper_than_hdlc;
  }
  return out;
}

}  // namespace sublayer::stuffverify
