// Verifier for bit-stuffing rules — the C++ stand-in for the paper's Coq
// experiment (§4.1).
//
// The paper proved, in Coq, the specification
//
//     Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D   for all D,
//
// via 57 lemmas, and searched the rule space, finding 66 valid alternate
// stuffing rules, some cheaper than HDLC.  We reproduce the *results* with
// two decision procedures instead of interactive proof:
//
//  1. An exact automaton-product argument ("no false flag"): BFS over the
//     reachable states of the stuffing automaton, checking that the flag
//     pattern never completes inside flag·Stuff(D)·flag except at the two
//     ends — for data of EVERY length (the state space is finite, ≤ 2^|F|).
//     This is the load-bearing sublayer lemma: it is what makes the flag
//     sublayer's delimiting decision independent of the data.
//
//  2. Bounded-exhaustive checking of the sublayer round-trip lemmas and
//     the composed end-to-end theorem over all data words up to a bound,
//     plus randomized long inputs.
//
// Each check is recorded as a named "lemma" in a ledger, mirroring the
// per-sublayer lemma structure the paper highlights as the modularity win.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datalink/framing/stuffing.hpp"

namespace sublayer::stuffverify {

struct LemmaResult {
  std::string name;
  std::string sublayer;  // "stuffing", "flags", or "composed"
  bool passed = false;
  std::string detail;    // counterexample or statistics
};

struct VerifyResult {
  bool valid = false;
  std::vector<LemmaResult> lemmas;
  std::uint64_t automaton_states = 0;  // reachable states explored
  std::uint64_t cases_checked = 0;     // bounded-exhaustive inputs tried

  const LemmaResult* first_failure() const;
  std::string summary() const;
};

struct VerifyConfig {
  /// Exhaustive round-trip bound: all data words with length <= this.
  int exhaustive_max_bits = 14;
  /// Randomized long-input trials and their length.
  int random_trials = 64;
  int random_bits = 512;
  std::uint64_t seed = 42;
};

/// Runs the full lemma ledger for one rule.
VerifyResult verify_rule(const datalink::StuffingRule& rule,
                         const VerifyConfig& config = {});

/// Fast validity predicate used by the rule search: degeneracy check plus
/// the exact automaton no-false-flag argument (no bounded enumeration).
/// Exact for the no-false-flag property; verify_rule() adds the round-trip
/// lemmas for defence in depth.
bool quick_check(const datalink::StuffingRule& rule,
                 std::uint64_t* states_out = nullptr);

// ---- Overhead analysis (paper §4.1, lesson 2) -------------------------------

struct OverheadEstimate {
  /// The paper's measure: probability that a random window matches the
  /// trigger, i.e. 2^-|T| ("1 in 32" for HDLC, "1 in 128" for 00000010).
  double naive = 0;
  /// Expected stuffed bits per data bit, from the stationary distribution
  /// of the stuffing automaton under IID uniform data (power iteration).
  /// For self-overlapping triggers like HDLC's 11111 this is *lower* than
  /// the naive measure (1/62 vs 1/32) because a stuff resets the run; for
  /// non-overlapping triggers like 0000001 the two coincide.
  double analytic = 0;
  /// Measured (stuffed_len - data_len) / data_len on random data.
  double empirical = 0;
  /// True overhead expressed as "1 in N" data bits.
  double one_in_n() const { return analytic > 0 ? 1.0 / analytic : 0; }
};

OverheadEstimate estimate_overhead(const datalink::StuffingRule& rule,
                                   std::size_t empirical_bits = 1 << 20,
                                   std::uint64_t seed = 7);

// ---- Rule search (paper §4.1, "66 alternate stuffing rules") ----------------

struct SearchConfig {
  int flag_bits = 8;
  int min_trigger = 3;
  int max_trigger = 7;
  /// If true, only triggers that are prefixes of the flag (the canonical
  /// construction behind the paper's 00000010 example); otherwise all
  /// contiguous substrings of the flag.
  bool prefix_triggers_only = false;
};

struct ScoredRule {
  datalink::StuffingRule rule;
  OverheadEstimate overhead;
};

struct SearchOutcome {
  std::vector<ScoredRule> valid_rules;  // sorted by ascending overhead
  std::uint64_t candidates = 0;
  std::uint64_t rejected_degenerate = 0;
  std::uint64_t rejected_false_flag = 0;
  std::uint64_t cheaper_than_hdlc = 0;  // analytic overhead < 1/32
};

SearchOutcome search_rules(const SearchConfig& config = {});

}  // namespace sublayer::stuffverify
