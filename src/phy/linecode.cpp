#include "phy/linecode.hpp"

#include "phy/linecode_static.hpp"

// The virtual classes here are thin adapters over the static kernels in
// linecode_static.hpp: the dynamic (swappable-at-runtime) path and the
// fused (compile-time composed) path share one implementation, so the
// round-trip tests pin both.

namespace sublayer::phy {

void LineCode::encode_append(const BitString& data, BitString& out) const {
  out.append(encode(data));
}

bool LineCode::decode_append(const BitString& symbols, BitString& out) const {
  auto decoded = decode(symbols);
  if (!decoded) return false;
  out.append(*decoded);
  return true;
}

namespace {

/// Adapts a static code stage (linecode_static.hpp) to the virtual
/// LineCode interface.
template <class Static>
class VirtualCode final : public LineCode {
 public:
  std::string name() const override { return Static::kName; }
  double symbols_per_bit() const override { return Static::kSymbolsPerBit; }
  std::size_t input_alignment_bits() const override {
    return Static::kInputAlignmentBits;
  }
  bool is_identity() const override { return Static::kIdentity; }

  void encode_append(const BitString& data, BitString& out) const override {
    Static::encode_append(data, out);
  }
  bool decode_append(const BitString& symbols, BitString& out) const override {
    return Static::decode_append(symbols, out);
  }

  BitString encode(const BitString& data) const override {
    if constexpr (Static::kIdentity) {
      return data;
    } else {
      BitString out;
      Static::encode_append(data, out);
      return out;
    }
  }

  std::optional<BitString> decode(const BitString& symbols) const override {
    if constexpr (Static::kIdentity) {
      return symbols;
    } else {
      BitString out;
      if (!Static::decode_append(symbols, out)) return std::nullopt;
      return out;
    }
  }
};

}  // namespace

std::unique_ptr<LineCode> make_nrz() {
  return std::make_unique<VirtualCode<NrzCode>>();
}
std::unique_ptr<LineCode> make_nrzi() {
  return std::make_unique<VirtualCode<NrziCode>>();
}
std::unique_ptr<LineCode> make_manchester() {
  return std::make_unique<VirtualCode<ManchesterCode>>();
}
std::unique_ptr<LineCode> make_4b5b() {
  return std::make_unique<VirtualCode<FourBFiveBCode>>();
}

}  // namespace sublayer::phy
