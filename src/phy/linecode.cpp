#include "phy/linecode.hpp"

#include <array>

namespace sublayer::phy {
namespace {

class Nrz final : public LineCode {
 public:
  std::string name() const override { return "NRZ"; }
  double symbols_per_bit() const override { return 1.0; }
  BitString encode(const BitString& data) const override { return data; }
  std::optional<BitString> decode(const BitString& symbols) const override {
    return symbols;
  }
};

class Nrzi final : public LineCode {
 public:
  std::string name() const override { return "NRZI"; }
  double symbols_per_bit() const override { return 1.0; }

  BitString encode(const BitString& data) const override {
    BitString out;
    bool level = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i]) level = !level;
      out.push_back(level);
    }
    return out;
  }

  std::optional<BitString> decode(const BitString& symbols) const override {
    BitString out;
    bool prev = false;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      out.push_back(symbols[i] != prev);
      prev = symbols[i];
    }
    return out;
  }
};

class Manchester final : public LineCode {
 public:
  std::string name() const override { return "Manchester"; }
  double symbols_per_bit() const override { return 2.0; }

  BitString encode(const BitString& data) const override {
    BitString out;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i]) {
        out.push_back(true);
        out.push_back(false);
      } else {
        out.push_back(false);
        out.push_back(true);
      }
    }
    return out;
  }

  std::optional<BitString> decode(const BitString& symbols) const override {
    if (symbols.size() % 2 != 0) return std::nullopt;
    BitString out;
    for (std::size_t i = 0; i < symbols.size(); i += 2) {
      const bool a = symbols[i];
      const bool b = symbols[i + 1];
      if (a == b) return std::nullopt;  // 00/11 are invalid mid-bit patterns
      out.push_back(a);
    }
    return out;
  }
};

// FDDI 4B/5B data symbols.
constexpr std::array<std::uint8_t, 16> k4b5b = {
    0b11110, 0b01001, 0b10100, 0b10101, 0b01010, 0b01011, 0b01110, 0b01111,
    0b10010, 0b10011, 0b10110, 0b10111, 0b11010, 0b11011, 0b11100, 0b11101,
};

class FourBFiveB final : public LineCode {
 public:
  FourBFiveB() {
    reverse_.fill(-1);
    for (std::size_t i = 0; i < k4b5b.size(); ++i) {
      reverse_[k4b5b[i]] = static_cast<int>(i);
    }
  }

  std::string name() const override { return "4B5B"; }
  double symbols_per_bit() const override { return 1.25; }
  std::size_t input_alignment_bits() const override { return 4; }

  BitString encode(const BitString& data) const override {
    if (data.size() % 4 != 0) {
      throw std::invalid_argument("4B5B: input must be 4-bit aligned");
    }
    BitString out;
    for (std::size_t i = 0; i < data.size(); i += 4) {
      const auto nibble = static_cast<std::size_t>(data.slice(i, 4).to_uint());
      const std::uint8_t sym = k4b5b[nibble];
      for (int b = 4; b >= 0; --b) out.push_back((sym >> b & 1) != 0);
    }
    return out;
  }

  std::optional<BitString> decode(const BitString& symbols) const override {
    if (symbols.size() % 5 != 0) return std::nullopt;
    BitString out;
    for (std::size_t i = 0; i < symbols.size(); i += 5) {
      const auto sym = static_cast<std::size_t>(symbols.slice(i, 5).to_uint());
      const int nibble = reverse_[sym];
      if (nibble < 0) return std::nullopt;  // not a data symbol
      for (int b = 3; b >= 0; --b) out.push_back((nibble >> b & 1) != 0);
    }
    return out;
  }

 private:
  std::array<int, 32> reverse_{};
};

}  // namespace

std::unique_ptr<LineCode> make_nrz() { return std::make_unique<Nrz>(); }
std::unique_ptr<LineCode> make_nrzi() { return std::make_unique<Nrzi>(); }
std::unique_ptr<LineCode> make_manchester() {
  return std::make_unique<Manchester>();
}
std::unique_ptr<LineCode> make_4b5b() { return std::make_unique<FourBFiveB>(); }

}  // namespace sublayer::phy
