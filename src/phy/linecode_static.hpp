// Static (compile-time) forms of the line codes: the same word-parallel
// kernels as the virtual classes in linecode.cpp, exposed as stateless
// types with static member functions so a template composer
// (datalink/fused/pipeline.hpp) can inline them into a fused pipeline with
// zero dispatch.  The virtual classes delegate to these — one kernel, two
// call conventions — so the existing round-trip tests pin both paths.
//
// Stage shape (the fused composer's `Code` concept):
//   kName / kSymbolsPerBit / kInputAlignmentBits / kIdentity
//   static void encode_append(const BitString& data, BitString& out)
//   static bool decode_append(const BitString& symbols, BitString& out)
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "common/bytes.hpp"

namespace sublayer::phy {

namespace codedetail {

/// Iterates a BitString 64 bits at a time (final chunk may be short),
/// handing each chunk to `fn(std::uint64_t value_in_low_bits, std::size_t n)`.
template <typename Fn>
inline void for_each_chunk(const BitString& bits, Fn&& fn) {
  const std::size_t total = bits.size();
  for (std::size_t off = 0; off < total; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    fn(bits.bits_at(off, n), n);
  }
}

/// 8 data bits -> 16 Manchester symbol bits (IEEE 802.3: 0 -> 01, 1 -> 10).
constexpr std::array<std::uint16_t, 256> manchester_table() {
  std::array<std::uint16_t, 256> t{};
  for (int b = 0; b < 256; ++b) {
    std::uint16_t sym = 0;
    for (int i = 7; i >= 0; --i) {
      sym = static_cast<std::uint16_t>(sym << 2 |
                                       ((b >> i & 1) != 0 ? 0b10 : 0b01));
    }
    t[static_cast<std::size_t>(b)] = sym;
  }
  return t;
}

/// Inverse: 8 symbol bits -> 4 data bits, or -1 if any pair is 00/11.
constexpr std::array<std::int8_t, 256> manchester_inverse() {
  std::array<std::int8_t, 256> t{};
  for (int s = 0; s < 256; ++s) {
    int nibble = 0;
    bool valid = true;
    for (int p = 3; p >= 0; --p) {
      const int pair = s >> (2 * p) & 0b11;
      if (pair != 0b01 && pair != 0b10) valid = false;
      nibble = nibble << 1 | (pair == 0b10 ? 1 : 0);
    }
    t[static_cast<std::size_t>(s)] =
        static_cast<std::int8_t>(valid ? nibble : -1);
  }
  return t;
}

// FDDI 4B/5B data symbols.
constexpr std::array<std::uint8_t, 16> k4b5b = {
    0b11110, 0b01001, 0b10100, 0b10101, 0b01010, 0b01011, 0b01110, 0b01111,
    0b10010, 0b10011, 0b10110, 0b10111, 0b11010, 0b11011, 0b11100, 0b11101,
};

constexpr std::array<std::int8_t, 32> k4b5b_inverse() {
  std::array<std::int8_t, 32> t{};
  for (auto& e : t) e = -1;
  for (std::size_t i = 0; i < k4b5b.size(); ++i) {
    t[k4b5b[i]] = static_cast<std::int8_t>(i);
  }
  return t;
}

}  // namespace codedetail

/// Non-return-to-zero: symbols are the bits themselves.
struct NrzCode {
  static constexpr const char* kName = "NRZ";
  static constexpr double kSymbolsPerBit = 1.0;
  static constexpr std::size_t kInputAlignmentBits = 1;
  static constexpr bool kIdentity = true;

  static void encode_append(const BitString& data, BitString& out) {
    out.append(data);
  }
  static bool decode_append(const BitString& symbols, BitString& out) {
    out.append(symbols);
    return true;
  }
};

/// NRZI: a 1 toggles the line level, a 0 holds it.  Initial level is 0.
struct NrziCode {
  static constexpr const char* kName = "NRZI";
  static constexpr double kSymbolsPerBit = 1.0;
  static constexpr std::size_t kInputAlignmentBits = 1;
  static constexpr bool kIdentity = false;

  static void encode_append(const BitString& data, BitString& out) {
    // level[i] = initial_level XOR parity(data[0..i]): a word-parallel
    // prefix-XOR from the MSB side, with the running level carried between
    // chunks, replaces the per-bit toggle loop.
    out.reserve(out.size() + data.size());
    bool level = false;
    codedetail::for_each_chunk(data, [&](std::uint64_t v, std::size_t n) {
      std::uint64_t w = v << (64 - n);
      w ^= w >> 1;
      w ^= w >> 2;
      w ^= w >> 4;
      w ^= w >> 8;
      w ^= w >> 16;
      w ^= w >> 32;
      if (level) w = ~w;
      out.append_word(w >> (64 - n), static_cast<int>(n));
      level = (w >> (64 - n)) & 1;
    });
  }

  static bool decode_append(const BitString& symbols, BitString& out) {
    // data[i] = symbols[i] XOR symbols[i-1], with the previous chunk's last
    // level carried into the top bit.
    out.reserve(out.size() + symbols.size());
    bool prev = false;
    codedetail::for_each_chunk(symbols, [&](std::uint64_t v, std::size_t n) {
      const std::uint64_t w = v << (64 - n);
      std::uint64_t shifted = w >> 1;
      if (prev) shifted |= 1ull << 63;
      out.append_word((w ^ shifted) >> (64 - n), static_cast<int>(n));
      prev = v & 1;
    });
    return true;
  }
};

/// Manchester (IEEE 802.3 convention): 0 -> 01, 1 -> 10.
struct ManchesterCode {
  static constexpr const char* kName = "Manchester";
  static constexpr double kSymbolsPerBit = 2.0;
  static constexpr std::size_t kInputAlignmentBits = 1;
  static constexpr bool kIdentity = false;

  static void encode_append(const BitString& data, BitString& out) {
    static constexpr auto kExpand = codedetail::manchester_table();
    out.reserve(out.size() + data.size() * 2);
    std::size_t i = 0;
    // 32 data bits -> one 64-bit symbol word: 4 table lookups per append.
    for (; i + 32 <= data.size(); i += 32) {
      const std::uint64_t d = data.bits_at(i, 32);
      const std::uint64_t w =
          static_cast<std::uint64_t>(kExpand[d >> 24]) << 48 |
          static_cast<std::uint64_t>(kExpand[(d >> 16) & 0xff]) << 32 |
          static_cast<std::uint64_t>(kExpand[(d >> 8) & 0xff]) << 16 |
          static_cast<std::uint64_t>(kExpand[d & 0xff]);
      out.append_word(w, 64);
    }
    for (; i + 8 <= data.size(); i += 8) {
      out.append_word(kExpand[data.bits_at(i, 8)], 16);
    }
    for (; i < data.size(); ++i) {
      out.append_word(data[i] ? 0b10 : 0b01, 2);
    }
  }

  static bool decode_append(const BitString& symbols, BitString& out) {
    if (symbols.size() % 2 != 0) return false;
    static constexpr auto kCompress = codedetail::manchester_inverse();
    out.reserve(out.size() + symbols.size() / 2);
    std::size_t i = 0;
    // 64 symbol bits -> 32 data bits: 8 lookups per append, and the
    // validity test ORs the signs so one branch covers the whole word.
    for (; i + 64 <= symbols.size(); i += 64) {
      const std::uint64_t s = symbols.bits_at(i, 64);
      std::uint64_t w = 0;
      int invalid = 0;
      for (int b = 7; b >= 0; --b) {
        const std::int8_t nibble = kCompress[(s >> (8 * b)) & 0xff];
        invalid |= nibble;
        w = w << 4 | static_cast<std::uint64_t>(nibble & 0xf);
      }
      if (invalid < 0) return false;  // 00/11 are invalid mid-bit patterns
      out.append_word(w, 32);
    }
    for (; i + 8 <= symbols.size(); i += 8) {
      const std::int8_t nibble = kCompress[symbols.bits_at(i, 8)];
      if (nibble < 0) return false;
      out.append_word(static_cast<std::uint64_t>(nibble), 4);
    }
    for (; i < symbols.size(); i += 2) {
      const std::uint64_t pair = symbols.bits_at(i, 2);
      if (pair != 0b01 && pair != 0b10) return false;
      out.push_back(pair == 0b10);
    }
    return true;
  }
};

/// 4B/5B block code (FDDI table): each data nibble maps to a 5-bit symbol
/// with bounded run length.  Requires 4-bit alignment.
struct FourBFiveBCode {
  static constexpr const char* kName = "4B5B";
  static constexpr double kSymbolsPerBit = 1.25;
  static constexpr std::size_t kInputAlignmentBits = 4;
  static constexpr bool kIdentity = false;

  static void encode_append(const BitString& data, BitString& out) {
    static constexpr auto kExpand = codedetail::k4b5b;
    if (data.size() % 4 != 0) {
      throw std::invalid_argument("4B5B: input must be 4-bit aligned");
    }
    out.reserve(out.size() + data.size() / 4 * 5);
    std::size_t i = 0;
    // 32 data bits (8 nibbles) -> 40 symbol bits per append.
    for (; i + 32 <= data.size(); i += 32) {
      const std::uint64_t d = data.bits_at(i, 32);
      std::uint64_t w = 0;
      for (int nb = 7; nb >= 0; --nb) {
        w = w << 5 | kExpand[(d >> (4 * nb)) & 0xf];
      }
      out.append_word(w, 40);
    }
    for (; i < data.size(); i += 4) {
      out.append_word(kExpand[data.bits_at(i, 4)], 5);
    }
  }

  static bool decode_append(const BitString& symbols, BitString& out) {
    static constexpr auto kCompress = codedetail::k4b5b_inverse();
    if (symbols.size() % 5 != 0) return false;
    out.reserve(out.size() + symbols.size() / 5 * 4);
    std::size_t i = 0;
    // 40 symbol bits -> 32 data bits per append.
    for (; i + 40 <= symbols.size(); i += 40) {
      const std::uint64_t s = symbols.bits_at(i, 40);
      std::uint64_t w = 0;
      int invalid = 0;
      for (int sym = 7; sym >= 0; --sym) {
        const int nibble = kCompress[(s >> (5 * sym)) & 0x1f];
        invalid |= nibble;
        w = w << 4 | static_cast<std::uint64_t>(nibble & 0xf);
      }
      if (invalid < 0) return false;  // not a data symbol
      out.append_word(w, 32);
    }
    for (; i < symbols.size(); i += 5) {
      const int nibble = kCompress[symbols.bits_at(i, 5)];
      if (nibble < 0) return false;
      out.append_word(static_cast<std::uint64_t>(nibble), 4);
    }
    return true;
  }
};

}  // namespace sublayer::phy
