// Encoding/decoding sublayer (the bottom sublayer of the data link,
// Fig. 2 of the paper): line codes that map data bits to channel symbols.
//
// The sublayer contract (test T1/T2/T3): decode(encode(d)) == d for all d
// meeting the code's alignment requirement, and the code is swappable —
// nothing above this interface knows which line code is in use.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sublayer::phy {

class LineCode {
 public:
  virtual ~LineCode() = default;

  virtual std::string name() const = 0;

  /// Channel symbols per data bit (e.g. 2.0 for Manchester, 1.25 for 4B/5B).
  virtual double symbols_per_bit() const = 0;

  /// Data bits per codeword; inputs to encode() must be a multiple of this.
  virtual std::size_t input_alignment_bits() const { return 1; }

  virtual BitString encode(const BitString& data) const = 0;

  /// Returns nullopt if the symbol stream is not a valid codeword sequence
  /// (possible after channel corruption; the error-detection sublayer above
  /// still catches corruptions that decode to *some* valid word).
  virtual std::optional<BitString> decode(const BitString& symbols) const = 0;

  /// True when encode/decode are the identity map (NRZ): the batched data
  /// plane then skips the copy through a separate symbol buffer entirely.
  virtual bool is_identity() const { return false; }

  /// Appends encode(data) to `out` — the allocation-free form for callers
  /// that own (arena) buffers.  Same contract as encode().
  virtual void encode_append(const BitString& data, BitString& out) const;

  /// Appends decode(symbols) to `out`; false on an invalid codeword
  /// sequence, in which case `out` may hold a partial prefix the caller
  /// must discard.
  virtual bool decode_append(const BitString& symbols, BitString& out) const;
};

/// Non-return-to-zero: symbols are the bits themselves.
std::unique_ptr<LineCode> make_nrz();

/// NRZI: a 1 toggles the line level, a 0 holds it.  Initial level is 0.
std::unique_ptr<LineCode> make_nrzi();

/// Manchester (IEEE 802.3 convention): 0 -> 01, 1 -> 10.
std::unique_ptr<LineCode> make_manchester();

/// 4B/5B block code (FDDI table): each data nibble maps to a 5-bit symbol
/// with bounded run length.  Requires 4-bit alignment.
std::unique_ptr<LineCode> make_4b5b();

}  // namespace sublayer::phy
