#include "offload/offload.hpp"

namespace sublayer::offload {

Placement Placement::all_host() {
  return Placement{"all-host",
                   {Domain::kHost, Domain::kHost, Domain::kHost, Domain::kHost}};
}
Placement Placement::nic_dm_cm_rd() {
  return Placement{"nic-dm-cm-rd",
                   {Domain::kNic, Domain::kNic, Domain::kNic, Domain::kHost}};
}
Placement Placement::nic_rd_only() {
  return Placement{"nic-rd-only",
                   {Domain::kHost, Domain::kHost, Domain::kNic, Domain::kHost}};
}
Placement Placement::all_nic() {
  return Placement{"all-nic",
                   {Domain::kNic, Domain::kNic, Domain::kNic, Domain::kNic}};
}

int crossings_per_segment(const Placement& p) {
  // Path: wire (NIC) -> DM -> CM -> RD -> OSR -> app (host).
  int crossings = 0;
  Domain prev = Domain::kNic;  // the wire
  for (int s = 0; s < kStageCount; ++s) {
    const Domain d = p.domain[static_cast<std::size_t>(s)];
    if (d != prev) ++crossings;
    prev = d;
  }
  if (prev != Domain::kHost) ++crossings;  // hand-off to the application
  return crossings;
}

OffloadReport evaluate(const Placement& p, const Workload& w,
                       const CostModel& costs) {
  OffloadReport report;
  report.placement = p.name;
  report.crossings_per_segment = crossings_per_segment(p);

  double host_ns = 0;
  double nic_ns = 0;
  for (int s = 0; s < kStageCount; ++s) {
    const auto idx = static_cast<std::size_t>(s);
    if (p.domain[idx] == Domain::kHost) {
      host_ns += costs.host_ns[idx];
    } else {
      nic_ns += costs.nic_ns[idx];
    }
  }
  host_ns += costs.crossing_ns * report.crossings_per_segment;
  report.host_ns_per_segment = host_ns;
  report.nic_ns_per_segment = nic_ns;

  const double total_segments =
      static_cast<double>(w.data_segments + w.ack_segments);
  report.host_cpu_seconds = host_ns * total_segments * 1e-9;
  if (host_ns > 0 && w.data_segments > 0) {
    const double seg_rate = 1e9 / host_ns;  // segments/s on one host core
    const double bytes_per_data_segment =
        static_cast<double>(w.payload_bytes) /
        static_cast<double>(w.data_segments);
    const double data_fraction =
        static_cast<double>(w.data_segments) / total_segments;
    report.host_bound_bps =
        seg_rate * data_fraction * bytes_per_data_segment * 8.0;
  } else {
    report.host_bound_bps = 0;  // not host-bound at all
  }

  // Baseline comparison.
  double all_host_ns = costs.crossing_ns * 1;  // the unavoidable wire DMA
  for (int s = 0; s < kStageCount; ++s) {
    all_host_ns += costs.host_ns[static_cast<std::size_t>(s)];
  }
  report.host_cpu_fraction_of_all_host =
      all_host_ns > 0 ? host_ns / all_host_ns : 1.0;
  return report;
}

}  // namespace sublayer::offload
