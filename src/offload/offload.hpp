// Hardware-offload simulator (paper §3.1 "Sublayering does not help
// hardware offload: on the contrary..." and Challenge 6).
//
// The paper's claim is structural: sublayer boundaries are principled CUT
// POINTS for host/NIC placement, because each boundary is a narrow
// interface (T2) and each sublayer owns its own state (T3).  What we can
// measure in simulation is exactly that structure:
//
//   * how many domain crossings a segment suffers under a placement
//     (every adjacent pair of processing stages in different domains
//     costs one crossing, i.e. one DMA/PCIe-like transaction), and
//   * the resulting per-segment host CPU time and achievable goodput
//     under a simple cost model (per-stage costs measured by the
//     microbenchmarks + a configurable crossing tax).
//
// The three placements the paper discusses:
//   all-host            — classical software stack (1 crossing: the wire).
//   NIC {DM, CM, RD}    — "a simple decomposition places RD, CM, and DM in
//                         hardware" (1 crossing: RD<->OSR).
//   NIC {RD} only       — "with more finagling ... only RD in hardware"
//                         (3 crossings: wire<->DM path re-enters the NIC).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sublayer::offload {

enum class Domain : std::uint8_t { kHost, kNic };

/// Processing stages along a segment's path, wire to application.
enum class Stage : std::uint8_t { kDm = 0, kCm = 1, kRd = 2, kOsr = 3 };
constexpr int kStageCount = 4;

struct Placement {
  std::string name;
  std::array<Domain, kStageCount> domain{};

  Domain of(Stage s) const { return domain[static_cast<int>(s)]; }

  static Placement all_host();
  static Placement nic_dm_cm_rd();
  static Placement nic_rd_only();
  static Placement all_nic();  // extreme point, for the sweep
};

/// Per-stage processing costs (ns per segment) and the crossing tax.
struct CostModel {
  /// Host CPU time per segment per stage; indexable by Stage.
  std::array<double, kStageCount> host_ns{120, 80, 400, 350};
  /// NIC processing is assumed pipelined/parallel; it does not consume
  /// host CPU but bounds the segment rate.
  std::array<double, kStageCount> nic_ns{60, 40, 200, 175};
  /// One domain crossing (DMA descriptor + doorbell-ish) in ns, charged
  /// to the host side.
  double crossing_ns = 600;
};

/// Workload summary: how many segments of each kind a transfer generated
/// (obtainable from the live stack's RD stats).
struct Workload {
  std::uint64_t data_segments = 0;
  std::uint64_t ack_segments = 0;
  std::uint64_t payload_bytes = 0;
};

struct OffloadReport {
  std::string placement;
  /// Crossings along one segment's full path (wire..app), data path.
  int crossings_per_segment = 0;
  double host_ns_per_segment = 0;
  double nic_ns_per_segment = 0;
  /// Host CPU time for the whole workload (seconds).
  double host_cpu_seconds = 0;
  /// Throughput bound from the serial host path (bits/s), assuming the
  /// host CPU is the bottleneck resource.
  double host_bound_bps = 0;
  /// Fraction of all-host CPU cost that this placement retains.
  double host_cpu_fraction_of_all_host = 1.0;
};

/// Counts domain crossings for a data segment's wire-to-app path.  The
/// wire side is always the NIC domain and the application is always the
/// host domain.
int crossings_per_segment(const Placement& p);

/// Evaluates a placement against a workload under a cost model.
OffloadReport evaluate(const Placement& p, const Workload& w,
                       const CostModel& costs = {});

}  // namespace sublayer::offload
