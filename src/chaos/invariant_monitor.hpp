// InvariantMonitor: the judge of a chaos run.
//
// While a ChaosController injects faults, the monitor periodically asserts
// the cross-layer *safety* invariants that must hold at every instant, no
// matter what the fault script does:
//
//   1. Stream-prefix integrity: the bytes an application has received on a
//      tracked transfer are an exact prefix of the bytes its peer sent.
//      Loss, duplication, corruption, reordering, crashes — none may
//      reorder, damage, or invent stream bytes; faults may only truncate.
//   2. No resurrection: once a tracked transfer reports closed or reset,
//      no further data or establishment may arrive on it.
//   3. FIB liveness: no up router's FIB entry points out an interface
//      whose neighbor the neighbor-determination sublayer has declared
//      dead — forwarding never outlives neighbor state.  A crashed
//      router's FIB is empty (state loss is total).
//   4. OSR crossing balance: summed over all endpoints, bytes crossing up
//      through the ordered-stream boundary never exceed bytes crossing
//      down — the stream sublayer cannot deliver more than was submitted,
//      only (under faults) less.
//
// and measures the *liveness* half — how quickly the system heals once the
// controller stops hurting it: time until every link's neighbors are
// re-detected, and time until routing is fully reconverged, checked
// against a configured bound.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "netlayer/router.hpp"
#include "sim/simulator.hpp"

namespace sublayer::chaos {

struct MonitorConfig {
  /// Cadence of the periodic safety sweep.
  Duration check_interval = Duration::millis(50);
  /// Liveness bound: after the last fault heals, neighbors must be
  /// re-detected and routing fully reconverged within this long.
  Duration reconvergence_bound = Duration::seconds(2.0);
};

class InvariantMonitor {
 public:
  InvariantMonitor(sim::Simulator& sim, netlayer::Network& net,
                   MonitorConfig config = {});

  /// Snapshots telemetry baselines and begins the periodic safety sweep.
  void start();

  // ---- transfer tracking (invariants 1 and 2) ----
  /// Registers a unidirectional application transfer; returns its id.
  int register_transfer(std::string label);
  void record_sent(int transfer, ByteView data);
  void record_delivered(int transfer, ByteView data);
  /// The transfer's connection closed or reset; traffic after this is a
  /// resurrection violation.
  void record_dead(int transfer);
  /// Bytes delivered so far on a transfer (all verified prefix-correct).
  std::size_t delivered_bytes(int transfer) const;

  // ---- liveness (measured once faults are done) ----
  /// Arms the heal clock: liveness is measured from `healed_at`.
  void await_reconvergence(TimePoint healed_at);
  bool reconverged() const { return reconverged_at_.has_value(); }
  std::optional<Duration> neighbor_redetect_time() const;
  std::optional<Duration> reconvergence_time() const;

  /// Empty iff every safety check has held so far (deduplicated).
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }

  /// Checkpoint/restore (sim/snapshot.hpp): transfers, violations,
  /// telemetry baselines, liveness clocks, and the sweep timer's pending
  /// firing.  restore() must run on a freshly constructed, never-started
  /// monitor with the same config; do NOT call start() afterwards — the
  /// restored timer continues the saved cadence.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  struct Transfer {
    std::string label;
    Bytes sent;
    std::size_t delivered = 0;
    bool dead = false;
    bool corrupted = false;  // prefix already violated; don't re-report
  };

  void sweep();
  void check_fib_liveness();
  void check_osr_balance();
  void check_liveness_progress();
  void violate(std::string message);

  sim::Simulator& sim_;
  netlayer::Network& net_;
  MonitorConfig config_;
  sim::Timer timer_;

  std::vector<Transfer> transfers_;
  std::vector<std::string> violations_;
  std::set<std::string> seen_violations_;
  std::uint64_t checks_run_ = 0;

  std::uint64_t osr_down_base_ = 0;
  std::uint64_t osr_up_base_ = 0;

  std::optional<TimePoint> healed_at_;
  std::optional<TimePoint> neighbors_back_at_;
  std::optional<TimePoint> reconverged_at_;
  bool bound_violated_ = false;
};

}  // namespace sublayer::chaos
