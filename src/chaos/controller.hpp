// ChaosController: executes a FaultPlan against a live netlayer::Network.
//
// At each event's start time the controller applies the fault (link down,
// impairment override, or router crash); at start + duration it heals it
// (restores the link's baseline LinkConfig snapshot, or restarts the
// router).  Overlapping faults on the same link compose by reference
// count: the baseline is restored only when the last window touching that
// link closes, so one fault's heal cannot erase another's impairment.
//
// The controller is the only chaos component that mutates the system;
// InvariantMonitor only observes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "netlayer/router.hpp"
#include "sim/simulator.hpp"

namespace sublayer::chaos {

struct ChaosStats {
  std::uint64_t faults_applied = 0;
  std::uint64_t faults_healed = 0;
};

class ChaosController {
 public:
  ChaosController(sim::Simulator& sim, netlayer::Network& net);

  /// Sharded mode: apply/heal run as barrier tasks — single-threaded, at
  /// the exact fault time, with every worker parked — so mutating links
  /// and routers on any shard is race-free.  Router crashes additionally
  /// run under the owning shard's scope (the rebuilt control plane binds
  /// into that shard's registries).
  ChaosController(sim::ParallelSimulator& psim, netlayer::Network& net);

  /// Snapshots every link's baseline config and schedules the plan's
  /// apply/heal pairs.  May be called once per controller.
  void arm(const FaultPlan& plan);

  /// Number of fault windows currently open.
  int active_faults() const { return active_; }
  /// True once every scheduled fault window has closed.
  bool all_healed() const { return armed_ && active_ == 0 && healed_ == total_; }
  /// Sim time the last fault window closed (valid once all_healed()).
  TimePoint healed_at() const { return healed_at_; }

  const ChaosStats& stats() const { return stats_; }

  /// Observation hooks (for the monitor and for test logging).
  std::function<void(const FaultEvent&)> on_apply;
  std::function<void(const FaultEvent&)> on_heal;

  /// Checkpoint/restore (sim/snapshot.hpp).  save() captures the plan
  /// position — every event with its apply/heal fired-or-pending status
  /// and, in monolithic mode, the pending events' insertion seqs — plus
  /// refcounts, counters, and the baseline table.  restore() must run on a
  /// freshly constructed, never-armed controller over the restored
  /// network; it re-arms the pending apply/heal events and RE-DERIVES the
  /// baseline of every link with no open fault window from that link's
  /// live config (guarding that it matches the saved baseline — a mismatch
  /// means the restore graph was built differently from the saved one).
  /// Only links inside an open window trust the saved table, since their
  /// live config is the faulted one.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  void apply(const FaultEvent& e);
  void heal(const FaultEvent& e);
  void record_fault(const FaultEvent& e, bool apply_phase);
  void schedule_event(const FaultEvent& e, bool apply_phase, TimePoint when,
                      std::uint64_t restored_seq, bool restored);
  TimePoint now() const;

  sim::Simulator* sim_ = nullptr;           // monolithic mode
  sim::ParallelSimulator* psim_ = nullptr;  // sharded mode
  netlayer::Network& net_;
  std::vector<sim::LinkConfig> baselines_;
  /// Open fault windows per link; a link's baseline config (and its down
  /// flag) is restored only when this drops to zero.
  std::vector<int> link_refs_;
  std::vector<int> crash_refs_;  // per router, for overlapping crash windows
  bool armed_ = false;
  int active_ = 0;
  int total_ = 0;
  int healed_ = 0;
  std::uint64_t next_fault_id_ = 0;
  TimePoint healed_at_;
  ChaosStats stats_;
  /// Plan events with assigned fault ids, in plan order — the restore path
  /// re-derives apply/heal closures from these.
  std::vector<FaultEvent> plan_events_;
  /// Which phases have fired, indexed like plan_events_.
  std::vector<std::uint8_t> apply_done_;
  std::vector<std::uint8_t> heal_done_;
  /// Monolithic mode: the scheduled events, so save() can read their
  /// insertion seqs.  Unused (empty ids) in sharded mode, where barrier
  /// tasks are ordered by (time, submission order) and re-submission in
  /// plan order reproduces the original relative order.
  std::vector<sim::EventId> apply_ids_;
  std::vector<sim::EventId> heal_ids_;
};

}  // namespace sublayer::chaos
