#include "chaos/controller.hpp"

#include "common/logging.hpp"
#include "sim/parallel.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace sublayer::chaos {
namespace {
const Logger kLog("chaos");
}

ChaosController::ChaosController(sim::Simulator& sim, netlayer::Network& net)
    : sim_(&sim), net_(net) {}

ChaosController::ChaosController(sim::ParallelSimulator& psim,
                                 netlayer::Network& net)
    : psim_(&psim), net_(net) {}

TimePoint ChaosController::now() const {
  return sim_ != nullptr ? sim_->now() : psim_->now();
}

void ChaosController::arm(const FaultPlan& plan) {
  if (armed_) throw std::logic_error("ChaosController armed twice");
  armed_ = true;
  baselines_.clear();
  for (std::size_t i = 0; i < net_.link_count(); ++i) {
    // Network::connect configures both directions identically, so one
    // direction's config is the whole link's baseline.
    baselines_.push_back(net_.link(i).a_to_b().config());
  }
  link_refs_.assign(net_.link_count(), 0);
  crash_refs_.assign(net_.router_count(), 0);
  total_ = static_cast<int>(plan.events.size());
  plan_events_.reserve(plan.events.size());
  for (FaultEvent e : plan.events) {
    e.fault_id = ++next_fault_id_;
    plan_events_.push_back(e);
    apply_done_.push_back(0);
    heal_done_.push_back(0);
    const auto heal_at = TimePoint::from_ns(e.at.ns() + e.duration.ns());
    schedule_event(e, /*apply_phase=*/true, e.at, 0, /*restored=*/false);
    schedule_event(e, /*apply_phase=*/false, heal_at, 0, /*restored=*/false);
  }
}

void ChaosController::schedule_event(const FaultEvent& e, bool apply_phase,
                                     TimePoint when,
                                     std::uint64_t restored_seq,
                                     bool restored) {
  if (psim_ != nullptr) {
    // Barrier tasks: single-threaded, clocks aligned, workers parked.
    // Crash/restart rebuild telemetry-bound state, so those run under
    // the victim router's shard scope.
    const std::size_t scope = e.kind == FaultKind::kRouterCrash
                                  ? net_.shard_of(e.router)
                                  : sim::ParallelSimulator::kNoShard;
    if (apply_phase) {
      psim_->schedule_task(when, [this, e] { apply(e); }, scope);
    } else {
      psim_->schedule_task(when, [this, e] { heal(e); }, scope);
    }
    return;
  }
  sim::EventId id{};
  if (apply_phase) {
    id = restored ? sim_->schedule_restored_at(when, restored_seq,
                                               [this, e] { apply(e); })
                  : sim_->schedule_at(when, [this, e] { apply(e); });
  } else {
    id = restored ? sim_->schedule_restored_at(when, restored_seq,
                                               [this, e] { heal(e); })
                  : sim_->schedule_at(when, [this, e] { heal(e); });
  }
  auto& ids = apply_phase ? apply_ids_ : heal_ids_;
  const std::size_t index = static_cast<std::size_t>(e.fault_id - 1);
  if (ids.size() <= index) ids.resize(index + 1);
  ids[index] = id;
}

void ChaosController::record_fault(const FaultEvent& e, bool apply_phase) {
  // Records target the affected shard's telemetry explicitly — not the
  // thread-current set — because link faults run as unscoped barrier
  // tasks.  Pinning the target keeps the merged views identical at every
  // worker thread count (and matches the monolithic run, where the
  // process-wide tracer receives the same crossings).
  const std::size_t shard =
      psim_ != nullptr && e.kind == FaultKind::kRouterCrash
          ? net_.shard_of(e.router)
          : 0;
  const std::uint64_t target =
      e.kind == FaultKind::kRouterCrash ? e.router : e.link;
  const TimePoint t = now();
  telemetry::FlightRecorder* fr = psim_ != nullptr
                                      ? &psim_->shard_flight(shard)
                                      : telemetry::FlightRecorder::current();
  if (fr != nullptr) {
    fr->record(apply_phase ? telemetry::FlightType::kChaosApply
                           : telemetry::FlightType::kChaosHeal,
               to_string(e.kind), t, e.fault_id,
               static_cast<std::uint64_t>(e.kind), target);
  }
  telemetry::SpanTracer& tracer = psim_ != nullptr
                                      ? psim_->shard_spans(shard)
                                      : telemetry::SpanTracer::instance();
  // A fault window is a down/up crossing pair on the "chaos.fault" layer;
  // the byte field carries the fault id so spans pair up exactly.
  tracer.crossing(tracer.intern("chaos.fault"),
                  apply_phase ? telemetry::Dir::kDown : telemetry::Dir::kUp,
                  t, t, static_cast<std::size_t>(e.fault_id));
}

void ChaosController::apply(const FaultEvent& e) {
  ++active_;
  ++stats_.faults_applied;
  apply_done_.at(static_cast<std::size_t>(e.fault_id - 1)) = 1;
  kLog.info("apply #%llu %s link=%zu r=%u mag=%g",
            static_cast<unsigned long long>(e.fault_id), to_string(e.kind),
            e.link, e.router, e.magnitude);
  record_fault(e, /*apply_phase=*/true);
  switch (e.kind) {
    case FaultKind::kLinkDown:
      ++link_refs_.at(e.link);
      net_.link(e.link).set_down(true);
      break;
    case FaultKind::kCorruptionBurst:
      ++link_refs_.at(e.link);
      net_.link(e.link).a_to_b().set_corrupt_rate(e.magnitude);
      net_.link(e.link).b_to_a().set_corrupt_rate(e.magnitude);
      break;
    case FaultKind::kJitterStorm: {
      ++link_refs_.at(e.link);
      const auto jitter = Duration::nanos(
          static_cast<std::int64_t>(e.magnitude * 1e9));
      net_.link(e.link).a_to_b().set_jitter(jitter);
      net_.link(e.link).b_to_a().set_jitter(jitter);
      break;
    }
    case FaultKind::kQueueSqueeze: {
      ++link_refs_.at(e.link);
      const auto limit = static_cast<std::size_t>(e.magnitude);
      net_.link(e.link).a_to_b().set_queue_limit(limit);
      net_.link(e.link).b_to_a().set_queue_limit(limit);
      break;
    }
    case FaultKind::kRouterCrash:
      if (crash_refs_.at(e.router)++ == 0) net_.router(e.router).crash();
      break;
  }
  if (on_apply) on_apply(e);
}

void ChaosController::heal(const FaultEvent& e) {
  --active_;
  ++healed_;
  ++stats_.faults_healed;
  heal_done_.at(static_cast<std::size_t>(e.fault_id - 1)) = 1;
  kLog.info("heal #%llu %s link=%zu r=%u",
            static_cast<unsigned long long>(e.fault_id), to_string(e.kind),
            e.link, e.router);
  record_fault(e, /*apply_phase=*/false);
  switch (e.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kCorruptionBurst:
    case FaultKind::kJitterStorm:
    case FaultKind::kQueueSqueeze:
      // Overlapping windows on one link heal together: the baseline (and
      // the up state) comes back only when the last window closes.
      if (--link_refs_.at(e.link) == 0) {
        net_.link(e.link).set_config(baselines_.at(e.link));
        net_.link(e.link).set_down(false);
      }
      break;
    case FaultKind::kRouterCrash:
      if (--crash_refs_.at(e.router) == 0) net_.router(e.router).restart();
      break;
  }
  if (active_ == 0 && healed_ == total_) healed_at_ = now();
  if (on_heal) on_heal(e);
}

void ChaosController::save(sim::SnapshotWriter& w) const {
  w.begin_section("chaos.controller");
  w.b(armed_);
  w.u64(next_fault_id_);
  w.i64(active_);
  w.i64(total_);
  w.i64(healed_);
  w.time(healed_at_);
  w.u64(stats_.faults_applied);
  w.u64(stats_.faults_healed);
  w.u64(link_refs_.size());
  for (const int refs : link_refs_) w.i64(refs);
  w.u64(crash_refs_.size());
  for (const int refs : crash_refs_) w.i64(refs);
  w.u64(baselines_.size());
  for (const sim::LinkConfig& c : baselines_) sim::save_link_config(w, c);
  w.u64(plan_events_.size());
  for (std::size_t i = 0; i < plan_events_.size(); ++i) {
    const FaultEvent& e = plan_events_[i];
    w.time(e.at);
    w.dur(e.duration);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u64(e.link);
    w.u32(e.router);
    w.f64(e.magnitude);
    w.u64(e.fault_id);
    w.b(apply_done_[i] != 0);
    w.b(heal_done_[i] != 0);
    // Monolithic mode: pending phases carry the insertion seq the fresh
    // controller must re-arm under.  Sharded mode writes 0 — barrier
    // tasks order by (time, submission order), which re-submission in
    // plan order reproduces.
    const bool mono = sim_ != nullptr;
    w.u64(mono && apply_done_[i] == 0 ? sim_->seq_of(apply_ids_[i]) : 0);
    w.u64(mono && heal_done_[i] == 0 ? sim_->seq_of(heal_ids_[i]) : 0);
  }
  w.end_section();
}

void ChaosController::restore(sim::SnapshotReader& r) {
  if (armed_) {
    throw std::logic_error("ChaosController::restore on an armed controller");
  }
  r.begin_section("chaos.controller");
  armed_ = r.b();
  next_fault_id_ = r.u64();
  active_ = static_cast<int>(r.i64());
  total_ = static_cast<int>(r.i64());
  healed_ = static_cast<int>(r.i64());
  healed_at_ = r.time();
  stats_.faults_applied = r.u64();
  stats_.faults_healed = r.u64();
  const std::uint64_t nlinks = r.u64();
  if (nlinks != net_.link_count()) {
    throw sim::SnapshotError(
        "chaos restore: saved link count " + std::to_string(nlinks) +
        " != restored network's " + std::to_string(net_.link_count()));
  }
  link_refs_.clear();
  for (std::uint64_t i = 0; i < nlinks; ++i) {
    link_refs_.push_back(static_cast<int>(r.i64()));
  }
  const std::uint64_t nrouters = r.u64();
  if (nrouters != net_.router_count()) {
    throw sim::SnapshotError(
        "chaos restore: saved router count " + std::to_string(nrouters) +
        " != restored network's " + std::to_string(net_.router_count()));
  }
  crash_refs_.clear();
  for (std::uint64_t i = 0; i < nrouters; ++i) {
    crash_refs_.push_back(static_cast<int>(r.i64()));
  }
  const std::uint64_t nbase = r.u64();
  if (nbase != nlinks) {
    throw sim::SnapshotError("chaos restore: baseline table size mismatch");
  }
  baselines_.clear();
  for (std::uint64_t i = 0; i < nbase; ++i) {
    const sim::LinkConfig saved = sim::restore_link_config(r);
    const sim::LinkConfig live = net_.link(i).a_to_b().config();
    if (link_refs_[i] == 0) {
      // No open fault window: the restored link's live config IS the
      // baseline.  Re-derive from the live object rather than trusting
      // the pre-snapshot table, and guard that both agree — a mismatch
      // means the restore graph was configured differently from the run
      // that took the snapshot.
      if (!(live == saved)) {
        throw sim::SnapshotError(
            "chaos restore: link " + std::to_string(i) +
            " baseline diverges from the restored link's config "
            "(restore graph mismatch)");
      }
      baselines_.push_back(live);
    } else {
      // Open window: the live config is the faulted one; only the saved
      // table knows what heal must put back.
      baselines_.push_back(saved);
    }
  }
  const std::uint64_t nevents = r.u64();
  plan_events_.clear();
  apply_done_.clear();
  heal_done_.clear();
  apply_ids_.clear();
  heal_ids_.clear();
  for (std::uint64_t i = 0; i < nevents; ++i) {
    FaultEvent e;
    e.at = r.time();
    e.duration = r.dur();
    e.kind = static_cast<FaultKind>(r.u8());
    e.link = r.u64();
    e.router = static_cast<netlayer::RouterId>(r.u32());
    e.magnitude = r.f64();
    e.fault_id = r.u64();
    const bool applied = r.b();
    const bool healed = r.b();
    const std::uint64_t apply_seq = r.u64();
    const std::uint64_t heal_seq = r.u64();
    plan_events_.push_back(e);
    apply_done_.push_back(applied ? 1 : 0);
    heal_done_.push_back(healed ? 1 : 0);
    // Re-arm the un-fired phases under their original slots; relative
    // submission order (apply before heal, events in plan order) matches
    // arm()'s, so the sharded task order is reproduced too.
    if (!applied) {
      schedule_event(e, /*apply_phase=*/true, e.at, apply_seq,
                     /*restored=*/true);
    }
    if (!healed) {
      const auto heal_at = TimePoint::from_ns(e.at.ns() + e.duration.ns());
      schedule_event(e, /*apply_phase=*/false, heal_at, heal_seq,
                     /*restored=*/true);
    }
  }
  r.end_section();
}

}  // namespace sublayer::chaos
