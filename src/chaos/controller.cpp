#include "chaos/controller.hpp"

#include "common/logging.hpp"

namespace sublayer::chaos {
namespace {
const Logger kLog("chaos");
}

ChaosController::ChaosController(sim::Simulator& sim, netlayer::Network& net)
    : sim_(&sim), net_(net) {}

ChaosController::ChaosController(sim::ParallelSimulator& psim,
                                 netlayer::Network& net)
    : psim_(&psim), net_(net) {}

TimePoint ChaosController::now() const {
  return sim_ != nullptr ? sim_->now() : psim_->now();
}

void ChaosController::arm(const FaultPlan& plan) {
  if (armed_) throw std::logic_error("ChaosController armed twice");
  armed_ = true;
  baselines_.clear();
  for (std::size_t i = 0; i < net_.link_count(); ++i) {
    // Network::connect configures both directions identically, so one
    // direction's config is the whole link's baseline.
    baselines_.push_back(net_.link(i).a_to_b().config());
  }
  link_refs_.assign(net_.link_count(), 0);
  crash_refs_.assign(net_.router_count(), 0);
  total_ = static_cast<int>(plan.events.size());
  for (const FaultEvent& e : plan.events) {
    const auto heal_at = TimePoint::from_ns(e.at.ns() + e.duration.ns());
    if (psim_ != nullptr) {
      // Barrier tasks: single-threaded, clocks aligned, workers parked.
      // Crash/restart rebuild telemetry-bound state, so those run under
      // the victim router's shard scope.
      const std::size_t scope = e.kind == FaultKind::kRouterCrash
                                    ? net_.shard_of(e.router)
                                    : sim::ParallelSimulator::kNoShard;
      psim_->schedule_task(e.at, [this, e] { apply(e); }, scope);
      psim_->schedule_task(heal_at, [this, e] { heal(e); }, scope);
    } else {
      sim_->schedule_at(e.at, [this, e] { apply(e); });
      sim_->schedule_at(heal_at, [this, e] { heal(e); });
    }
  }
}

void ChaosController::apply(const FaultEvent& e) {
  ++active_;
  ++stats_.faults_applied;
  kLog.info("apply %s link=%zu r=%u mag=%g", to_string(e.kind), e.link,
            e.router, e.magnitude);
  switch (e.kind) {
    case FaultKind::kLinkDown:
      ++link_refs_.at(e.link);
      net_.link(e.link).set_down(true);
      break;
    case FaultKind::kCorruptionBurst:
      ++link_refs_.at(e.link);
      net_.link(e.link).a_to_b().set_corrupt_rate(e.magnitude);
      net_.link(e.link).b_to_a().set_corrupt_rate(e.magnitude);
      break;
    case FaultKind::kJitterStorm: {
      ++link_refs_.at(e.link);
      const auto jitter = Duration::nanos(
          static_cast<std::int64_t>(e.magnitude * 1e9));
      net_.link(e.link).a_to_b().set_jitter(jitter);
      net_.link(e.link).b_to_a().set_jitter(jitter);
      break;
    }
    case FaultKind::kQueueSqueeze: {
      ++link_refs_.at(e.link);
      const auto limit = static_cast<std::size_t>(e.magnitude);
      net_.link(e.link).a_to_b().set_queue_limit(limit);
      net_.link(e.link).b_to_a().set_queue_limit(limit);
      break;
    }
    case FaultKind::kRouterCrash:
      if (crash_refs_.at(e.router)++ == 0) net_.router(e.router).crash();
      break;
  }
  if (on_apply) on_apply(e);
}

void ChaosController::heal(const FaultEvent& e) {
  --active_;
  ++healed_;
  ++stats_.faults_healed;
  kLog.info("heal %s link=%zu r=%u", to_string(e.kind), e.link, e.router);
  switch (e.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kCorruptionBurst:
    case FaultKind::kJitterStorm:
    case FaultKind::kQueueSqueeze:
      // Overlapping windows on one link heal together: the baseline (and
      // the up state) comes back only when the last window closes.
      if (--link_refs_.at(e.link) == 0) {
        net_.link(e.link).set_config(baselines_.at(e.link));
        net_.link(e.link).set_down(false);
      }
      break;
    case FaultKind::kRouterCrash:
      if (--crash_refs_.at(e.router) == 0) net_.router(e.router).restart();
      break;
  }
  if (active_ == 0 && healed_ == total_) healed_at_ = now();
  if (on_heal) on_heal(e);
}

}  // namespace sublayer::chaos
