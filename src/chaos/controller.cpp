#include "chaos/controller.hpp"

#include "common/logging.hpp"
#include "sim/parallel.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace sublayer::chaos {
namespace {
const Logger kLog("chaos");
}

ChaosController::ChaosController(sim::Simulator& sim, netlayer::Network& net)
    : sim_(&sim), net_(net) {}

ChaosController::ChaosController(sim::ParallelSimulator& psim,
                                 netlayer::Network& net)
    : psim_(&psim), net_(net) {}

TimePoint ChaosController::now() const {
  return sim_ != nullptr ? sim_->now() : psim_->now();
}

void ChaosController::arm(const FaultPlan& plan) {
  if (armed_) throw std::logic_error("ChaosController armed twice");
  armed_ = true;
  baselines_.clear();
  for (std::size_t i = 0; i < net_.link_count(); ++i) {
    // Network::connect configures both directions identically, so one
    // direction's config is the whole link's baseline.
    baselines_.push_back(net_.link(i).a_to_b().config());
  }
  link_refs_.assign(net_.link_count(), 0);
  crash_refs_.assign(net_.router_count(), 0);
  total_ = static_cast<int>(plan.events.size());
  for (FaultEvent e : plan.events) {
    e.fault_id = ++next_fault_id_;
    const auto heal_at = TimePoint::from_ns(e.at.ns() + e.duration.ns());
    if (psim_ != nullptr) {
      // Barrier tasks: single-threaded, clocks aligned, workers parked.
      // Crash/restart rebuild telemetry-bound state, so those run under
      // the victim router's shard scope.
      const std::size_t scope = e.kind == FaultKind::kRouterCrash
                                    ? net_.shard_of(e.router)
                                    : sim::ParallelSimulator::kNoShard;
      psim_->schedule_task(e.at, [this, e] { apply(e); }, scope);
      psim_->schedule_task(heal_at, [this, e] { heal(e); }, scope);
    } else {
      sim_->schedule_at(e.at, [this, e] { apply(e); });
      sim_->schedule_at(heal_at, [this, e] { heal(e); });
    }
  }
}

void ChaosController::record_fault(const FaultEvent& e, bool apply_phase) {
  // Records target the affected shard's telemetry explicitly — not the
  // thread-current set — because link faults run as unscoped barrier
  // tasks.  Pinning the target keeps the merged views identical at every
  // worker thread count (and matches the monolithic run, where the
  // process-wide tracer receives the same crossings).
  const std::size_t shard =
      psim_ != nullptr && e.kind == FaultKind::kRouterCrash
          ? net_.shard_of(e.router)
          : 0;
  const std::uint64_t target =
      e.kind == FaultKind::kRouterCrash ? e.router : e.link;
  const TimePoint t = now();
  telemetry::FlightRecorder* fr = psim_ != nullptr
                                      ? &psim_->shard_flight(shard)
                                      : telemetry::FlightRecorder::current();
  if (fr != nullptr) {
    fr->record(apply_phase ? telemetry::FlightType::kChaosApply
                           : telemetry::FlightType::kChaosHeal,
               to_string(e.kind), t, e.fault_id,
               static_cast<std::uint64_t>(e.kind), target);
  }
  telemetry::SpanTracer& tracer = psim_ != nullptr
                                      ? psim_->shard_spans(shard)
                                      : telemetry::SpanTracer::instance();
  // A fault window is a down/up crossing pair on the "chaos.fault" layer;
  // the byte field carries the fault id so spans pair up exactly.
  tracer.crossing(tracer.intern("chaos.fault"),
                  apply_phase ? telemetry::Dir::kDown : telemetry::Dir::kUp,
                  t, t, static_cast<std::size_t>(e.fault_id));
}

void ChaosController::apply(const FaultEvent& e) {
  ++active_;
  ++stats_.faults_applied;
  kLog.info("apply #%llu %s link=%zu r=%u mag=%g",
            static_cast<unsigned long long>(e.fault_id), to_string(e.kind),
            e.link, e.router, e.magnitude);
  record_fault(e, /*apply_phase=*/true);
  switch (e.kind) {
    case FaultKind::kLinkDown:
      ++link_refs_.at(e.link);
      net_.link(e.link).set_down(true);
      break;
    case FaultKind::kCorruptionBurst:
      ++link_refs_.at(e.link);
      net_.link(e.link).a_to_b().set_corrupt_rate(e.magnitude);
      net_.link(e.link).b_to_a().set_corrupt_rate(e.magnitude);
      break;
    case FaultKind::kJitterStorm: {
      ++link_refs_.at(e.link);
      const auto jitter = Duration::nanos(
          static_cast<std::int64_t>(e.magnitude * 1e9));
      net_.link(e.link).a_to_b().set_jitter(jitter);
      net_.link(e.link).b_to_a().set_jitter(jitter);
      break;
    }
    case FaultKind::kQueueSqueeze: {
      ++link_refs_.at(e.link);
      const auto limit = static_cast<std::size_t>(e.magnitude);
      net_.link(e.link).a_to_b().set_queue_limit(limit);
      net_.link(e.link).b_to_a().set_queue_limit(limit);
      break;
    }
    case FaultKind::kRouterCrash:
      if (crash_refs_.at(e.router)++ == 0) net_.router(e.router).crash();
      break;
  }
  if (on_apply) on_apply(e);
}

void ChaosController::heal(const FaultEvent& e) {
  --active_;
  ++healed_;
  ++stats_.faults_healed;
  kLog.info("heal #%llu %s link=%zu r=%u",
            static_cast<unsigned long long>(e.fault_id), to_string(e.kind),
            e.link, e.router);
  record_fault(e, /*apply_phase=*/false);
  switch (e.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kCorruptionBurst:
    case FaultKind::kJitterStorm:
    case FaultKind::kQueueSqueeze:
      // Overlapping windows on one link heal together: the baseline (and
      // the up state) comes back only when the last window closes.
      if (--link_refs_.at(e.link) == 0) {
        net_.link(e.link).set_config(baselines_.at(e.link));
        net_.link(e.link).set_down(false);
      }
      break;
    case FaultKind::kRouterCrash:
      if (--crash_refs_.at(e.router) == 0) net_.router(e.router).restart();
      break;
  }
  if (active_ == 0 && healed_ == total_) healed_at_ = now();
  if (on_heal) on_heal(e);
}

}  // namespace sublayer::chaos
