#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace sublayer::chaos {
namespace {

Duration random_window(Rng& rng, const ScriptParams& p) {
  const std::int64_t lo = p.min_fault.ns();
  const std::int64_t hi = p.max_fault.ns();
  return Duration::nanos(rng.next_in(lo, hi));
}

TimePoint random_start(Rng& rng, const ScriptParams& p, Duration window) {
  // Keep the whole window inside the active period, so all_healed_by()
  // leaves the post-chaos phase genuinely fault-free.
  const std::int64_t span = p.active_window.ns() - window.ns();
  const std::int64_t offset = span > 0 ? rng.next_in(0, span) : 0;
  return TimePoint::from_ns(p.start.ns() + offset);
}

FaultEvent link_event(Rng& rng, const ScriptParams& p, FaultKind kind,
                      double magnitude) {
  FaultEvent e;
  e.duration = random_window(rng, p);
  e.at = random_start(rng, p, e.duration);
  e.kind = kind;
  e.link = rng.next_below(p.link_count);
  e.magnitude = magnitude;
  return e;
}

void gen_link_flap(Rng& rng, const ScriptParams& p,
                   std::vector<FaultEvent>& out) {
  const int flaps = static_cast<int>(rng.next_in(3, 5));
  for (int i = 0; i < flaps; ++i) {
    out.push_back(link_event(rng, p, FaultKind::kLinkDown, 0));
  }
}

void gen_partition(Rng& rng, const ScriptParams& p,
                   std::vector<FaultEvent>& out) {
  // One shared window over a random cut of ~half the links: with several
  // links down at once some destination is usually unreachable, not just
  // rerouted — the strongest test of post-heal reconvergence.
  const Duration window = random_window(rng, p);
  const TimePoint at = random_start(rng, p, window);
  std::vector<std::size_t> links(p.link_count);
  for (std::size_t i = 0; i < links.size(); ++i) links[i] = i;
  std::shuffle(links.begin(), links.end(), rng);
  const std::size_t cut = std::max<std::size_t>(1, p.link_count / 2);
  for (std::size_t i = 0; i < cut; ++i) {
    FaultEvent e;
    e.at = at;
    e.duration = window;
    e.kind = FaultKind::kLinkDown;
    e.link = links[i];
    out.push_back(e);
  }
}

void gen_corruption(Rng& rng, const ScriptParams& p,
                    std::vector<FaultEvent>& out) {
  const int bursts = static_cast<int>(rng.next_in(2, 4));
  for (int i = 0; i < bursts; ++i) {
    out.push_back(link_event(rng, p, FaultKind::kCorruptionBurst,
                             0.05 + 0.20 * rng.next_double()));
  }
}

void gen_jitter(Rng& rng, const ScriptParams& p,
                std::vector<FaultEvent>& out) {
  const int storms = static_cast<int>(rng.next_in(2, 4));
  for (int i = 0; i < storms; ++i) {
    // 5-40 ms of jitter: enough to reorder far beyond an RTT.
    out.push_back(link_event(rng, p, FaultKind::kJitterStorm,
                             0.005 + 0.035 * rng.next_double()));
  }
}

void gen_squeeze(Rng& rng, const ScriptParams& p,
                 std::vector<FaultEvent>& out) {
  const int squeezes = static_cast<int>(rng.next_in(2, 4));
  for (int i = 0; i < squeezes; ++i) {
    out.push_back(link_event(rng, p, FaultKind::kQueueSqueeze,
                             static_cast<double>(rng.next_in(1, 4))));
  }
}

void gen_crash(Rng& rng, const ScriptParams& p,
               std::vector<FaultEvent>& out) {
  const int crashes = static_cast<int>(rng.next_in(1, 2));
  for (int i = 0; i < crashes; ++i) {
    FaultEvent e;
    e.duration = random_window(rng, p);
    e.at = random_start(rng, p, e.duration);
    e.kind = FaultKind::kRouterCrash;
    // Spare router 0: the soak harness anchors its traffic sources there,
    // and a crashed source would conflate "transport survived the
    // network's faults" with "the application itself was killed".
    e.router = static_cast<netlayer::RouterId>(
        rng.next_in(1, static_cast<std::int64_t>(p.router_count) - 1));
    out.push_back(e);
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kCorruptionBurst:
      return "corruption-burst";
    case FaultKind::kJitterStorm:
      return "jitter-storm";
    case FaultKind::kQueueSqueeze:
      return "queue-squeeze";
    case FaultKind::kRouterCrash:
      return "router-crash";
  }
  return "?";
}

TimePoint FaultPlan::all_healed_by() const {
  std::int64_t worst = 0;
  for (const auto& e : events) {
    worst = std::max(worst, e.at.ns() + e.duration.ns());
  }
  return TimePoint::from_ns(worst);
}

FaultPlan make_plan(const std::string& script, std::uint64_t seed,
                    const ScriptParams& params) {
  if (params.link_count == 0 || params.router_count < 2) {
    throw std::invalid_argument("chaos scripts need links and >=2 routers");
  }
  // Mix the script name into the seed so "link-flap"/7 and "partition"/7
  // draw different randomness.
  std::uint64_t mixed = seed;
  for (const char c : script) mixed = mixed * 1099511628211ull + c;
  Rng rng(mixed);

  FaultPlan plan;
  plan.script = script;
  plan.seed = seed;
  if (script == "link-flap") {
    gen_link_flap(rng, params, plan.events);
  } else if (script == "partition") {
    gen_partition(rng, params, plan.events);
  } else if (script == "corruption-burst") {
    gen_corruption(rng, params, plan.events);
  } else if (script == "jitter-storm") {
    gen_jitter(rng, params, plan.events);
  } else if (script == "queue-squeeze") {
    gen_squeeze(rng, params, plan.events);
  } else if (script == "router-crash") {
    gen_crash(rng, params, plan.events);
  } else if (script == "mixed-mayhem") {
    gen_link_flap(rng, params, plan.events);
    gen_corruption(rng, params, plan.events);
    gen_jitter(rng, params, plan.events);
    gen_squeeze(rng, params, plan.events);
    gen_crash(rng, params, plan.events);
  } else {
    throw std::invalid_argument("unknown chaos script: " + script);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at.ns() < b.at.ns();
            });
  return plan;
}

const std::vector<std::string>& all_scripts() {
  static const std::vector<std::string> kScripts = {
      "link-flap",     "partition",    "corruption-burst", "jitter-storm",
      "queue-squeeze", "router-crash", "mixed-mayhem",
  };
  return kScripts;
}

}  // namespace sublayer::chaos
