#include "chaos/invariant_monitor.hpp"

#include <algorithm>

#include "sim/snapshot.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace sublayer::chaos {

InvariantMonitor::InvariantMonitor(sim::Simulator& sim, netlayer::Network& net,
                                   MonitorConfig config)
    : sim_(sim), net_(net), config_(config), timer_(sim, [this] { sweep(); }) {}

void InvariantMonitor::start() {
  // The span tracer is a process singleton: baseline its totals so this
  // run's balance check is not polluted by earlier tests in the binary.
  const auto& tracer = telemetry::SpanTracer::instance();
  osr_down_base_ = tracer.crossing_bytes("transport.osr", telemetry::Dir::kDown);
  osr_up_base_ = tracer.crossing_bytes("transport.osr", telemetry::Dir::kUp);
  timer_.restart(config_.check_interval);
}

int InvariantMonitor::register_transfer(std::string label) {
  transfers_.push_back(Transfer{std::move(label), {}, 0, false, false});
  return static_cast<int>(transfers_.size()) - 1;
}

void InvariantMonitor::record_sent(int transfer, ByteView data) {
  auto& t = transfers_.at(static_cast<std::size_t>(transfer));
  if (t.dead) {
    violate("resurrection: transfer '" + t.label + "' sent data after death");
    return;
  }
  t.sent.insert(t.sent.end(), data.begin(), data.end());
}

void InvariantMonitor::record_delivered(int transfer, ByteView data) {
  auto& t = transfers_.at(static_cast<std::size_t>(transfer));
  if (t.dead) {
    violate("resurrection: transfer '" + t.label +
            "' delivered data after death");
    return;
  }
  if (t.corrupted) return;
  if (t.delivered + data.size() > t.sent.size()) {
    t.corrupted = true;
    violate("prefix: transfer '" + t.label + "' delivered beyond sent (" +
            std::to_string(t.delivered + data.size()) + " > " +
            std::to_string(t.sent.size()) + ")");
    return;
  }
  if (!std::equal(data.begin(), data.end(),
                  t.sent.begin() + static_cast<std::ptrdiff_t>(t.delivered))) {
    t.corrupted = true;
    violate("prefix: transfer '" + t.label + "' delivered bytes diverge from "
            "sent stream at offset " + std::to_string(t.delivered));
    return;
  }
  t.delivered += data.size();
}

void InvariantMonitor::record_dead(int transfer) {
  transfers_.at(static_cast<std::size_t>(transfer)).dead = true;
}

std::size_t InvariantMonitor::delivered_bytes(int transfer) const {
  return transfers_.at(static_cast<std::size_t>(transfer)).delivered;
}

void InvariantMonitor::await_reconvergence(TimePoint healed_at) {
  healed_at_ = healed_at;
  neighbors_back_at_.reset();
  reconverged_at_.reset();
  bound_violated_ = false;
}

std::optional<Duration> InvariantMonitor::neighbor_redetect_time() const {
  if (!healed_at_ || !neighbors_back_at_) return std::nullopt;
  return Duration::nanos(neighbors_back_at_->ns() - healed_at_->ns());
}

std::optional<Duration> InvariantMonitor::reconvergence_time() const {
  if (!healed_at_ || !reconverged_at_) return std::nullopt;
  return Duration::nanos(reconverged_at_->ns() - healed_at_->ns());
}

void InvariantMonitor::sweep() {
  ++checks_run_;
  check_fib_liveness();
  check_osr_balance();
  check_liveness_progress();
  timer_.restart(config_.check_interval);
}

void InvariantMonitor::check_fib_liveness() {
  for (std::size_t id = 0; id < net_.router_count(); ++id) {
    const auto& router = net_.router(static_cast<netlayer::RouterId>(id));
    if (!router.is_up()) {
      if (!router.fib().entries().empty()) {
        violate("state-loss: crashed r" + std::to_string(id) +
                " still holds FIB entries");
      }
      continue;
    }
    for (const auto& [prefix, route] : router.fib().entries()) {
      if (!router.neighbors().neighbor_on(route.interface)) {
        violate("fib-liveness: r" + std::to_string(id) +
                " routes via interface " + std::to_string(route.interface) +
                " with no live neighbor");
      }
    }
  }
}

void InvariantMonitor::check_osr_balance() {
  const auto& tracer = telemetry::SpanTracer::instance();
  const auto down =
      tracer.crossing_bytes("transport.osr", telemetry::Dir::kDown) -
      osr_down_base_;
  const auto up = tracer.crossing_bytes("transport.osr", telemetry::Dir::kUp) -
                  osr_up_base_;
  if (up > down) {
    violate("osr-balance: " + std::to_string(up) +
            " bytes crossed up the ordered-stream boundary vs " +
            std::to_string(down) + " down");
  }
}

void InvariantMonitor::check_liveness_progress() {
  if (!healed_at_) return;

  if (!neighbors_back_at_) {
    bool all_back = true;
    for (std::size_t i = 0; i < net_.link_count() && all_back; ++i) {
      if (net_.link(i).is_down()) continue;  // deliberately failed for good
      const auto& ends = net_.link_ends(i);
      const auto& ra = net_.router(ends.a);
      const auto& rb = net_.router(ends.b);
      if (!ra.is_up() || !rb.is_up()) continue;
      const auto na = ra.neighbors().neighbor_on(ends.iface_a);
      const auto nb = rb.neighbors().neighbor_on(ends.iface_b);
      all_back = na && na->id == ends.b && nb && nb->id == ends.a;
    }
    if (all_back) neighbors_back_at_ = sim_.now();
  }

  if (!reconverged_at_ && net_.fully_converged()) {
    reconverged_at_ = sim_.now();
  }

  if (!reconverged_at_ && !bound_violated_ &&
      sim_.now().ns() - healed_at_->ns() > config_.reconvergence_bound.ns()) {
    bound_violated_ = true;
    violate("liveness: not reconverged within bound after heal");
  }
}

void InvariantMonitor::violate(std::string message) {
  if (!seen_violations_.insert(message).second) return;
  if (auto* fr = telemetry::FlightRecorder::current()) {
    fr->record(telemetry::FlightType::kViolation, message, sim_.now(),
               violations_.size());
  }
  // The black-box moment: the first distinct violation flushes every live
  // flight recorder to disk (a no-op unless a dump directory is set), so
  // the events leading up to the failure survive the process.
  const bool first = violations_.empty();
  violations_.push_back(std::move(message));
  if (first) telemetry::dump_all_flight_recorders("violation");
}

void InvariantMonitor::save(sim::SnapshotWriter& w) const {
  w.begin_section("chaos.monitor");
  w.u64(checks_run_);
  w.u64(osr_down_base_);
  w.u64(osr_up_base_);
  w.b(healed_at_.has_value());
  w.time(healed_at_.value_or(TimePoint{}));
  w.b(neighbors_back_at_.has_value());
  w.time(neighbors_back_at_.value_or(TimePoint{}));
  w.b(reconverged_at_.has_value());
  w.time(reconverged_at_.value_or(TimePoint{}));
  w.b(bound_violated_);
  w.u64(transfers_.size());
  for (const Transfer& t : transfers_) {
    w.str(t.label);
    w.blob(t.sent);
    w.u64(t.delivered);
    w.b(t.dead);
    w.b(t.corrupted);
  }
  w.u64(violations_.size());
  for (const std::string& v : violations_) w.str(v);
  timer_.save(w);
  w.end_section();
}

void InvariantMonitor::restore(sim::SnapshotReader& r) {
  r.begin_section("chaos.monitor");
  checks_run_ = r.u64();
  osr_down_base_ = r.u64();
  osr_up_base_ = r.u64();
  const bool has_healed = r.b();
  const TimePoint healed = r.time();
  healed_at_ = has_healed ? std::optional<TimePoint>(healed) : std::nullopt;
  const bool has_neighbors = r.b();
  const TimePoint neighbors = r.time();
  neighbors_back_at_ =
      has_neighbors ? std::optional<TimePoint>(neighbors) : std::nullopt;
  const bool has_reconverged = r.b();
  const TimePoint reconverged = r.time();
  reconverged_at_ =
      has_reconverged ? std::optional<TimePoint>(reconverged) : std::nullopt;
  bound_violated_ = r.b();
  const std::uint64_t ntransfers = r.u64();
  transfers_.clear();
  for (std::uint64_t i = 0; i < ntransfers; ++i) {
    Transfer t;
    t.label = r.str();
    t.sent = r.blob();
    t.delivered = r.u64();
    t.dead = r.b();
    t.corrupted = r.b();
    transfers_.push_back(std::move(t));
  }
  const std::uint64_t nviolations = r.u64();
  violations_.clear();
  seen_violations_.clear();
  for (std::uint64_t i = 0; i < nviolations; ++i) {
    violations_.push_back(r.str());
    seen_violations_.insert(violations_.back());
  }
  timer_.restore(r);
  r.end_section();
}

}  // namespace sublayer::chaos
