// Fault plans: deterministic, seeded scripts of fault events against a
// netlayer::Network.
//
// A FaultPlan is pure data — a time-sorted list of (when, how long, what,
// where) — produced by a named script generator from a seed.  The same
// (script, seed, topology) triple always yields the same plan, so a chaos
// failure reproduces from two integers.  ChaosController executes plans;
// InvariantMonitor judges the system's behaviour while they run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "netlayer/ip.hpp"

namespace sublayer::chaos {

enum class FaultKind : std::uint8_t {
  /// Link hard-down for the window (both directions), then restored.
  kLinkDown = 0,
  /// corrupt_rate raised to `magnitude` for the window.
  kCorruptionBurst = 1,
  /// jitter raised to `magnitude` seconds for the window (reorders frames).
  kJitterStorm = 2,
  /// queue_limit squeezed to `magnitude` frames for the window (tail drop).
  kQueueSqueeze = 3,
  /// Router crashes with full control-plane state loss, restarts at the
  /// window's end.
  kRouterCrash = 4,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  TimePoint at;
  Duration duration = Duration::millis(500);
  FaultKind kind = FaultKind::kLinkDown;
  /// Target link index (link faults) — ignored for kRouterCrash.
  std::size_t link = 0;
  /// Target router (kRouterCrash only).
  netlayer::RouterId router = 0;
  /// Kind-specific intensity (rate, seconds, or frame count — see kinds).
  double magnitude = 0;
  /// Monotonic id assigned by ChaosController::arm() in plan order
  /// (1-based; 0 = not yet armed).  The same id tags the fault's apply and
  /// heal in the log, the flight recorder, and the span stream, so one
  /// fault's whole story can be pulled from any of them.
  std::uint64_t fault_id = 0;
};

struct FaultPlan {
  std::string script;
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;  // sorted by `at`

  /// Instant after which every fault window has closed.
  TimePoint all_healed_by() const;
};

/// Topology facts and timing bounds a script generator needs.
struct ScriptParams {
  std::size_t link_count = 0;
  std::size_t router_count = 0;
  /// Faults are scheduled in [start, start + active_window].
  TimePoint start;
  Duration active_window = Duration::seconds(6.0);
  /// Shortest / longest single fault window.
  Duration min_fault = Duration::millis(300);
  Duration max_fault = Duration::millis(1200);
};

/// Script generators, keyed by name:
///   "link-flap"        repeated short kLinkDown windows on random links
///   "partition"        simultaneous kLinkDown on several links (cut set)
///   "corruption-burst" kCorruptionBurst windows on random links
///   "jitter-storm"     kJitterStorm windows on random links
///   "queue-squeeze"    kQueueSqueeze windows on random links
///   "router-crash"     kRouterCrash windows on random non-zero routers
///   "mixed-mayhem"     an interleaving drawn from all of the above
FaultPlan make_plan(const std::string& script, std::uint64_t seed,
                    const ScriptParams& params);

/// Every script name make_plan accepts, in a stable order.
const std::vector<std::string>& all_scripts();

}  // namespace sublayer::chaos
