// The compile-time fused data plane (the answer to the paper's §3.1
// "performance will be poor?" objection): the three sub-ARQ sublayers are
// composed as template parameters —
//
//   Pipeline<Crc32Detector, StuffingFraming, NrzCode>
//
// — so every boundary crossing inside the plane inlines into straight-line
// code.  The only dispatch left is the ONE virtual hop through
// DataPlaneIface at the top of the plane; below it, the line-code kernels
// (phy/linecode_static.hpp), the stuffing free functions, and the
// devirtualized CRC stages (errordetect/detector_static.hpp) fuse into a
// single instantiation per stack combination.
//
// Contract: observably IDENTICAL to the dynamic DataPlane.  Wires are
// byte-for-byte equal, taps fire at the same points with the same images,
// span crossings use the same interned ids (same intern order as the
// DataPlane constructor) and byte sizes, and failure counters bump through
// the shared count_up_failure helper.  The fused equivalence suite
// (tests/datalink/fused_equivalence_test.cpp) pins all of this, and the
// replay + snapshot suites pin that StackConfig::fused is trace-invisible.
//
// The per-frame down()/up() run the arena fast path (the single-frame form
// of the batched stages): same observables as the dynamic per-frame path,
// but steady-state allocation-free — this is where most of the measured
// fused speedup comes from, on top of the inlined stage calls (E19).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "datalink/stack.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::datalink::fused {

template <class Detector, class Framing, class Code>
class Pipeline final : public DataPlaneIface {
 public:
  explicit Pipeline(StuffingRule stuffing) : framing_(std::move(stuffing)) {
    // Identical counter names and span intern ORDER to the DataPlane
    // constructor: interning assigns ids sequentially, so the order is
    // part of the trace-equivalence contract.
    stats_.phy_decode_failures.bind("datalink.phy.decode_failures");
    stats_.deframe_failures.bind("datalink.framing.deframe_failures");
    stats_.checksum_failures.bind("datalink.errordetect.checksum_failures");
    stats_.frames_up.bind("datalink.stack.frames_up");
    stats_.frames_encoded.bind("datalink.phy.frames_encoded");
    stats_.frames_decoded.bind("datalink.phy.frames_decoded");
    stats_.frames_framed.bind("datalink.framing.frames_framed");
    stats_.frames_deframed.bind("datalink.framing.frames_deframed");
    stats_.frames_tagged.bind("datalink.errordetect.frames_tagged");
    stats_.frames_checked.bind("datalink.errordetect.frames_checked");
    auto& tracer = telemetry::SpanTracer::instance();
    errdet_span_ = tracer.intern("datalink.errordetect");
    framing_span_ = tracer.intern("datalink.framing");
    phy_span_ = tracer.intern("datalink.phy");
  }

  Bytes down(Bytes arq_frame) override {
    auto& tracer = telemetry::SpanTracer::instance();
    // Error-detection sublayer: append tag in place on the moved-in frame.
    tracer.crossing(errdet_span_, telemetry::Dir::kDown, arq_frame.size());
    det_.protect_in_place(arq_frame);
    ++stats_.frames_tagged;
    SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kDown,
                 ByteView(arq_frame));
    // Framing sublayer: build the channel bit stream directly in an arena
    // buffer (32-bit length placeholder, stuffed+flagged body, prefix
    // patched, zero pad) — bit-for-bit what the dynamic down() produces.
    tracer.crossing(framing_span_, telemetry::Dir::kDown, arq_frame.size());
    data_scratch_.assign_bytes(ByteView(arq_frame));
    BitString ch = arena_.acquire_bits();
    ch.reserve(32 + 2 * framing_.rule().flag.size() + data_scratch_.size() +
               data_scratch_.size() / 8 + 64);
    ch.append_word(0, 32);
    framing_.frame_append(data_scratch_, ch);
    const std::size_t nbits = ch.size() - 32;
    ch.overwrite_bits(0, static_cast<std::uint64_t>(nbits), 32);
    while (ch.size() % 8 != 0) ch.push_back(false);
    ++stats_.frames_framed;
    if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
      const Bytes packed = pack_bits(ch.slice(32, nbits));
      SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kDown,
                   ByteView(packed));
    }
    arena_.recycle(std::move(arq_frame));  // tagged ARQ buffer consumed
    // Encoding sublayer: line-code and pack.  For an identity code the
    // channel bits ARE the symbols: skip the copy (decided at compile
    // time here, not via a runtime flag).
    tracer.crossing(phy_span_, telemetry::Dir::kDown, ch.size() / 8);
    Bytes wire = arena_.acquire_bytes();
    if constexpr (Code::kIdentity) {
      ++stats_.frames_encoded;
      pack_into(ch, wire);
    } else {
      BitString symbols = arena_.acquire_bits();
      symbols.reserve(
          static_cast<std::size_t>(static_cast<double>(ch.size()) *
                                   Code::kSymbolsPerBit) +
          64);
      Code::encode_append(ch, symbols);
      ++stats_.frames_encoded;
      pack_into(symbols, wire);
      arena_.recycle(std::move(symbols));
    }
    SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kDown,
                 ByteView(wire));
    arena_.recycle(std::move(ch));
    return wire;
  }

  std::optional<Bytes> up(ByteView raw) override {
    auto& tracer = telemetry::SpanTracer::instance();
    // Tapped before any decode so frames the stack later rejects still
    // show up in the capture.
    SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kUp, raw);
    // Encoding sublayer: recover channel bits, check the length prefix.
    BitString ch = arena_.acquire_bits();
    std::size_t nbits = 0;
    if (!parse_channel(raw, ch, nbits)) {
      count_up_failure(stats_, UpFailure::kPhyDecode);
      arena_.recycle(std::move(ch));  // may hold a partial decode: discard
      return std::nullopt;
    }
    tracer.crossing(phy_span_, telemetry::Dir::kUp, ch.size() / 8);
    ++stats_.frames_decoded;
    // Framing sublayer: deframe in place (range form).
    BitString body = arena_.acquire_bits();
    body.reserve(nbits);
    const bool deframed =
        framing_.deframe_append(ch, 32, nbits, body) && body.size() % 8 == 0;
    if (!deframed) {
      count_up_failure(stats_, UpFailure::kDeframe);
      arena_.recycle(std::move(body));
      arena_.recycle(std::move(ch));
      return std::nullopt;
    }
    if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
      const Bytes packed = pack_bits(ch.slice(32, nbits));
      SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kUp,
                   ByteView(packed));
    }
    tracer.crossing(framing_span_, telemetry::Dir::kUp, body.size() / 8);
    ++stats_.frames_deframed;
    arena_.recycle(std::move(ch));
    // Error-detection sublayer: byte image, verify and strip in place.
    Bytes checked = arena_.acquire_bytes();
    body.copy_bytes_into(checked);  // size % 8 == 0: no pad bits
    arena_.recycle(std::move(body));
    SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kUp,
                 ByteView(checked));
    if (!det_.check_strip_in_place(checked)) {
      count_up_failure(stats_, UpFailure::kChecksum);
      arena_.recycle(std::move(checked));
      return std::nullopt;
    }
    tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked.size());
    ++stats_.frames_checked;
    ++stats_.frames_up;  // survived all three sublayers
    return checked;
  }

  void down_batch(std::vector<Bytes>& arq_frames,
                  std::vector<Bytes>& wire_out) override {
    auto& tracer = telemetry::SpanTracer::instance();
    // Stage 1: error detection — append the tag in place on every frame.
    for (Bytes& f : arq_frames) {
      tracer.crossing(errdet_span_, telemetry::Dir::kDown, f.size());
      det_.protect_in_place(f);
      ++stats_.frames_tagged;
      SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kDown,
                   ByteView(f));
    }
    // Stage 2: framing — channel stream per frame, arena-buffered.
    batch_chan_.clear();
    for (Bytes& f : arq_frames) {
      tracer.crossing(framing_span_, telemetry::Dir::kDown, f.size());
      data_scratch_.assign_bytes(ByteView(f));
      BitString ch = arena_.acquire_bits();
      ch.reserve(32 + 2 * framing_.rule().flag.size() +
                 data_scratch_.size() + data_scratch_.size() / 8 + 64);
      ch.append_word(0, 32);
      framing_.frame_append(data_scratch_, ch);
      const std::size_t nbits = ch.size() - 32;
      ch.overwrite_bits(0, static_cast<std::uint64_t>(nbits), 32);
      while (ch.size() % 8 != 0) ch.push_back(false);
      ++stats_.frames_framed;
      if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
        const Bytes packed = pack_bits(ch.slice(32, nbits));
        SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kDown,
                     ByteView(packed));
      }
      arena_.recycle(std::move(f));  // tagged ARQ buffer fully consumed
      batch_chan_.push_back(std::move(ch));
    }
    arq_frames.clear();
    // Stage 3: encoding — line-code and pack each channel stream.
    for (BitString& ch : batch_chan_) {
      tracer.crossing(phy_span_, telemetry::Dir::kDown, ch.size() / 8);
      Bytes wire = arena_.acquire_bytes();
      if constexpr (Code::kIdentity) {
        ++stats_.frames_encoded;
        pack_into(ch, wire);
      } else {
        BitString symbols = arena_.acquire_bits();
        symbols.reserve(
            static_cast<std::size_t>(static_cast<double>(ch.size()) *
                                     Code::kSymbolsPerBit) +
            64);
        Code::encode_append(ch, symbols);
        ++stats_.frames_encoded;
        pack_into(symbols, wire);
        arena_.recycle(std::move(symbols));
      }
      SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kDown,
                   ByteView(wire));
      arena_.recycle(std::move(ch));
      wire_out.push_back(std::move(wire));
    }
    batch_chan_.clear();
  }

  void up_batch(std::vector<Bytes>& raws, std::vector<Bytes>& out) override {
    auto& tracer = telemetry::SpanTracer::instance();
    // Stage 1: encoding — unpack, recover channel bits, length check.
    batch_chan_.clear();
    batch_len_.clear();
    for (Bytes& raw : raws) {
      SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kUp,
                   ByteView(raw));
      BitString ch = arena_.acquire_bits();
      std::size_t nbits = 0;
      if (parse_channel(ByteView(raw), ch, nbits)) {
        tracer.crossing(phy_span_, telemetry::Dir::kUp, ch.size() / 8);
        ++stats_.frames_decoded;
        batch_len_.push_back(nbits);
        batch_chan_.push_back(std::move(ch));
      } else {
        count_up_failure(stats_, UpFailure::kPhyDecode);
        arena_.recycle(std::move(ch));  // may hold a partial decode
      }
      arena_.recycle(std::move(raw));
    }
    raws.clear();
    // Stage 2: framing — deframe each channel stream in place.
    batch_body_.clear();
    for (std::size_t i = 0; i < batch_chan_.size(); ++i) {
      BitString& ch = batch_chan_[i];
      const std::size_t nbits = batch_len_[i];
      BitString body = arena_.acquire_bits();
      body.reserve(nbits);
      const bool ok = framing_.deframe_append(ch, 32, nbits, body) &&
                      body.size() % 8 == 0;
      if (!ok) {
        count_up_failure(stats_, UpFailure::kDeframe);
        arena_.recycle(std::move(body));
        arena_.recycle(std::move(ch));
        continue;
      }
      if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
        const Bytes packed = pack_bits(ch.slice(32, nbits));
        SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kUp,
                     ByteView(packed));
      }
      tracer.crossing(framing_span_, telemetry::Dir::kUp, body.size() / 8);
      ++stats_.frames_deframed;
      arena_.recycle(std::move(ch));
      batch_body_.push_back(std::move(body));
    }
    batch_chan_.clear();
    batch_len_.clear();
    // Stage 3: error detection — byte image, verify and strip in place.
    for (BitString& body : batch_body_) {
      Bytes checked = arena_.acquire_bytes();
      body.copy_bytes_into(checked);  // size % 8 == 0: no pad bits
      arena_.recycle(std::move(body));
      SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kUp,
                   ByteView(checked));
      if (!det_.check_strip_in_place(checked)) {
        count_up_failure(stats_, UpFailure::kChecksum);
        arena_.recycle(std::move(checked));
        continue;
      }
      tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked.size());
      ++stats_.frames_checked;
      ++stats_.frames_up;  // survived all three sublayers
      out.push_back(std::move(checked));
    }
    batch_body_.clear();
  }

  FrameArena& arena() override { return arena_; }
  const StackStats& stats() const override { return stats_; }
  bool fused() const override { return true; }
  std::string code_name() const override { return Code::kName; }
  std::string detector_name() const override { return det_.name(); }

 private:
  /// Length-prefix + pack: 32-bit symbol count, then the padded bytes.
  static void pack_into(const BitString& sym, Bytes& wire) {
    wire.reserve(4 + (sym.size() + 7) / 8);
    ByteWriter w(wire);
    w.u32(static_cast<std::uint32_t>(sym.size()));
    sym.copy_bytes_into(wire);
  }

  /// Shared phy-up parse for both receive paths: unpack the symbol count,
  /// decode into `ch`, and validate the channel length prefix into
  /// `nbits`.  False on any failure (the caller bumps kPhyDecode and
  /// discards `ch`, which may hold a partial decode).
  bool parse_channel(ByteView raw, BitString& ch, std::size_t& nbits) {
    if (raw.size() < 4) return false;
    ByteReader r(raw);
    const std::uint32_t nsym = r.u32();
    if (r.remaining() != (static_cast<std::size_t>(nsym) + 7) / 8) {
      return false;
    }
    if constexpr (Code::kIdentity) {
      ch.assign_bytes(r.rest_view());
      if (nsym > ch.size()) return false;
      ch.truncate(nsym);
    } else {
      BitString sym = arena_.acquire_bits();
      sym.assign_bytes(r.rest_view());
      if (nsym > sym.size()) {
        arena_.recycle(std::move(sym));
        return false;
      }
      sym.truncate(nsym);
      const bool decoded = Code::decode_append(sym, ch);
      arena_.recycle(std::move(sym));
      if (!decoded) return false;
    }
    if (ch.size() % 8 != 0 || ch.size() < 32) return false;
    nbits = static_cast<std::size_t>(ch.bits_at(0, 32));
    return ch.size() - 32 == 8 * ((nbits + 7) / 8);
  }

  Detector det_;
  Framing framing_;
  StackStats stats_;
  FrameArena arena_;
  // Scratch reused across frames so the steady state allocates nothing.
  BitString data_scratch_;
  std::vector<BitString> batch_chan_;
  std::vector<std::size_t> batch_len_;
  std::vector<BitString> batch_body_;
  // Interned boundary ids for the span tracer, one per sublayer seam.
  std::uint32_t errdet_span_ = 0;
  std::uint32_t framing_span_ = 0;
  std::uint32_t phy_span_ = 0;
};

}  // namespace sublayer::datalink::fused
