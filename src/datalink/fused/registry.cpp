// The fused-pipeline registry: the one translation unit that pays for the
// template instantiations.  Every supported line-code x CRC combination is
// instantiated here (12 pipelines); everything else falls back to the
// dynamic DataPlane, so an unregistered combination is a performance
// choice, never an error.  Keeping all instantiations in one TU bounds
// the compile-time footprint (check.sh guards the datalink build time).

#include <memory>
#include <string>

#include "datalink/errordetect/detector_static.hpp"
#include "datalink/framing/framing_static.hpp"
#include "datalink/fused/pipeline.hpp"
#include "datalink/stack.hpp"
#include "phy/linecode_static.hpp"

namespace sublayer::datalink {

namespace {

using Maker = std::unique_ptr<DataPlaneIface> (*)(const StuffingRule&);

template <class Det, class Code>
std::unique_ptr<DataPlaneIface> make_fused(const StuffingRule& stuffing) {
  return std::make_unique<fused::Pipeline<Det, StuffingFraming, Code>>(
      stuffing);
}

struct Entry {
  const char* code;
  const char* detector;
  Maker make;
};

// Keyed by the virtual objects' self-reported names, so the factory's
// fallback decision can never disagree with what the dynamic plane would
// have run.  The stuffing rule stays a runtime value: HDLC and
// low-overhead share one instantiation per row.
constexpr const char* kCrc16 = "CRC-16/CCITT";
constexpr const char* kCrc32 = "CRC-32";
constexpr const char* kCrc64 = "CRC-64/XZ";

const Entry kRegistry[] = {
    {"NRZ", kCrc16, &make_fused<Crc16Detector, phy::NrzCode>},
    {"NRZ", kCrc32, &make_fused<Crc32Detector, phy::NrzCode>},
    {"NRZ", kCrc64, &make_fused<Crc64Detector, phy::NrzCode>},
    {"NRZI", kCrc16, &make_fused<Crc16Detector, phy::NrziCode>},
    {"NRZI", kCrc32, &make_fused<Crc32Detector, phy::NrziCode>},
    {"NRZI", kCrc64, &make_fused<Crc64Detector, phy::NrziCode>},
    {"Manchester", kCrc16, &make_fused<Crc16Detector, phy::ManchesterCode>},
    {"Manchester", kCrc32, &make_fused<Crc32Detector, phy::ManchesterCode>},
    {"Manchester", kCrc64, &make_fused<Crc64Detector, phy::ManchesterCode>},
    {"4B5B", kCrc16, &make_fused<Crc16Detector, phy::FourBFiveBCode>},
    {"4B5B", kCrc32, &make_fused<Crc32Detector, phy::FourBFiveBCode>},
    {"4B5B", kCrc64, &make_fused<Crc64Detector, phy::FourBFiveBCode>},
};

}  // namespace

std::unique_ptr<DataPlaneIface> make_data_plane(
    std::unique_ptr<phy::LineCode> code,
    std::unique_ptr<ErrorDetector> detector, const StuffingRule& stuffing,
    bool fused) {
  if (fused) {
    const std::string code_name = code->name();
    const std::string det_name = detector->name();
    for (const Entry& e : kRegistry) {
      if (code_name == e.code && det_name == e.detector) {
        return e.make(stuffing);
      }
    }
  }
  return std::make_unique<DataPlane>(std::move(code), std::move(detector),
                                     stuffing);
}

}  // namespace sublayer::datalink
