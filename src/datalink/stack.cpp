#include "datalink/stack.hpp"

#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::datalink {

Bytes pack_bits(const BitString& bits) {
  Bytes out;
  out.reserve(4 + (bits.size() + 7) / 8);
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(bits.size()));
  bits.copy_bytes_into(out);  // pad bits are zero by the packing invariant
  return out;
}

std::optional<BitString> unpack_bits(ByteView raw) {
  if (raw.size() < 4) return std::nullopt;
  ByteReader r(raw);
  const std::uint32_t nbits = r.u32();
  const std::size_t need = (nbits + 7) / 8;
  if (r.remaining() != need) return std::nullopt;
  BitString all = BitString::from_bytes(r.rest_view());
  if (nbits > all.size()) return std::nullopt;
  all.truncate(nbits);
  return all;
}

DataPlane::DataPlane(std::unique_ptr<phy::LineCode> code,
                     std::unique_ptr<ErrorDetector> detector,
                     StuffingRule stuffing)
    : code_(std::move(code)),
      detector_(std::move(detector)),
      stuffing_(std::move(stuffing)) {
  stats_.phy_decode_failures.bind("datalink.phy.decode_failures");
  stats_.deframe_failures.bind("datalink.framing.deframe_failures");
  stats_.checksum_failures.bind("datalink.errordetect.checksum_failures");
  stats_.frames_up.bind("datalink.stack.frames_up");
  stats_.frames_encoded.bind("datalink.phy.frames_encoded");
  stats_.frames_decoded.bind("datalink.phy.frames_decoded");
  stats_.frames_framed.bind("datalink.framing.frames_framed");
  stats_.frames_deframed.bind("datalink.framing.frames_deframed");
  stats_.frames_tagged.bind("datalink.errordetect.frames_tagged");
  stats_.frames_checked.bind("datalink.errordetect.frames_checked");
  auto& tracer = telemetry::SpanTracer::instance();
  errdet_span_ = tracer.intern("datalink.errordetect");
  framing_span_ = tracer.intern("datalink.framing");
  phy_span_ = tracer.intern("datalink.phy");
}

Bytes DataPlane::down(Bytes arq_frame) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Error-detection sublayer: append tag in place on the moved-in frame.
  tracer.crossing(errdet_span_, telemetry::Dir::kDown, arq_frame.size());
  detector_->protect_in_place(arq_frame);
  ++stats_.frames_tagged;
  SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kDown,
               ByteView(arq_frame));
  // Framing sublayer: stuff and add flags (bit-granular).
  tracer.crossing(framing_span_, telemetry::Dir::kDown, arq_frame.size());
  const BitString framed = frame(stuffing_, BitString::from_bytes(arq_frame));
  ++stats_.frames_framed;
  if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
    // The stuffed bit string only gets a byte image when someone taps it.
    const Bytes packed = pack_bits(framed);
    SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kDown,
                 ByteView(packed));
  }
  // Encoding sublayer: line-code the length-prefixed channel bits.  The
  // channel bit stream is built directly (32-bit count, body, zero pad to a
  // byte boundary) — bit-for-bit what pack_bits-then-from_bytes produced,
  // without materializing the intermediate byte buffer.
  BitString channel;
  channel.reserve(32 + framed.size() + 7);
  channel.append_word(static_cast<std::uint32_t>(framed.size()), 32);
  channel.append(framed);
  while (channel.size() % 8 != 0) channel.push_back(false);
  tracer.crossing(phy_span_, telemetry::Dir::kDown, channel.size() / 8);
  const BitString symbols = code_->encode(channel);
  ++stats_.frames_encoded;
  Bytes wire = pack_bits(symbols);
  SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kDown,
               ByteView(wire));
  return wire;
}

std::optional<Bytes> DataPlane::up(ByteView raw) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Tapped before any decode so frames the stack later rejects (noise,
  // corruption) still show up in the capture.
  SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kUp, raw);
  // Encoding sublayer: recover channel bits.
  const auto symbols = unpack_bits(raw);
  if (!symbols) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  auto channel_bits = code_->decode(*symbols);
  if (!channel_bits || channel_bits->size() % 8 != 0 ||
      channel_bits->size() < 32) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  // Parse the 32-bit length prefix straight off the bit stream (the moral
  // equivalent of unpack_bits(channel_bits->to_bytes()), minus the byte
  // detour): the remainder must be exactly the padded body.
  const auto nbits =
      static_cast<std::size_t>(channel_bits->bits_at(0, 32));
  if (channel_bits->size() - 32 != 8 * ((nbits + 7) / 8)) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  tracer.crossing(phy_span_, telemetry::Dir::kUp, channel_bits->size() / 8);
  ++stats_.frames_decoded;
  // Framing sublayer: strip flags, unstuff.
  const auto body = deframe(stuffing_, channel_bits->slice(32, nbits));
  if (!body || body->size() % 8 != 0) {
    ++stats_.deframe_failures;
    return std::nullopt;
  }
  if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
    const Bytes packed = pack_bits(channel_bits->slice(32, nbits));
    SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kUp,
                 ByteView(packed));
  }
  tracer.crossing(framing_span_, telemetry::Dir::kUp, body->size() / 8);
  ++stats_.frames_deframed;
  // Error-detection sublayer: verify and strip the tag in place.
  Bytes checked = body->to_bytes();
  // Tapped in tagged form (symmetric with down, and corrupt frames are
  // still visible) before the tag check strips it.
  SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kUp,
               ByteView(checked));
  if (!detector_->check_strip_in_place(checked)) {
    ++stats_.checksum_failures;
    return std::nullopt;
  }
  tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked.size());
  ++stats_.frames_checked;
  ++stats_.frames_up;  // survived all three sublayers
  return checked;
}

DatalinkEndpoint::DatalinkEndpoint(sim::Simulator& sim,
                                   std::unique_ptr<phy::LineCode> code,
                                   std::unique_ptr<ErrorDetector> detector,
                                   const StackConfig& config)
    : plane_(std::move(code), std::move(detector), config.stuffing),
      arq_(arq_factory(config.arq_engine)(sim, config.arq)) {
  auto& tracer = telemetry::SpanTracer::instance();
  link_span_ = tracer.intern("datalink.link");
  arq_span_ = tracer.intern("datalink.arq");
  arq_->set_frame_sink([this](Bytes f) {
    // ARQ pushes a frame (data or ack) into the lower sublayers.
    telemetry::SpanTracer::instance().crossing(
        arq_span_, telemetry::Dir::kDown, f.size());
    SUBLAYER_TAP(telemetry::TapPoint::kArq, telemetry::Dir::kDown,
                 ByteView(f));
    if (wire_sink_) wire_sink_(plane_.down(std::move(f)));
  });
}

void DatalinkEndpoint::set_wire_sink(std::function<void(Bytes)> sink) {
  wire_sink_ = std::move(sink);
}

void DatalinkEndpoint::set_deliver(Deliver d) {
  arq_->set_deliver([this, d = std::move(d)](Bytes payload) {
    telemetry::SpanTracer::instance().crossing(
        link_span_, telemetry::Dir::kUp, payload.size());
    if (d) d(std::move(payload));
  });
}

bool DatalinkEndpoint::send(Bytes payload) {
  const std::size_t size = payload.size();
  const bool accepted = arq_->send(std::move(payload));
  // Only accepted payloads cross the service boundary (a full ARQ queue
  // bounces the send back to the caller).
  if (accepted) {
    telemetry::SpanTracer::instance().crossing(link_span_,
                                               telemetry::Dir::kDown, size);
  }
  return accepted;
}

void DatalinkEndpoint::on_wire_frame(Bytes raw) {
  auto arq_frame = plane_.up(raw);
  if (!arq_frame) return;
  telemetry::SpanTracer::instance().crossing(
      arq_span_, telemetry::Dir::kUp, arq_frame->size());
  SUBLAYER_TAP(telemetry::TapPoint::kArq, telemetry::Dir::kUp,
               ByteView(*arq_frame));
  arq_->on_frame(std::move(*arq_frame));
}

DatalinkPair::DatalinkPair(sim::Simulator& sim,
                           const sim::LinkConfig& link_config, Rng& rng,
                           const StackConfig& config,
                           std::unique_ptr<phy::LineCode> code_a,
                           std::unique_ptr<ErrorDetector> det_a,
                           std::unique_ptr<phy::LineCode> code_b,
                           std::unique_ptr<ErrorDetector> det_b)
    : link_(sim, link_config, rng, "datalink"),
      a_(sim, std::move(code_a), std::move(det_a), config),
      b_(sim, std::move(code_b), std::move(det_b), config) {
  a_.set_wire_sink([this](Bytes f) { link_.a_to_b().send(std::move(f)); });
  b_.set_wire_sink([this](Bytes f) { link_.b_to_a().send(std::move(f)); });
  link_.a_to_b().set_receiver([this](Bytes f) { b_.on_wire_frame(std::move(f)); });
  link_.b_to_a().set_receiver([this](Bytes f) { a_.on_wire_frame(std::move(f)); });
}

}  // namespace sublayer::datalink
