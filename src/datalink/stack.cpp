#include "datalink/stack.hpp"

#include "telemetry/span.hpp"

namespace sublayer::datalink {

Bytes pack_bits(const BitString& bits) {
  BitString padded = bits;
  while (padded.size() % 8 != 0) padded.push_back(false);
  Bytes out;
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(bits.size()));
  w.bytes(padded.to_bytes());
  return out;
}

std::optional<BitString> unpack_bits(ByteView raw) {
  if (raw.size() < 4) return std::nullopt;
  ByteReader r(raw);
  const std::uint32_t nbits = r.u32();
  const std::size_t need = (nbits + 7) / 8;
  if (r.remaining() != need) return std::nullopt;
  const BitString all = BitString::from_bytes(r.rest());
  if (nbits > all.size()) return std::nullopt;
  return all.slice(0, nbits);
}

DatalinkEndpoint::DatalinkEndpoint(sim::Simulator& sim,
                                   std::unique_ptr<phy::LineCode> code,
                                   std::unique_ptr<ErrorDetector> detector,
                                   const StackConfig& config)
    : code_(std::move(code)),
      detector_(std::move(detector)),
      stuffing_(config.stuffing),
      arq_(arq_factory(config.arq_engine)(sim, config.arq)) {
  stats_.phy_decode_failures.bind("datalink.phy.decode_failures");
  stats_.deframe_failures.bind("datalink.framing.deframe_failures");
  stats_.checksum_failures.bind("datalink.errordetect.checksum_failures");
  stats_.frames_up.bind("datalink.stack.frames_up");
  stats_.frames_encoded.bind("datalink.phy.frames_encoded");
  stats_.frames_decoded.bind("datalink.phy.frames_decoded");
  stats_.frames_framed.bind("datalink.framing.frames_framed");
  stats_.frames_deframed.bind("datalink.framing.frames_deframed");
  stats_.frames_tagged.bind("datalink.errordetect.frames_tagged");
  stats_.frames_checked.bind("datalink.errordetect.frames_checked");
  auto& tracer = telemetry::SpanTracer::instance();
  link_span_ = tracer.intern("datalink.link");
  arq_span_ = tracer.intern("datalink.arq");
  errdet_span_ = tracer.intern("datalink.errordetect");
  framing_span_ = tracer.intern("datalink.framing");
  phy_span_ = tracer.intern("datalink.phy");
  arq_->set_frame_sink([this](Bytes f) {
    // ARQ pushes a frame (data or ack) into the lower sublayers.
    telemetry::SpanTracer::instance().crossing(
        arq_span_, telemetry::Dir::kDown, f.size());
    if (wire_sink_) wire_sink_(down(f));
  });
}

void DatalinkEndpoint::set_wire_sink(std::function<void(Bytes)> sink) {
  wire_sink_ = std::move(sink);
}

void DatalinkEndpoint::set_deliver(Deliver d) {
  arq_->set_deliver([this, d = std::move(d)](Bytes payload) {
    telemetry::SpanTracer::instance().crossing(
        link_span_, telemetry::Dir::kUp, payload.size());
    if (d) d(std::move(payload));
  });
}

bool DatalinkEndpoint::send(Bytes payload) {
  const std::size_t size = payload.size();
  const bool accepted = arq_->send(std::move(payload));
  // Only accepted payloads cross the service boundary (a full ARQ queue
  // bounces the send back to the caller).
  if (accepted) {
    telemetry::SpanTracer::instance().crossing(link_span_,
                                               telemetry::Dir::kDown, size);
  }
  return accepted;
}

Bytes DatalinkEndpoint::down(ByteView arq_frame) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Error-detection sublayer: append tag.
  tracer.crossing(errdet_span_, telemetry::Dir::kDown, arq_frame.size());
  const Bytes tagged = detector_->protect(arq_frame);
  ++stats_.frames_tagged;
  // Framing sublayer: stuff and add flags (bit-granular).
  tracer.crossing(framing_span_, telemetry::Dir::kDown, tagged.size());
  const BitString framed = frame(stuffing_, BitString::from_bytes(tagged));
  ++stats_.frames_framed;
  // Encoding sublayer: line-code the packed channel bits.
  const Bytes packed = pack_bits(framed);
  tracer.crossing(phy_span_, telemetry::Dir::kDown, packed.size());
  const BitString symbols = code_->encode(BitString::from_bytes(packed));
  ++stats_.frames_encoded;
  return pack_bits(symbols);
}

std::optional<Bytes> DatalinkEndpoint::up(ByteView raw) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Encoding sublayer: recover channel bits.
  const auto symbols = unpack_bits(raw);
  if (!symbols) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  const auto channel_bits = code_->decode(*symbols);
  if (!channel_bits || channel_bits->size() % 8 != 0) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  const auto framed = unpack_bits(channel_bits->to_bytes());
  if (!framed) {
    ++stats_.phy_decode_failures;
    return std::nullopt;
  }
  tracer.crossing(phy_span_, telemetry::Dir::kUp,
                  channel_bits->to_bytes().size());
  ++stats_.frames_decoded;
  // Framing sublayer: strip flags, unstuff.
  const auto body = deframe(stuffing_, *framed);
  if (!body || body->size() % 8 != 0) {
    ++stats_.deframe_failures;
    return std::nullopt;
  }
  tracer.crossing(framing_span_, telemetry::Dir::kUp, body->size() / 8);
  ++stats_.frames_deframed;
  // Error-detection sublayer: verify and strip the tag.
  auto checked = detector_->check_strip(body->to_bytes());
  if (!checked) {
    ++stats_.checksum_failures;
    return std::nullopt;
  }
  tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked->size());
  ++stats_.frames_checked;
  return checked;
}

void DatalinkEndpoint::on_wire_frame(Bytes raw) {
  auto arq_frame = up(raw);
  if (!arq_frame) return;
  ++stats_.frames_up;
  telemetry::SpanTracer::instance().crossing(
      arq_span_, telemetry::Dir::kUp, arq_frame->size());
  arq_->on_frame(std::move(*arq_frame));
}

DatalinkPair::DatalinkPair(sim::Simulator& sim,
                           const sim::LinkConfig& link_config, Rng& rng,
                           const StackConfig& config,
                           std::unique_ptr<phy::LineCode> code_a,
                           std::unique_ptr<ErrorDetector> det_a,
                           std::unique_ptr<phy::LineCode> code_b,
                           std::unique_ptr<ErrorDetector> det_b)
    : link_(sim, link_config, rng, "datalink"),
      a_(sim, std::move(code_a), std::move(det_a), config),
      b_(sim, std::move(code_b), std::move(det_b), config) {
  a_.set_wire_sink([this](Bytes f) { link_.a_to_b().send(std::move(f)); });
  b_.set_wire_sink([this](Bytes f) { link_.b_to_a().send(std::move(f)); });
  link_.a_to_b().set_receiver([this](Bytes f) { b_.on_wire_frame(std::move(f)); });
  link_.b_to_a().set_receiver([this](Bytes f) { a_.on_wire_frame(std::move(f)); });
}

}  // namespace sublayer::datalink
