#include "datalink/stack.hpp"

#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::datalink {

Bytes pack_bits(const BitString& bits) {
  Bytes out;
  out.reserve(4 + (bits.size() + 7) / 8);
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(bits.size()));
  bits.copy_bytes_into(out);  // pad bits are zero by the packing invariant
  return out;
}

std::optional<BitString> unpack_bits(ByteView raw) {
  if (raw.size() < 4) return std::nullopt;
  ByteReader r(raw);
  const std::uint32_t nbits = r.u32();
  const std::size_t need = (nbits + 7) / 8;
  if (r.remaining() != need) return std::nullopt;
  BitString all = BitString::from_bytes(r.rest_view());
  if (nbits > all.size()) return std::nullopt;
  all.truncate(nbits);
  return all;
}

DataPlane::DataPlane(std::unique_ptr<phy::LineCode> code,
                     std::unique_ptr<ErrorDetector> detector,
                     StuffingRule stuffing)
    : code_(std::move(code)),
      detector_(std::move(detector)),
      stuffing_(std::move(stuffing)) {
  stats_.phy_decode_failures.bind("datalink.phy.decode_failures");
  stats_.deframe_failures.bind("datalink.framing.deframe_failures");
  stats_.checksum_failures.bind("datalink.errordetect.checksum_failures");
  stats_.frames_up.bind("datalink.stack.frames_up");
  stats_.frames_encoded.bind("datalink.phy.frames_encoded");
  stats_.frames_decoded.bind("datalink.phy.frames_decoded");
  stats_.frames_framed.bind("datalink.framing.frames_framed");
  stats_.frames_deframed.bind("datalink.framing.frames_deframed");
  stats_.frames_tagged.bind("datalink.errordetect.frames_tagged");
  stats_.frames_checked.bind("datalink.errordetect.frames_checked");
  auto& tracer = telemetry::SpanTracer::instance();
  errdet_span_ = tracer.intern("datalink.errordetect");
  framing_span_ = tracer.intern("datalink.framing");
  phy_span_ = tracer.intern("datalink.phy");
}

Bytes DataPlane::down(Bytes arq_frame) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Error-detection sublayer: append tag in place on the moved-in frame.
  tracer.crossing(errdet_span_, telemetry::Dir::kDown, arq_frame.size());
  detector_->protect_in_place(arq_frame);
  ++stats_.frames_tagged;
  SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kDown,
               ByteView(arq_frame));
  // Framing sublayer: stuff and add flags (bit-granular).
  tracer.crossing(framing_span_, telemetry::Dir::kDown, arq_frame.size());
  const BitString framed = frame(stuffing_, BitString::from_bytes(arq_frame));
  ++stats_.frames_framed;
  if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
    // The stuffed bit string only gets a byte image when someone taps it.
    const Bytes packed = pack_bits(framed);
    SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kDown,
                 ByteView(packed));
  }
  // Encoding sublayer: line-code the length-prefixed channel bits.  The
  // channel bit stream is built directly (32-bit count, body, zero pad to a
  // byte boundary) — bit-for-bit what pack_bits-then-from_bytes produced,
  // without materializing the intermediate byte buffer.
  BitString channel;
  channel.reserve(32 + framed.size() + 7);
  channel.append_word(static_cast<std::uint32_t>(framed.size()), 32);
  channel.append(framed);
  while (channel.size() % 8 != 0) channel.push_back(false);
  tracer.crossing(phy_span_, telemetry::Dir::kDown, channel.size() / 8);
  const BitString symbols = code_->encode(channel);
  ++stats_.frames_encoded;
  Bytes wire = pack_bits(symbols);
  SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kDown,
               ByteView(wire));
  return wire;
}

std::optional<Bytes> DataPlane::up(ByteView raw) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Tapped before any decode so frames the stack later rejects (noise,
  // corruption) still show up in the capture.
  SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kUp, raw);
  // Encoding sublayer: recover channel bits.
  const auto symbols = unpack_bits(raw);
  if (!symbols) {
    count_up_failure(stats_, UpFailure::kPhyDecode);
    return std::nullopt;
  }
  auto channel_bits = code_->decode(*symbols);
  if (!channel_bits || channel_bits->size() % 8 != 0 ||
      channel_bits->size() < 32) {
    count_up_failure(stats_, UpFailure::kPhyDecode);
    return std::nullopt;
  }
  // Parse the 32-bit length prefix straight off the bit stream (the moral
  // equivalent of unpack_bits(channel_bits->to_bytes()), minus the byte
  // detour): the remainder must be exactly the padded body.
  const auto nbits =
      static_cast<std::size_t>(channel_bits->bits_at(0, 32));
  if (channel_bits->size() - 32 != 8 * ((nbits + 7) / 8)) {
    count_up_failure(stats_, UpFailure::kPhyDecode);
    return std::nullopt;
  }
  tracer.crossing(phy_span_, telemetry::Dir::kUp, channel_bits->size() / 8);
  ++stats_.frames_decoded;
  // Framing sublayer: strip flags, unstuff.
  const auto body = deframe(stuffing_, channel_bits->slice(32, nbits));
  if (!body || body->size() % 8 != 0) {
    count_up_failure(stats_, UpFailure::kDeframe);
    return std::nullopt;
  }
  if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
    const Bytes packed = pack_bits(channel_bits->slice(32, nbits));
    SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kUp,
                 ByteView(packed));
  }
  tracer.crossing(framing_span_, telemetry::Dir::kUp, body->size() / 8);
  ++stats_.frames_deframed;
  // Error-detection sublayer: verify and strip the tag in place.
  Bytes checked = body->to_bytes();
  // Tapped in tagged form (symmetric with down, and corrupt frames are
  // still visible) before the tag check strips it.
  SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kUp,
               ByteView(checked));
  if (!detector_->check_strip_in_place(checked)) {
    count_up_failure(stats_, UpFailure::kChecksum);
    return std::nullopt;
  }
  tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked.size());
  ++stats_.frames_checked;
  ++stats_.frames_up;  // survived all three sublayers
  return checked;
}

void DataPlane::down_batch(std::vector<Bytes>& arq_frames,
                           std::vector<Bytes>& wire_out) {
  auto& tracer = telemetry::SpanTracer::instance();
  // Stage 1: error detection — append the tag in place on every frame.
  for (Bytes& f : arq_frames) {
    tracer.crossing(errdet_span_, telemetry::Dir::kDown, f.size());
    detector_->protect_in_place(f);
    ++stats_.frames_tagged;
    SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kDown,
                 ByteView(f));
  }
  // Stage 2: framing — build each frame's channel bit stream directly in
  // an arena buffer: 32-bit length placeholder, stuffed+flagged body,
  // prefix patched, zero pad to a byte boundary.  Bit-for-bit what down()
  // produces, without the framed→channel copy.
  batch_chan_.clear();
  BitString data = arena_.acquire_bits();
  for (Bytes& f : arq_frames) {
    tracer.crossing(framing_span_, telemetry::Dir::kDown, f.size());
    data.assign_bytes(ByteView(f));
    BitString ch = arena_.acquire_bits();
    ch.reserve(32 + 2 * stuffing_.flag.size() + data.size() +
               data.size() / 8 + 64);
    ch.append_word(0, 32);
    frame_append(stuffing_, data, ch);
    const std::size_t nbits = ch.size() - 32;
    ch.overwrite_bits(0, static_cast<std::uint64_t>(nbits), 32);
    while (ch.size() % 8 != 0) ch.push_back(false);
    ++stats_.frames_framed;
    if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
      const Bytes packed = pack_bits(ch.slice(32, nbits));
      SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kDown,
                   ByteView(packed));
    }
    arena_.recycle(std::move(f));  // tagged ARQ buffer fully consumed
    batch_chan_.push_back(std::move(ch));
  }
  arena_.recycle(std::move(data));
  arq_frames.clear();
  // Stage 3: encoding — line-code and pack each channel stream.  For an
  // identity code (NRZ) the channel bits ARE the symbols: skip the copy.
  const bool identity = code_->is_identity();
  for (BitString& ch : batch_chan_) {
    tracer.crossing(phy_span_, telemetry::Dir::kDown, ch.size() / 8);
    BitString symbols;
    if (!identity) {
      symbols = arena_.acquire_bits();
      symbols.reserve(
          static_cast<std::size_t>(static_cast<double>(ch.size()) *
                                   code_->symbols_per_bit()) +
          64);
      code_->encode_append(ch, symbols);
    }
    const BitString& sym = identity ? ch : symbols;
    ++stats_.frames_encoded;
    Bytes wire = arena_.acquire_bytes();
    wire.reserve(4 + (sym.size() + 7) / 8);
    ByteWriter w(wire);
    w.u32(static_cast<std::uint32_t>(sym.size()));
    sym.copy_bytes_into(wire);
    SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kDown,
                 ByteView(wire));
    if (!identity) arena_.recycle(std::move(symbols));
    arena_.recycle(std::move(ch));
    wire_out.push_back(std::move(wire));
  }
  batch_chan_.clear();
}

void DataPlane::up_batch(std::vector<Bytes>& raws, std::vector<Bytes>& out) {
  auto& tracer = telemetry::SpanTracer::instance();
  const bool identity = code_->is_identity();
  // Stage 1: encoding — unpack the symbol count, recover channel bits,
  // check the length prefix.  Parsed straight off the raw bytes into
  // arena buffers (the moral equivalent of unpack_bits + decode, minus
  // both allocations).
  batch_chan_.clear();
  batch_len_.clear();
  for (Bytes& raw : raws) {
    SUBLAYER_TAP(telemetry::TapPoint::kPhyWire, telemetry::Dir::kUp,
                 ByteView(raw));
    BitString ch = arena_.acquire_bits();
    bool ok = false;
    do {
      if (raw.size() < 4) break;
      ByteReader r(raw);
      const std::uint32_t nsym = r.u32();
      if (r.remaining() != (static_cast<std::size_t>(nsym) + 7) / 8) break;
      if (identity) {
        ch.assign_bytes(r.rest_view());
        if (nsym > ch.size()) break;
        ch.truncate(nsym);
      } else {
        BitString sym = arena_.acquire_bits();
        sym.assign_bytes(r.rest_view());
        if (nsym > sym.size()) {
          arena_.recycle(std::move(sym));
          break;
        }
        sym.truncate(nsym);
        const bool decoded = code_->decode_append(sym, ch);
        arena_.recycle(std::move(sym));
        if (!decoded) break;
      }
      if (ch.size() % 8 != 0 || ch.size() < 32) break;
      const auto nbits = static_cast<std::size_t>(ch.bits_at(0, 32));
      if (ch.size() - 32 != 8 * ((nbits + 7) / 8)) break;
      tracer.crossing(phy_span_, telemetry::Dir::kUp, ch.size() / 8);
      ++stats_.frames_decoded;
      batch_len_.push_back(nbits);
      batch_chan_.push_back(std::move(ch));
      ok = true;
    } while (false);
    if (!ok) {
      count_up_failure(stats_, UpFailure::kPhyDecode);
      arena_.recycle(std::move(ch));  // may hold a partial decode: discard
    }
    arena_.recycle(std::move(raw));
  }
  raws.clear();
  // Stage 2: framing — deframe each channel stream in place (range form:
  // no flag-stripped slice is materialized).
  batch_body_.clear();
  for (std::size_t i = 0; i < batch_chan_.size(); ++i) {
    BitString& ch = batch_chan_[i];
    const std::size_t nbits = batch_len_[i];
    BitString body = arena_.acquire_bits();
    body.reserve(nbits);
    const bool ok = deframe_append(stuffing_, ch, 32, nbits, body) &&
                    body.size() % 8 == 0;
    if (!ok) {
      count_up_failure(stats_, UpFailure::kDeframe);
      arena_.recycle(std::move(body));
      arena_.recycle(std::move(ch));
      continue;
    }
    if (SUBLAYER_TAP_ACTIVE(telemetry::TapPoint::kFraming)) {
      const Bytes packed = pack_bits(ch.slice(32, nbits));
      SUBLAYER_TAP(telemetry::TapPoint::kFraming, telemetry::Dir::kUp,
                   ByteView(packed));
    }
    tracer.crossing(framing_span_, telemetry::Dir::kUp, body.size() / 8);
    ++stats_.frames_deframed;
    arena_.recycle(std::move(ch));
    batch_body_.push_back(std::move(body));
  }
  batch_chan_.clear();
  batch_len_.clear();
  // Stage 3: error detection — byte image, then verify and strip in place.
  for (BitString& body : batch_body_) {
    Bytes checked = arena_.acquire_bytes();
    body.copy_bytes_into(checked);  // size % 8 == 0: no pad bits
    arena_.recycle(std::move(body));
    SUBLAYER_TAP(telemetry::TapPoint::kFcs, telemetry::Dir::kUp,
                 ByteView(checked));
    if (!detector_->check_strip_in_place(checked)) {
      count_up_failure(stats_, UpFailure::kChecksum);
      arena_.recycle(std::move(checked));
      continue;
    }
    tracer.crossing(errdet_span_, telemetry::Dir::kUp, checked.size());
    ++stats_.frames_checked;
    ++stats_.frames_up;  // survived all three sublayers
    out.push_back(std::move(checked));
  }
  batch_body_.clear();
}

DatalinkEndpoint::DatalinkEndpoint(sim::Simulator& sim,
                                   std::unique_ptr<phy::LineCode> code,
                                   std::unique_ptr<ErrorDetector> detector,
                                   const StackConfig& config)
    : plane_(make_data_plane(std::move(code), std::move(detector),
                             config.stuffing, config.fused)) {
  // The ARQ engine draws its emitted frames from the plane's arena, so
  // the batched down path can recycle them once their bits are packed.
  ArqConfig ac = config.arq;
  ac.arena = &plane_->arena();
  arq_ = arq_factory(config.arq_engine)(sim, ac);
  auto& tracer = telemetry::SpanTracer::instance();
  link_span_ = tracer.intern("datalink.link");
  arq_span_ = tracer.intern("datalink.arq");
  arq_->set_frame_sink([this](Bytes f) {
    // ARQ pushes a frame (data or ack) into the lower sublayers.
    telemetry::SpanTracer::instance().crossing(
        arq_span_, telemetry::Dir::kDown, f.size());
    SUBLAYER_TAP(telemetry::TapPoint::kArq, telemetry::Dir::kDown,
                 ByteView(f));
    if (collecting_tx_) {
      // Mid-burst: collect; on_wire_batch sends everything down at once.
      pending_tx_.push_back(std::move(f));
      return;
    }
    if (wire_batch_sink_) {
      // Batched wiring, but an isolated emission (an upper-layer send, a
      // retransmission timer): a batch of one keeps the single code path.
      pending_tx_.push_back(std::move(f));
      tx_scratch_.clear();
      plane_->down_batch(pending_tx_, tx_scratch_);
      wire_batch_sink_(tx_scratch_);
      tx_scratch_.clear();
      return;
    }
    if (wire_sink_) wire_sink_(plane_->down(std::move(f)));
  });
}

void DatalinkEndpoint::set_wire_sink(std::function<void(Bytes)> sink) {
  wire_sink_ = std::move(sink);
}

void DatalinkEndpoint::set_wire_batch_sink(
    std::function<void(sim::FrameBatch&)> sink) {
  wire_batch_sink_ = std::move(sink);
}

void DatalinkEndpoint::set_deliver(Deliver d) {
  arq_->set_deliver([this, d = std::move(d)](Bytes payload) {
    telemetry::SpanTracer::instance().crossing(
        link_span_, telemetry::Dir::kUp, payload.size());
    if (d) d(std::move(payload));
  });
}

bool DatalinkEndpoint::send(Bytes payload) {
  const std::size_t size = payload.size();
  const bool accepted = arq_->send(std::move(payload));
  // Only accepted payloads cross the service boundary (a full ARQ queue
  // bounces the send back to the caller).
  if (accepted) {
    telemetry::SpanTracer::instance().crossing(link_span_,
                                               telemetry::Dir::kDown, size);
  }
  return accepted;
}

void DatalinkEndpoint::on_wire_frame(Bytes raw) {
  auto arq_frame = plane_->up(raw);
  if (!arq_frame) return;
  telemetry::SpanTracer::instance().crossing(
      arq_span_, telemetry::Dir::kUp, arq_frame->size());
  SUBLAYER_TAP(telemetry::TapPoint::kArq, telemetry::Dir::kUp,
               ByteView(*arq_frame));
  arq_->on_frame(std::move(*arq_frame));
}

void DatalinkEndpoint::on_wire_batch(sim::FrameBatch& raws) {
  auto& tracer = telemetry::SpanTracer::instance();
  up_scratch_.clear();
  plane_->up_batch(raws, up_scratch_);
  // Feed the survivors to ARQ in delivery order, collecting everything it
  // emits in response — acks, window releases, retransmissions — so the
  // burst's whole answer goes back down the sublayers as one batch.
  collecting_tx_ = true;
  for (Bytes& f : up_scratch_) {
    tracer.crossing(arq_span_, telemetry::Dir::kUp, f.size());
    SUBLAYER_TAP(telemetry::TapPoint::kArq, telemetry::Dir::kUp,
                 ByteView(f));
    arq_->on_frame(std::move(f));
  }
  collecting_tx_ = false;
  up_scratch_.clear();
  if (pending_tx_.empty()) return;
  tx_scratch_.clear();
  plane_->down_batch(pending_tx_, tx_scratch_);
  if (wire_batch_sink_) {
    wire_batch_sink_(tx_scratch_);
  } else if (wire_sink_) {
    for (Bytes& w : tx_scratch_) wire_sink_(std::move(w));
  }
  tx_scratch_.clear();
}

DatalinkPair::DatalinkPair(sim::Simulator& sim,
                           const sim::LinkConfig& link_config, Rng& rng,
                           const StackConfig& config,
                           std::unique_ptr<phy::LineCode> code_a,
                           std::unique_ptr<ErrorDetector> det_a,
                           std::unique_ptr<phy::LineCode> code_b,
                           std::unique_ptr<ErrorDetector> det_b)
    : link_(sim, link_config, rng, "datalink"),
      a_(sim, std::move(code_a), std::move(det_a), config),
      b_(sim, std::move(code_b), std::move(det_b), config) {
  if (config.batched_wire) {
    a_.set_wire_batch_sink(
        [this](sim::FrameBatch& b) { link_.a_to_b().send_batch(std::move(b)); });
    b_.set_wire_batch_sink(
        [this](sim::FrameBatch& b) { link_.b_to_a().send_batch(std::move(b)); });
    link_.a_to_b().set_batch_receiver(
        [this](sim::FrameBatch& b) { b_.on_wire_batch(b); });
    link_.b_to_a().set_batch_receiver(
        [this](sim::FrameBatch& b) { a_.on_wire_batch(b); });
    return;
  }
  a_.set_wire_sink([this](Bytes f) { link_.a_to_b().send(std::move(f)); });
  b_.set_wire_sink([this](Bytes f) { link_.b_to_a().send(std::move(f)); });
  link_.a_to_b().set_receiver([this](Bytes f) { b_.on_wire_frame(std::move(f)); });
  link_.b_to_a().set_receiver([this](Bytes f) { a_.on_wire_frame(std::move(f)); });
}

void DatalinkPair::save(sim::SnapshotWriter& w) const {
  link_.save(w);
  a_.save(w);
  b_.save(w);
}

void DatalinkPair::restore(sim::SnapshotReader& r) {
  link_.restore(r);
  a_.restore(r);
  b_.restore(r);
}

}  // namespace sublayer::datalink
