// Media Access Control — the broadcast-link alternative to error recovery
// (§2.1: "broadcast links like 802.11 dispense with error recovery and do
// MAC to guarantee that one sender at a time, eventually and fairly, gets
// access to the shared physical channel").
//
// Two engines over sim::BroadcastMedium, swappable behind MacStation:
// slotted ALOHA and 1-persistent CSMA, both with binary exponential
// backoff after a collision.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::datalink {

enum class MacEngine { kSlottedAloha, kCsma };

struct MacConfig {
  MacEngine engine = MacEngine::kCsma;
  Duration slot = Duration::micros(50);
  int max_backoff_exponent = 10;  // backoff in [0, 2^min(attempts,max)) slots
  int max_attempts = 16;          // frame dropped after this many collisions
};

/// Registry-backed (`datalink.mac.*`); reads stay per-instance.
struct MacStats {
  telemetry::Counter frames_queued;
  telemetry::Counter attempts;
  telemetry::Counter collisions;
  telemetry::Counter delivered_tx;  // own frames that made it onto the wire
  telemetry::Counter dropped;       // gave up after max_attempts
  telemetry::Counter deferrals;     // CSMA carrier-busy waits
};

class MacStation {
 public:
  using Deliver = std::function<void(Bytes)>;

  MacStation(sim::Simulator& sim, sim::BroadcastMedium& medium, Rng rng,
             MacConfig config, std::string name = "mac");

  void set_deliver(Deliver d) { deliver_ = std::move(d); }

  /// Queues a frame for transmission on the shared channel.
  void send(Bytes frame);

  bool idle() const { return queue_.empty() && !transmitting_; }
  const MacStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  void try_transmit();
  void schedule_attempt(int backoff_slots);
  void on_tx_done(bool collided);

  sim::Simulator& sim_;
  sim::BroadcastMedium& medium_;
  Rng rng_;
  MacConfig config_;
  std::string name_;
  Deliver deliver_;
  MacStats stats_;

  std::uint32_t span_ = 0;
  int station_id_;
  std::deque<Bytes> queue_;
  int attempts_ = 0;
  bool transmitting_ = false;
  bool attempt_scheduled_ = false;
};

}  // namespace sublayer::datalink
