#include "datalink/mac/mac.hpp"

#include <algorithm>

#include "telemetry/span.hpp"

namespace sublayer::datalink {

MacStation::MacStation(sim::Simulator& sim, sim::BroadcastMedium& medium,
                       Rng rng, MacConfig config, std::string name)
    : sim_(sim),
      medium_(medium),
      rng_(rng),
      config_(config),
      name_(std::move(name)),
      station_id_(medium.attach(
          [this](Bytes f) {
            telemetry::SpanTracer::instance().crossing(
                span_, telemetry::Dir::kUp, f.size());
            if (deliver_) deliver_(std::move(f));
          },
          [this](bool collided) { on_tx_done(collided); })) {
  stats_.frames_queued.bind("datalink.mac.frames_queued");
  stats_.attempts.bind("datalink.mac.attempts");
  stats_.collisions.bind("datalink.mac.collisions");
  stats_.delivered_tx.bind("datalink.mac.delivered_tx");
  stats_.dropped.bind("datalink.mac.dropped");
  stats_.deferrals.bind("datalink.mac.deferrals");
  span_ = telemetry::SpanTracer::instance().intern("datalink.mac");
}

void MacStation::send(Bytes frame) {
  ++stats_.frames_queued;
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             frame.size());
  queue_.push_back(std::move(frame));
  if (!transmitting_ && !attempt_scheduled_) {
    attempts_ = 0;
    schedule_attempt(0);
  }
}

void MacStation::schedule_attempt(int backoff_slots) {
  attempt_scheduled_ = true;
  // Both engines are slotted: attempts land on slot boundaries so that
  // ALOHA contention behaves classically and CSMA re-senses periodically.
  sim_.schedule(config_.slot * static_cast<std::int64_t>(backoff_slots + 1),
                [this] {
                  attempt_scheduled_ = false;
                  try_transmit();
                });
}

void MacStation::try_transmit() {
  if (transmitting_ || queue_.empty()) return;

  if (config_.engine == MacEngine::kCsma && medium_.carrier_busy()) {
    ++stats_.deferrals;
    schedule_attempt(0);  // 1-persistent: re-sense next slot
    return;
  }

  ++stats_.attempts;
  transmitting_ = true;
  medium_.transmit(station_id_, queue_.front());
}

void MacStation::on_tx_done(bool collided) {
  transmitting_ = false;
  if (!collided) {
    ++stats_.delivered_tx;
    queue_.pop_front();
    attempts_ = 0;
    if (!queue_.empty()) schedule_attempt(0);
    return;
  }

  ++stats_.collisions;
  if (++attempts_ >= config_.max_attempts) {
    ++stats_.dropped;
    queue_.pop_front();
    attempts_ = 0;
    if (!queue_.empty()) schedule_attempt(0);
    return;
  }
  const int exponent = std::min(attempts_, config_.max_backoff_exponent);
  const auto slots = static_cast<int>(rng_.next_below(1ull << exponent));
  schedule_attempt(slots);
}

}  // namespace sublayer::datalink
