// Error-detection sublayer (Fig. 2): appends a tag to a frame so the
// receiver detects corruption with high probability.
//
// The sublayer contract: check_strip(protect(p)) == p, and for a corrupted
// frame check_strip returns nullopt with probability ~ 1 - 2^-tag_bits.
// The detector is swappable (CRC-32 -> CRC-64, §2.1) without any change to
// framing below or error recovery above.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sublayer::datalink {

class ErrorDetector {
 public:
  virtual ~ErrorDetector() = default;

  virtual std::string name() const = 0;
  virtual std::size_t tag_bytes() const = 0;

  /// Appends the tag over `data` (big-endian, tag_bytes() long) to `out`.
  /// Implementations must fully read `data` before appending, so callers
  /// may pass a view into `out` itself (after reserving).
  virtual void tag_into(ByteView data, Bytes& out) const = 0;

  /// Computes the tag over `data` (big-endian, tag_bytes() long).
  Bytes compute(ByteView data) const {
    Bytes tag;
    tag.reserve(tag_bytes());
    tag_into(data, tag);
    return tag;
  }

  /// data · tag.
  Bytes protect(ByteView data) const;

  /// Appends the tag to `frame` itself — the zero-copy form of protect()
  /// for a buffer the caller already owns.
  void protect_in_place(Bytes& frame) const;

  /// Verifies and strips the trailing tag; nullopt on mismatch/underflow.
  std::optional<Bytes> check_strip(ByteView protected_frame) const;

  /// Verifies and truncates the trailing tag off `frame` itself; returns
  /// false (leaving `frame` untouched) on mismatch/underflow.
  bool check_strip_in_place(Bytes& frame) const;
};

/// Generic table-driven CRC, parameterized in the Rocksoft model.
struct CrcSpec {
  std::string name;
  int width = 32;               // bits, <= 64
  std::uint64_t polynomial = 0; // normal (MSB-first) representation
  std::uint64_t init = 0;
  bool reflect_in = false;
  bool reflect_out = false;
  std::uint64_t xor_out = 0;

  static CrcSpec crc8();        // CRC-8/ATM (HEC)
  static CrcSpec crc16_ccitt(); // CRC-16/IBM-3740 (X.25/HDLC family)
  static CrcSpec crc32();       // CRC-32/ISO-HDLC (IEEE 802.3)
  static CrcSpec crc64();       // CRC-64/XZ (ECMA-182 reflected)
};

class CrcDetector final : public ErrorDetector {
 public:
  explicit CrcDetector(CrcSpec spec);

  std::string name() const override { return spec_.name; }
  std::size_t tag_bytes() const override {
    return static_cast<std::size_t>(spec_.width) / 8;
  }
  void tag_into(ByteView data, Bytes& out) const override;

  /// Raw CRC value (useful for tests against published check values).
  std::uint64_t value(ByteView data) const;

 private:
  std::uint64_t value_reflected(ByteView data) const;
  std::uint64_t value_clmul(ByteView data) const;

  CrcSpec spec_;
  std::uint64_t table_[256];
  // Fully-reflected specs (reflect_in && reflect_out, i.e. CRC-32/CRC-64)
  // additionally get reflected slice-by-8 tables: the state is kept in
  // reflected form so each byte is one table lookup instead of a reflect8
  // call, and 8-byte blocks fold through all eight tables at once.
  bool fast_reflected_ = false;
  std::uint64_t rtable_[8][256];
  // Carry-less-multiply folding (x86 PCLMULQDQ) for fully-reflected specs
  // of width <= 32: constants are derived from the spec at construction
  // (x^128 and x^192 mod P, via the reflected LFSR) and the path is only
  // enabled after a construction-time self-test against the table CRC, so
  // a wrong constant degrades to the portable path instead of corrupting.
  bool clmul_ok_ = false;
  std::uint64_t fold_k128_ = 0;
  std::uint64_t fold_k192_ = 0;
  // Long-stride constants (x^256 .. x^576 mod P) for the 4-way interleaved
  // fold: four independent accumulators hide the carry-less multiply
  // latency that serializes the 16-byte loop.  fold_long_[2*i], [2*i+1] =
  // the (x^(128 + 64*i), x^(192 + 64*i)) pair for stride/combine step i.
  std::uint64_t fold_long_[8] = {};
  // spec_.init reflected once at construction; both CRC paths start here.
  std::uint64_t init_reflected_ = 0;
};

/// The ones-complement 16-bit Internet checksum (RFC 1071).
std::unique_ptr<ErrorDetector> make_internet_checksum();
/// Fletcher-16.
std::unique_ptr<ErrorDetector> make_fletcher16();
/// Adler-32.
std::unique_ptr<ErrorDetector> make_adler32();
/// CRC factory helpers.
std::unique_ptr<ErrorDetector> make_crc8();
std::unique_ptr<ErrorDetector> make_crc16();
std::unique_ptr<ErrorDetector> make_crc32();
std::unique_ptr<ErrorDetector> make_crc64();

}  // namespace sublayer::datalink
