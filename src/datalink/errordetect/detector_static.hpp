// Static (compile-time) forms of the error-detection sublayer: each stage
// wraps a concrete (final) CrcDetector and re-states protect/check inline
// with qualified calls, so the fused pipeline's tag computation resolves
// straight into the slice-by-8 / PCLMULQDQ kernels with no vtable hop.
//
// Stage shape (the fused composer's `Detector` concept):
//   std::string name() const; std::size_t tag_bytes() const
//   void protect_in_place(Bytes&) const
//   bool check_strip_in_place(Bytes&) const
#pragma once

#include <algorithm>

#include "common/bytes.hpp"
#include "datalink/errordetect/detector.hpp"

namespace sublayer::datalink {

/// One static stage per CRC spec; the spec is a template argument so two
/// widths are two distinct pipeline instantiations.
template <CrcSpec (*Spec)()>
class CrcStage {
 public:
  CrcStage() : crc_(Spec()) {}

  std::string name() const { return crc_.CrcDetector::name(); }
  std::size_t tag_bytes() const { return crc_.CrcDetector::tag_bytes(); }

  /// Mirrors ErrorDetector::protect_in_place with a devirtualized tag.
  void protect_in_place(Bytes& frame) const {
    frame.reserve(frame.size() + crc_.CrcDetector::tag_bytes());
    crc_.CrcDetector::tag_into(ByteView(frame.data(), frame.size()), frame);
  }

  /// Mirrors ErrorDetector::check_strip_in_place (same thread-local
  /// scratch idiom: the steady-state receive path allocates nothing here).
  bool check_strip_in_place(Bytes& frame) const {
    const std::size_t t = crc_.CrcDetector::tag_bytes();
    if (frame.size() < t) return false;
    const std::size_t n = frame.size() - t;
    static thread_local Bytes scratch;
    scratch.clear();
    crc_.CrcDetector::tag_into(ByteView(frame.data(), n), scratch);
    if (scratch.size() != t ||
        !std::equal(scratch.begin(), scratch.end(),
                    frame.begin() + static_cast<std::ptrdiff_t>(n))) {
      return false;
    }
    frame.resize(n);
    return true;
  }

 private:
  CrcDetector crc_;
};

using Crc16Detector = CrcStage<&CrcSpec::crc16_ccitt>;
using Crc32Detector = CrcStage<&CrcSpec::crc32>;
using Crc64Detector = CrcStage<&CrcSpec::crc64>;

}  // namespace sublayer::datalink
