#include "datalink/errordetect/detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace sublayer::datalink {
namespace {

/// Recomputes the detector's tag over `body` and compares it to `tag`.
/// The scratch buffer is reused across calls, so the steady-state receive
/// path performs no allocation here.
bool tag_matches(const ErrorDetector& det, ByteView body, ByteView tag) {
  static thread_local Bytes scratch;
  scratch.clear();
  det.tag_into(body, scratch);
  return scratch.size() == tag.size() &&
         std::equal(scratch.begin(), scratch.end(), tag.begin());
}

std::uint8_t reflect8(std::uint8_t b) {
  b = static_cast<std::uint8_t>((b & 0xf0) >> 4 | (b & 0x0f) << 4);
  b = static_cast<std::uint8_t>((b & 0xcc) >> 2 | (b & 0x33) << 2);
  b = static_cast<std::uint8_t>((b & 0xaa) >> 1 | (b & 0x55) << 1);
  return b;
}

std::uint64_t reflect_bits(std::uint64_t v, int width) {
  std::uint64_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = r << 1 | (v & 1);
    v >>= 1;
  }
  return r;
}

std::uint64_t width_mask(int width) {
  return width == 64 ? ~0ull : (1ull << width) - 1;
}

}  // namespace

Bytes ErrorDetector::protect(ByteView data) const {
  Bytes out;
  out.reserve(data.size() + tag_bytes());
  out.assign(data.begin(), data.end());
  tag_into(out, out);  // safe: reserve above rules out reallocation
  return out;
}

void ErrorDetector::protect_in_place(Bytes& frame) const {
  frame.reserve(frame.size() + tag_bytes());
  tag_into(ByteView(frame.data(), frame.size()), frame);
}

std::optional<Bytes> ErrorDetector::check_strip(ByteView protected_frame) const {
  const std::size_t t = tag_bytes();
  if (protected_frame.size() < t) return std::nullopt;
  Bytes body(protected_frame.begin(),
             protected_frame.end() - static_cast<std::ptrdiff_t>(t));
  if (!tag_matches(*this, body, protected_frame.last(t))) return std::nullopt;
  return body;
}

bool ErrorDetector::check_strip_in_place(Bytes& frame) const {
  const std::size_t t = tag_bytes();
  if (frame.size() < t) return false;
  const std::size_t n = frame.size() - t;
  if (!tag_matches(*this, ByteView(frame.data(), n),
                   ByteView(frame.data() + n, t))) {
    return false;
  }
  frame.resize(n);
  return true;
}

CrcSpec CrcSpec::crc8() {
  return CrcSpec{"CRC-8", 8, 0x07, 0, false, false, 0};
}
CrcSpec CrcSpec::crc16_ccitt() {
  return CrcSpec{"CRC-16/CCITT", 16, 0x1021, 0xffff, false, false, 0};
}
CrcSpec CrcSpec::crc32() {
  return CrcSpec{"CRC-32",      32,   0x04c11db7, 0xffffffff,
                 true,          true, 0xffffffff};
}
CrcSpec CrcSpec::crc64() {
  return CrcSpec{"CRC-64/XZ",
                 64,
                 0x42f0e1eba9ea3693ull,
                 0xffffffffffffffffull,
                 true,
                 true,
                 0xffffffffffffffffull};
}

CrcDetector::CrcDetector(CrcSpec spec) : spec_(std::move(spec)) {
  if (spec_.width < 8 || spec_.width > 64 || spec_.width % 8 != 0) {
    throw std::invalid_argument("CRC width must be 8..64 and byte-aligned");
  }
  const std::uint64_t mask = width_mask(spec_.width);
  const std::uint64_t top = 1ull << (spec_.width - 1);
  for (int b = 0; b < 256; ++b) {
    std::uint64_t r = static_cast<std::uint64_t>(b)
                      << (spec_.width - 8);
    for (int i = 0; i < 8; ++i) {
      r = (r & top) != 0 ? (r << 1 ^ spec_.polynomial) : r << 1;
    }
    table_[b] = r & mask;
  }
}

std::uint64_t CrcDetector::value(ByteView data) const {
  const std::uint64_t mask = width_mask(spec_.width);
  std::uint64_t crc = spec_.init & mask;
  for (std::uint8_t byte : data) {
    if (spec_.reflect_in) byte = reflect8(byte);
    const auto idx =
        static_cast<std::uint8_t>((crc >> (spec_.width - 8)) ^ byte);
    crc = (crc << 8 ^ table_[idx]) & mask;
  }
  if (spec_.reflect_out) crc = reflect_bits(crc, spec_.width);
  return (crc ^ spec_.xor_out) & mask;
}

void CrcDetector::tag_into(ByteView data, Bytes& out) const {
  const std::uint64_t v = value(data);
  ByteWriter w(out);
  for (int shift = spec_.width - 8; shift >= 0; shift -= 8) {
    w.u8(static_cast<std::uint8_t>(v >> shift));
  }
}

namespace {

class InternetChecksum final : public ErrorDetector {
 public:
  std::string name() const override { return "inet-16"; }
  std::size_t tag_bytes() const override { return 2; }

  void tag_into(ByteView data, Bytes& out) const override {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
      sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    }
    if (data.size() % 2 != 0) {
      sum += static_cast<std::uint32_t>(data.back()) << 8;
    }
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    ByteWriter(out).u16(static_cast<std::uint16_t>(~sum));
  }
};

class Fletcher16 final : public ErrorDetector {
 public:
  std::string name() const override { return "fletcher-16"; }
  std::size_t tag_bytes() const override { return 2; }

  void tag_into(ByteView data, Bytes& out) const override {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    for (std::uint8_t byte : data) {
      a = (a + byte) % 255;
      b = (b + a) % 255;
    }
    ByteWriter(out).u16(static_cast<std::uint16_t>(b << 8 | a));
  }
};

class Adler32 final : public ErrorDetector {
 public:
  std::string name() const override { return "adler-32"; }
  std::size_t tag_bytes() const override { return 4; }

  void tag_into(ByteView data, Bytes& out) const override {
    constexpr std::uint32_t kMod = 65521;
    std::uint32_t a = 1;
    std::uint32_t b = 0;
    for (std::uint8_t byte : data) {
      a = (a + byte) % kMod;
      b = (b + a) % kMod;
    }
    ByteWriter(out).u32(b << 16 | a);
  }
};

}  // namespace

std::unique_ptr<ErrorDetector> make_internet_checksum() {
  return std::make_unique<InternetChecksum>();
}
std::unique_ptr<ErrorDetector> make_fletcher16() {
  return std::make_unique<Fletcher16>();
}
std::unique_ptr<ErrorDetector> make_adler32() {
  return std::make_unique<Adler32>();
}
std::unique_ptr<ErrorDetector> make_crc8() {
  return std::make_unique<CrcDetector>(CrcSpec::crc8());
}
std::unique_ptr<ErrorDetector> make_crc16() {
  return std::make_unique<CrcDetector>(CrcSpec::crc16_ccitt());
}
std::unique_ptr<ErrorDetector> make_crc32() {
  return std::make_unique<CrcDetector>(CrcSpec::crc32());
}
std::unique_ptr<ErrorDetector> make_crc64() {
  return std::make_unique<CrcDetector>(CrcSpec::crc64());
}

}  // namespace sublayer::datalink
