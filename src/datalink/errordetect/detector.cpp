#include "datalink/errordetect/detector.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SUBLAYER_HAS_CLMUL_PATH 1
#endif

namespace sublayer::datalink {
namespace {

/// Recomputes the detector's tag over `body` and compares it to `tag`.
/// The scratch buffer is reused across calls, so the steady-state receive
/// path performs no allocation here.
bool tag_matches(const ErrorDetector& det, ByteView body, ByteView tag) {
  static thread_local Bytes scratch;
  scratch.clear();
  det.tag_into(body, scratch);
  return scratch.size() == tag.size() &&
         std::equal(scratch.begin(), scratch.end(), tag.begin());
}

std::uint8_t reflect8(std::uint8_t b) {
  b = static_cast<std::uint8_t>((b & 0xf0) >> 4 | (b & 0x0f) << 4);
  b = static_cast<std::uint8_t>((b & 0xcc) >> 2 | (b & 0x33) << 2);
  b = static_cast<std::uint8_t>((b & 0xaa) >> 1 | (b & 0x55) << 1);
  return b;
}

std::uint64_t reflect_bits(std::uint64_t v, int width) {
  std::uint64_t r = 0;
  for (int i = 0; i < width; ++i) {
    r = r << 1 | (v & 1);
    v >>= 1;
  }
  return r;
}

std::uint64_t width_mask(int width) {
  return width == 64 ? ~0ull : (1ull << width) - 1;
}

/// Loads 8 bytes little-endian: byte 0 lands in the low lane, which is the
/// lane a reflected CRC consumes first.
std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return __builtin_bswap64(w);
#else
  return w;
#endif
}

#ifdef SUBLAYER_HAS_CLMUL_PATH

/// Folds `data` (n >= 32) down to a 128-bit congruent remainder with one
/// carry-less multiply pair per 16 bytes, then finishes with the reflected
/// byte table.  Layout: an LE-loaded 16-byte block has stream bit s at
/// register bit s, i.e. register bit k holds the coefficient of x^(127-k),
/// so the low qword (earlier bytes, higher powers) pairs with x^192 and the
/// high qword with x^128.  The constants carry an extra factor of x (the
/// `<< 1` at derivation) absorbing the reflected-clmul off-by-one, and each
/// product (<= 97 bits) is realigned with a 4-byte lane shift.
__attribute__((target("pclmul,sse2"))) std::uint64_t crc_fold_clmul(
    const std::uint8_t* p, std::size_t n, std::uint64_t init_reflected,
    std::uint64_t k192, std::uint64_t k128,
    const std::uint64_t (*rt)[256]) {
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  // Seeding the init into the first width bits of the stream is equivalent
  // to starting the LFSR from init (both add init * x^(8n - width)).
  x = _mm_xor_si128(x, _mm_cvtsi64_si128(static_cast<long long>(init_reflected)));
  const __m128i k = _mm_set_epi64x(static_cast<long long>(k128),
                                   static_cast<long long>(k192));
  p += 16;
  n -= 16;
  while (n >= 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i c = _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                                    _mm_clmulepi64_si128(x, k, 0x11));
    x = _mm_xor_si128(_mm_slli_si128(c, 4), d);
    p += 16;
    n -= 16;
  }
  alignas(16) std::uint8_t buf[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(buf), x);
  std::uint64_t crc = 0;  // init already folded into x above
  for (int i = 0; i < 16; i += 8) {  // slice-by-8 over the remainder
    std::uint64_t w;
    std::memcpy(&w, buf + i, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    const std::uint64_t v = crc ^ w;
    crc = rt[7][v & 0xff] ^ rt[6][(v >> 8) & 0xff] ^ rt[5][(v >> 16) & 0xff] ^
          rt[4][(v >> 24) & 0xff] ^ rt[3][(v >> 32) & 0xff] ^
          rt[2][(v >> 40) & 0xff] ^ rt[1][(v >> 48) & 0xff] ^ rt[0][v >> 56];
  }
  for (; n != 0; ++p, --n) crc = (crc >> 8) ^ rt[0][(crc ^ *p) & 0xff];
  return crc;
}

/// One 16-byte fold step: multiply accumulator `x` by the distance
/// constant pair `k` and realign (lambdas don't inherit the enclosing
/// function's target attribute, hence the free function).
__attribute__((target("pclmul,sse2"), always_inline)) inline __m128i
crc_fold_step(__m128i x, __m128i k) {
  return _mm_slli_si128(_mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                                      _mm_clmulepi64_si128(x, k, 0x11)),
                        4);
}

/// Four-accumulator fold for n >= 64.  The 16-byte loop above is a serial
/// dependency chain — every fold waits out the carry-less multiply latency
/// of the previous one.  Striding 64 bytes with four independent
/// accumulators runs the multiplies back to back; the accumulators are
/// merged with one 48/32/16-byte fold each at the end.  `lk` holds the
/// (x^(128+64i), x^(192+64i)) constant pairs: lk[0..1] is the 16-byte pair
/// of the loop above, lk[6..7] the 64-byte stride of this one.
__attribute__((target("pclmul,sse2"))) std::uint64_t crc_fold_clmul_x4(
    const std::uint8_t* p, std::size_t n, std::uint64_t init_reflected,
    const std::uint64_t* lk, const std::uint64_t (*rt)[256]) {
  const auto fold = crc_fold_step;
  __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  x0 = _mm_xor_si128(x0,
                     _mm_cvtsi64_si128(static_cast<long long>(init_reflected)));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  const __m128i k64 = _mm_set_epi64x(static_cast<long long>(lk[6]),
                                     static_cast<long long>(lk[7]));
  p += 64;
  n -= 64;
  while (n >= 64) {
    x0 = _mm_xor_si128(
        fold(x0, k64),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    x1 = _mm_xor_si128(
        fold(x1, k64),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
    x2 = _mm_xor_si128(
        fold(x2, k64),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)));
    x3 = _mm_xor_si128(
        fold(x3, k64),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)));
    p += 64;
    n -= 64;
  }
  // Merge: x0..x2 sit 48/32/16 bytes ahead of x3's stream position.
  const __m128i k48 = _mm_set_epi64x(static_cast<long long>(lk[4]),
                                     static_cast<long long>(lk[5]));
  const __m128i k32 = _mm_set_epi64x(static_cast<long long>(lk[2]),
                                     static_cast<long long>(lk[3]));
  const __m128i k16 = _mm_set_epi64x(static_cast<long long>(lk[0]),
                                     static_cast<long long>(lk[1]));
  __m128i x = _mm_xor_si128(
      _mm_xor_si128(x3, fold(x0, k48)),
      _mm_xor_si128(fold(x1, k32), fold(x2, k16)));
  while (n >= 16) {
    x = _mm_xor_si128(
        fold(x, k16),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  alignas(16) std::uint8_t buf[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(buf), x);
  std::uint64_t crc = 0;  // init already folded into x0 above
  for (int i = 0; i < 16; i += 8) {  // slice-by-8 over the remainder
    std::uint64_t w;
    std::memcpy(&w, buf + i, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    const std::uint64_t v = crc ^ w;
    crc = rt[7][v & 0xff] ^ rt[6][(v >> 8) & 0xff] ^ rt[5][(v >> 16) & 0xff] ^
          rt[4][(v >> 24) & 0xff] ^ rt[3][(v >> 32) & 0xff] ^
          rt[2][(v >> 40) & 0xff] ^ rt[1][(v >> 48) & 0xff] ^ rt[0][v >> 56];
  }
  for (; n != 0; ++p, --n) crc = (crc >> 8) ^ rt[0][(crc ^ *p) & 0xff];
  return crc;
}

#endif  // SUBLAYER_HAS_CLMUL_PATH

}  // namespace

Bytes ErrorDetector::protect(ByteView data) const {
  Bytes out;
  out.reserve(data.size() + tag_bytes());
  out.assign(data.begin(), data.end());
  tag_into(out, out);  // safe: reserve above rules out reallocation
  return out;
}

void ErrorDetector::protect_in_place(Bytes& frame) const {
  frame.reserve(frame.size() + tag_bytes());
  tag_into(ByteView(frame.data(), frame.size()), frame);
}

std::optional<Bytes> ErrorDetector::check_strip(ByteView protected_frame) const {
  const std::size_t t = tag_bytes();
  if (protected_frame.size() < t) return std::nullopt;
  Bytes body(protected_frame.begin(),
             protected_frame.end() - static_cast<std::ptrdiff_t>(t));
  if (!tag_matches(*this, body, protected_frame.last(t))) return std::nullopt;
  return body;
}

bool ErrorDetector::check_strip_in_place(Bytes& frame) const {
  const std::size_t t = tag_bytes();
  if (frame.size() < t) return false;
  const std::size_t n = frame.size() - t;
  if (!tag_matches(*this, ByteView(frame.data(), n),
                   ByteView(frame.data() + n, t))) {
    return false;
  }
  frame.resize(n);
  return true;
}

CrcSpec CrcSpec::crc8() {
  return CrcSpec{"CRC-8", 8, 0x07, 0, false, false, 0};
}
CrcSpec CrcSpec::crc16_ccitt() {
  return CrcSpec{"CRC-16/CCITT", 16, 0x1021, 0xffff, false, false, 0};
}
CrcSpec CrcSpec::crc32() {
  return CrcSpec{"CRC-32",      32,   0x04c11db7, 0xffffffff,
                 true,          true, 0xffffffff};
}
CrcSpec CrcSpec::crc64() {
  return CrcSpec{"CRC-64/XZ",
                 64,
                 0x42f0e1eba9ea3693ull,
                 0xffffffffffffffffull,
                 true,
                 true,
                 0xffffffffffffffffull};
}

CrcDetector::CrcDetector(CrcSpec spec) : spec_(std::move(spec)) {
  if (spec_.width < 8 || spec_.width > 64 || spec_.width % 8 != 0) {
    throw std::invalid_argument("CRC width must be 8..64 and byte-aligned");
  }
  const std::uint64_t mask = width_mask(spec_.width);
  init_reflected_ = reflect_bits(spec_.init & mask, spec_.width);
  const std::uint64_t top = 1ull << (spec_.width - 1);
  for (int b = 0; b < 256; ++b) {
    std::uint64_t r = static_cast<std::uint64_t>(b)
                      << (spec_.width - 8);
    for (int i = 0; i < 8; ++i) {
      r = (r & top) != 0 ? (r << 1 ^ spec_.polynomial) : r << 1;
    }
    table_[b] = r & mask;
  }
  fast_reflected_ = spec_.reflect_in && spec_.reflect_out;
  if (fast_reflected_) {
    // Reflected base table: the classic LSB-first recurrence over the
    // reflected polynomial.  By construction rtable_[0][reflect8(b)] ==
    // reflect(table_[b]), so the reflected loop computes exactly the same
    // function as the generic loop below — published check values prove it.
    const std::uint64_t rpoly = reflect_bits(spec_.polynomial, spec_.width);
    for (int b = 0; b < 256; ++b) {
      std::uint64_t r = static_cast<std::uint64_t>(b);
      for (int i = 0; i < 8; ++i) {
        r = (r & 1) != 0 ? (r >> 1) ^ rpoly : r >> 1;
      }
      rtable_[0][b] = r;
    }
    // rtable_[k][b] = state after byte b followed by k zero bytes; lets an
    // 8-byte block fold in one pass (slice-by-8).
    for (int k = 1; k < 8; ++k) {
      for (int b = 0; b < 256; ++b) {
        const std::uint64_t prev = rtable_[k - 1][b];
        rtable_[k][b] = (prev >> 8) ^ rtable_[0][prev & 0xff];
      }
    }
  }
#ifdef SUBLAYER_HAS_CLMUL_PATH
  if (fast_reflected_ && spec_.width <= 32 &&
      __builtin_cpu_supports("pclmul")) {
    // x^N mod P, reflected: start from x^0 (top bit of the reflected
    // register) and clock the LFSR N bits via the zero-byte table step.
    // The << 1 adds the factor of x that cancels the one-bit shortfall of
    // multiplying two reflected values with a carry-less multiply.
    std::uint64_t s = 1ull << (spec_.width - 1);
    for (int i = 0; i < 16; ++i) s = (s >> 8) ^ rtable_[0][s & 0xff];
    fold_k128_ = s << 1;
    for (int i = 0; i < 8; ++i) s = (s >> 8) ^ rtable_[0][s & 0xff];
    fold_k192_ = s << 1;
    // Keep clocking for the 4-way fold's long strides: fold_long_ holds
    // x^128, x^192, ..., x^576 (each << 1), i.e. the (x^(8D), x^(8D+64))
    // pairs for distances D = 16, 32, 48, 64 bytes.
    fold_long_[0] = fold_k128_;
    fold_long_[1] = fold_k192_;
    for (int j = 2; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) s = (s >> 8) ^ rtable_[0][s & 0xff];
      fold_long_[j] = s << 1;
    }
    // Trust the folded path only if it reproduces the table CRC on probe
    // lengths covering the >=2-block loop, the 4-way stride loop, the
    // merge at every residue mod 64, and ragged tails.
    Bytes probe(301);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    clmul_ok_ = true;
    for (std::size_t len : {32u, 48u, 63u, 64u, 80u, 101u, 128u, 192u, 193u,
                            255u, 265u, 301u}) {
      const ByteView v(probe.data(), len);
      if (value_clmul(v) != value_reflected(v)) {
        clmul_ok_ = false;
        break;
      }
    }
  }
#endif
}

std::uint64_t CrcDetector::value_clmul(ByteView data) const {
#ifdef SUBLAYER_HAS_CLMUL_PATH
  const std::uint64_t crc =
      data.size() >= 64
          ? crc_fold_clmul_x4(data.data(), data.size(), init_reflected_,
                              fold_long_, rtable_)
          : crc_fold_clmul(data.data(), data.size(), init_reflected_,
                           fold_k192_, fold_k128_, rtable_);
  return (crc ^ spec_.xor_out) & width_mask(spec_.width);
#else
  return value_reflected(data);
#endif
}

std::uint64_t CrcDetector::value_reflected(ByteView data) const {
  std::uint64_t crc = init_reflected_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  for (; n >= 8; p += 8, n -= 8) {
    const std::uint64_t x = crc ^ load_le64(p);
    crc = rtable_[7][x & 0xff] ^ rtable_[6][(x >> 8) & 0xff] ^
          rtable_[5][(x >> 16) & 0xff] ^ rtable_[4][(x >> 24) & 0xff] ^
          rtable_[3][(x >> 32) & 0xff] ^ rtable_[2][(x >> 40) & 0xff] ^
          rtable_[1][(x >> 48) & 0xff] ^ rtable_[0][x >> 56];
  }
  for (; n != 0; ++p, --n) {
    crc = (crc >> 8) ^ rtable_[0][(crc ^ *p) & 0xff];
  }
  // State is already reflected, so reflect_out is a no-op here.
  return (crc ^ spec_.xor_out) & width_mask(spec_.width);
}

std::uint64_t CrcDetector::value(ByteView data) const {
  if (clmul_ok_ && data.size() >= 32) return value_clmul(data);
  if (fast_reflected_) return value_reflected(data);
  const std::uint64_t mask = width_mask(spec_.width);
  std::uint64_t crc = spec_.init & mask;
  for (std::uint8_t byte : data) {
    if (spec_.reflect_in) byte = reflect8(byte);
    const auto idx =
        static_cast<std::uint8_t>((crc >> (spec_.width - 8)) ^ byte);
    crc = (crc << 8 ^ table_[idx]) & mask;
  }
  if (spec_.reflect_out) crc = reflect_bits(crc, spec_.width);
  return (crc ^ spec_.xor_out) & mask;
}

void CrcDetector::tag_into(ByteView data, Bytes& out) const {
  const std::uint64_t v = value(data);
  ByteWriter w(out);
  for (int shift = spec_.width - 8; shift >= 0; shift -= 8) {
    w.u8(static_cast<std::uint8_t>(v >> shift));
  }
}

namespace {

class InternetChecksum final : public ErrorDetector {
 public:
  std::string name() const override { return "inet-16"; }
  std::size_t tag_bytes() const override { return 2; }

  void tag_into(ByteView data, Bytes& out) const override {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
      sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
    }
    if (data.size() % 2 != 0) {
      sum += static_cast<std::uint32_t>(data.back()) << 8;
    }
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    ByteWriter(out).u16(static_cast<std::uint16_t>(~sum));
  }
};

class Fletcher16 final : public ErrorDetector {
 public:
  std::string name() const override { return "fletcher-16"; }
  std::size_t tag_bytes() const override { return 2; }

  void tag_into(ByteView data, Bytes& out) const override {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    for (std::uint8_t byte : data) {
      a = (a + byte) % 255;
      b = (b + a) % 255;
    }
    ByteWriter(out).u16(static_cast<std::uint16_t>(b << 8 | a));
  }
};

class Adler32 final : public ErrorDetector {
 public:
  std::string name() const override { return "adler-32"; }
  std::size_t tag_bytes() const override { return 4; }

  void tag_into(ByteView data, Bytes& out) const override {
    constexpr std::uint32_t kMod = 65521;
    std::uint32_t a = 1;
    std::uint32_t b = 0;
    for (std::uint8_t byte : data) {
      a = (a + byte) % kMod;
      b = (b + a) % kMod;
    }
    ByteWriter(out).u32(b << 16 | a);
  }
};

}  // namespace

std::unique_ptr<ErrorDetector> make_internet_checksum() {
  return std::make_unique<InternetChecksum>();
}
std::unique_ptr<ErrorDetector> make_fletcher16() {
  return std::make_unique<Fletcher16>();
}
std::unique_ptr<ErrorDetector> make_adler32() {
  return std::make_unique<Adler32>();
}
std::unique_ptr<ErrorDetector> make_crc8() {
  return std::make_unique<CrcDetector>(CrcSpec::crc8());
}
std::unique_ptr<ErrorDetector> make_crc16() {
  return std::make_unique<CrcDetector>(CrcSpec::crc16_ccitt());
}
std::unique_ptr<ErrorDetector> make_crc32() {
  return std::make_unique<CrcDetector>(CrcSpec::crc32());
}
std::unique_ptr<ErrorDetector> make_crc64() {
  return std::make_unique<CrcDetector>(CrcSpec::crc64());
}

}  // namespace sublayer::datalink
