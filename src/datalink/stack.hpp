// The composed data-link stack of Fig. 2:
//
//   upper service:  reliable in-order frame delivery
//   ┌──────────────────────────────┐
//   │ error recovery   (ARQ)       │  swappable: S&W / GBN / SR
//   │ error detection  (tag)       │  swappable: CRC-8/16/32/64, inet, ...
//   │ framing          (stuffing)  │  swappable: stuffing rule
//   │ encoding         (line code) │  swappable: NRZ / NRZI / Manchester /
//   └──────────────────────────────┘             4B5B
//   lower substrate: an unreliable simulated bit pipe (sim::Link)
//
// Each sublayer talks only to its neighbours through the narrow interfaces
// above (T2) and owns its own bits of the frame (T3): ARQ's header is
// inside the CRC-protected region, the CRC tag is inside the framed
// region, and the line code sees only opaque channel bits.
#pragma once

#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "datalink/arq/arq.hpp"
#include "datalink/errordetect/detector.hpp"
#include "datalink/framing/stuffing.hpp"
#include "phy/linecode.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::datalink {

/// Packs a bit string into bytes with a 32-bit bit-count prefix, so a byte
/// channel can carry arbitrary-length bit streams.
Bytes pack_bits(const BitString& bits);
std::optional<BitString> unpack_bits(ByteView raw);

struct StackConfig {
  StuffingRule stuffing = StuffingRule::hdlc();
  ArqConfig arq;
  /// Engine names: "stop-and-wait", "go-back-n", "selective-repeat".
  std::string arq_engine = "selective-repeat";
};

/// Registry-backed (`datalink.<sublayer>.*`); reads stay per-instance.
struct StackStats {
  telemetry::Counter phy_decode_failures;
  telemetry::Counter deframe_failures;
  telemetry::Counter checksum_failures;
  telemetry::Counter frames_up;  // frames that survived to the ARQ sublayer
  // Per-sublayer activity, so lossless runs still show work done.
  telemetry::Counter frames_encoded;   // phy: line-coded for the wire
  telemetry::Counter frames_decoded;   // phy: channel bits recovered
  telemetry::Counter frames_framed;    // framing: stuffed + flagged
  telemetry::Counter frames_deframed;  // framing: flags stripped, unstuffed
  telemetry::Counter frames_tagged;    // errordetect: tag appended
  telemetry::Counter frames_checked;   // errordetect: tag verified + stripped
};

/// The sub-ARQ data plane: error detection over framing over line coding.
/// Owns the per-sublayer stats and span instrumentation for those three
/// seams, and threads ONE buffer through the byte-granular boundaries —
/// down() appends the tag in place on the moved frame, up() verifies and
/// truncates it in place — so crossing a sublayer boundary costs a tracer
/// tick, not an allocation.  Factored out of the endpoint so benchmarks
/// can drive the pipeline directly, without ARQ or a simulator.
class DataPlane {
 public:
  DataPlane(std::unique_ptr<phy::LineCode> code,
            std::unique_ptr<ErrorDetector> detector, StuffingRule stuffing);

  /// detect → frame → encode: an ARQ frame becomes a wire frame.
  Bytes down(Bytes arq_frame);
  /// decode → deframe → check: a wire frame becomes a clean ARQ frame,
  /// or nullopt (with the failing sublayer's counter bumped).
  std::optional<Bytes> up(ByteView raw);

  const StackStats& stats() const { return stats_; }
  const phy::LineCode& code() const { return *code_; }
  const ErrorDetector& detector() const { return *detector_; }

 private:
  std::unique_ptr<phy::LineCode> code_;
  std::unique_ptr<ErrorDetector> detector_;
  StuffingRule stuffing_;
  StackStats stats_;
  // Interned boundary ids for the span tracer, one per sublayer seam.
  std::uint32_t errdet_span_ = 0;   // error detection <-> framing
  std::uint32_t framing_span_ = 0;  // framing <-> encoding
  std::uint32_t phy_span_ = 0;      // encoding <-> wire
};

/// One endpoint of a data-link connection over a raw sim::Link pair.
class DatalinkEndpoint {
 public:
  using Deliver = std::function<void(Bytes)>;

  DatalinkEndpoint(sim::Simulator& sim, std::unique_ptr<phy::LineCode> code,
                   std::unique_ptr<ErrorDetector> detector,
                   const StackConfig& config);

  /// Wires the raw transmit path (towards the peer's on_wire_frame).
  void set_wire_sink(std::function<void(Bytes)> sink);
  /// Feeds a raw frame received from the wire (attach as Link receiver).
  void on_wire_frame(Bytes raw);

  void set_deliver(Deliver d);
  /// Sends a payload with the full reliable-delivery service.
  bool send(Bytes payload);
  /// Re-baselines the ARQ sublayer after sequence-state divergence (see
  /// ArqEndpoint::resync); the sublayers below carry no connection state
  /// and need no part in it.
  void resync() { arq_->resync(); }
  bool idle() const { return arq_->idle(); }

  const StackStats& stats() const { return plane_.stats(); }
  const ArqStats& arq_stats() const { return arq_->stats(); }

 private:
  DataPlane plane_;
  std::unique_ptr<ArqEndpoint> arq_;
  std::function<void(Bytes)> wire_sink_;
  // Interned boundary ids for the seams the endpoint itself owns.
  std::uint32_t link_span_ = 0;  // service boundary (send/deliver)
  std::uint32_t arq_span_ = 0;   // ARQ <-> error detection
};

/// Convenience: two endpoints wired across a DuplexLink.
class DatalinkPair {
 public:
  DatalinkPair(sim::Simulator& sim, const sim::LinkConfig& link_config,
               Rng& rng, const StackConfig& config,
               std::unique_ptr<phy::LineCode> code_a,
               std::unique_ptr<ErrorDetector> det_a,
               std::unique_ptr<phy::LineCode> code_b,
               std::unique_ptr<ErrorDetector> det_b);

  DatalinkEndpoint& a() { return a_; }
  DatalinkEndpoint& b() { return b_; }
  sim::DuplexLink& link() { return link_; }

 private:
  sim::DuplexLink link_;
  DatalinkEndpoint a_;
  DatalinkEndpoint b_;
};

}  // namespace sublayer::datalink
