// The composed data-link stack of Fig. 2:
//
//   upper service:  reliable in-order frame delivery
//   ┌──────────────────────────────┐
//   │ error recovery   (ARQ)       │  swappable: S&W / GBN / SR
//   │ error detection  (tag)       │  swappable: CRC-8/16/32/64, inet, ...
//   │ framing          (stuffing)  │  swappable: stuffing rule
//   │ encoding         (line code) │  swappable: NRZ / NRZI / Manchester /
//   └──────────────────────────────┘             4B5B
//   lower substrate: an unreliable simulated bit pipe (sim::Link)
//
// Each sublayer talks only to its neighbours through the narrow interfaces
// above (T2) and owns its own bits of the frame (T3): ARQ's header is
// inside the CRC-protected region, the CRC tag is inside the framed
// region, and the line code sees only opaque channel bits.
#pragma once

#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "datalink/arq/arq.hpp"
#include "datalink/errordetect/detector.hpp"
#include "datalink/framing/stuffing.hpp"
#include "phy/linecode.hpp"
#include "sim/link.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::datalink {

/// Packs a bit string into bytes with a 32-bit bit-count prefix, so a byte
/// channel can carry arbitrary-length bit streams.
Bytes pack_bits(const BitString& bits);
std::optional<BitString> unpack_bits(ByteView raw);

struct StackConfig {
  StuffingRule stuffing = StuffingRule::hdlc();
  ArqConfig arq;
  /// Engine names: "stop-and-wait", "go-back-n", "selective-repeat".
  std::string arq_engine = "selective-repeat";
  /// Wire the endpoints to the link through the batched paths (burst
  /// receive via Link::set_batch_receiver, transmit via send_batch), so a
  /// burst of deliveries crosses the sublayers stage-by-stage in one
  /// visit.  Off: classic per-frame wiring — the replay baseline.
  bool batched_wire = false;
  /// Run the sub-ARQ data plane as a compile-time fused pipeline (one
  /// inlined code path per code x detector combination, registered in
  /// datalink/fused/registry.cpp) instead of per-sublayer virtual
  /// dispatch.  Trace-invisible by contract: wires, taps, span crossings,
  /// and counters are byte-for-byte identical to the dynamic plane (the
  /// fused equivalence suite pins this), so the flag is purely a
  /// performance choice.  Combinations without a registered fused
  /// instantiation fall back to the dynamic plane.
  bool fused = false;
};

/// Registry-backed (`datalink.<sublayer>.*`); reads stay per-instance.
struct StackStats {
  telemetry::Counter phy_decode_failures;
  telemetry::Counter deframe_failures;
  telemetry::Counter checksum_failures;
  telemetry::Counter frames_up;  // frames that survived to the ARQ sublayer
  // Per-sublayer activity, so lossless runs still show work done.
  telemetry::Counter frames_encoded;   // phy: line-coded for the wire
  telemetry::Counter frames_decoded;   // phy: channel bits recovered
  telemetry::Counter frames_framed;    // framing: stuffed + flagged
  telemetry::Counter frames_deframed;  // framing: flags stripped, unstuffed
  telemetry::Counter frames_tagged;    // errordetect: tag appended
  telemetry::Counter frames_checked;   // errordetect: tag verified + stripped
};

/// The three ways a frame can die on the way up, one per sublayer.  All
/// receive paths — per-frame, batched, and fused — report failures through
/// count_up_failure so the counter semantics cannot drift between them.
enum class UpFailure {
  kPhyDecode,  // symbol stream unparseable / bad length prefix
  kDeframe,    // bad flags or inconsistent stuffed stream
  kChecksum,   // tag mismatch
};

inline void count_up_failure(StackStats& stats, UpFailure which) {
  switch (which) {
    case UpFailure::kPhyDecode:
      ++stats.phy_decode_failures;
      break;
    case UpFailure::kDeframe:
      ++stats.deframe_failures;
      break;
    case UpFailure::kChecksum:
      ++stats.checksum_failures;
      break;
  }
}

/// The type-erasure seam between the endpoint and the data plane: ONE
/// virtual hop at the top of the plane (instead of one per sublayer
/// boundary), behind which either the dynamic DataPlane or a fused
/// compile-time pipeline (datalink/fused/pipeline.hpp) runs.  Everything
/// observable — wires, taps, spans, counters, arena recycling — is
/// identical across implementations.
class DataPlaneIface {
 public:
  virtual ~DataPlaneIface() = default;

  virtual Bytes down(Bytes arq_frame) = 0;
  virtual std::optional<Bytes> up(ByteView raw) = 0;
  virtual void down_batch(std::vector<Bytes>& arq_frames,
                          std::vector<Bytes>& wire_out) = 0;
  virtual void up_batch(std::vector<Bytes>& raws,
                        std::vector<Bytes>& out) = 0;
  virtual FrameArena& arena() = 0;
  virtual const StackStats& stats() const = 0;
  /// True on compile-time fused implementations (diagnostics only — the
  /// two paths are observably identical by contract).
  virtual bool fused() const = 0;
  virtual std::string code_name() const = 0;
  virtual std::string detector_name() const = 0;
};

/// Builds the data plane an endpoint runs on: a fused pipeline when
/// `fused` is set and the (code, detector) combination has a registered
/// compile-time instantiation, else the dynamic DataPlane.  Defined in
/// datalink/fused/registry.cpp.
std::unique_ptr<DataPlaneIface> make_data_plane(
    std::unique_ptr<phy::LineCode> code,
    std::unique_ptr<ErrorDetector> detector, const StuffingRule& stuffing,
    bool fused);

/// The sub-ARQ data plane: error detection over framing over line coding.
/// Owns the per-sublayer stats and span instrumentation for those three
/// seams, and threads ONE buffer through the byte-granular boundaries —
/// down() appends the tag in place on the moved frame, up() verifies and
/// truncates it in place — so crossing a sublayer boundary costs a tracer
/// tick, not an allocation.  Factored out of the endpoint so benchmarks
/// can drive the pipeline directly, without ARQ or a simulator.
class DataPlane final : public DataPlaneIface {
 public:
  DataPlane(std::unique_ptr<phy::LineCode> code,
            std::unique_ptr<ErrorDetector> detector, StuffingRule stuffing);

  /// detect → frame → encode: an ARQ frame becomes a wire frame.
  Bytes down(Bytes arq_frame) override;
  /// decode → deframe → check: a wire frame becomes a clean ARQ frame,
  /// or nullopt (with the failing sublayer's counter bumped).
  std::optional<Bytes> up(ByteView raw) override;

  /// Vectorized down(): pushes the whole batch through each sublayer in
  /// turn (tag xN, then frame xN, then encode xN), appending one wire
  /// frame per input to `wire_out`.  Byte-identical output, taps, span
  /// crossings, and counters to N down() calls — taps merely group by
  /// stage instead of by frame (same virtual timestamp either way).
  /// Consumed input buffers are recycled into the arena; steady state
  /// runs allocation-free once the pools are warm.
  void down_batch(std::vector<Bytes>& arq_frames,
                  std::vector<Bytes>& wire_out) override;

  /// Vectorized up(): survivors (frames that clear all three sublayers)
  /// append to `out` in input order; failures bump the failing sublayer's
  /// counter exactly as up() does.  Consumed raw buffers are recycled.
  void up_batch(std::vector<Bytes>& raws, std::vector<Bytes>& out) override;

  /// Buffer pool the batched paths recycle through; the ARQ engine above
  /// shares it (ArqConfig::arena), closing the loop: frames it emits come
  /// back here once their bits are on the wire.
  FrameArena& arena() override { return arena_; }

  const StackStats& stats() const override { return stats_; }
  bool fused() const override { return false; }
  std::string code_name() const override { return code_->name(); }
  std::string detector_name() const override { return detector_->name(); }
  const phy::LineCode& code() const { return *code_; }
  const ErrorDetector& detector() const { return *detector_; }

 private:
  std::unique_ptr<phy::LineCode> code_;
  std::unique_ptr<ErrorDetector> detector_;
  StuffingRule stuffing_;
  StackStats stats_;
  FrameArena arena_;
  // Stage hand-off scratch for the batched paths, reused across bursts.
  std::vector<BitString> batch_chan_;  // channel bits per in-flight frame
  std::vector<std::size_t> batch_len_;  // up: parsed body bit-length
  std::vector<BitString> batch_body_;  // up: deframed (still tagged) bits
  // Interned boundary ids for the span tracer, one per sublayer seam.
  std::uint32_t errdet_span_ = 0;   // error detection <-> framing
  std::uint32_t framing_span_ = 0;  // framing <-> encoding
  std::uint32_t phy_span_ = 0;      // encoding <-> wire
};

/// One endpoint of a data-link connection over a raw sim::Link pair.
class DatalinkEndpoint {
 public:
  using Deliver = std::function<void(Bytes)>;

  DatalinkEndpoint(sim::Simulator& sim, std::unique_ptr<phy::LineCode> code,
                   std::unique_ptr<ErrorDetector> detector,
                   const StackConfig& config);

  /// Wires the raw transmit path (towards the peer's on_wire_frame).
  void set_wire_sink(std::function<void(Bytes)> sink);
  /// Wires the batched transmit path: a whole burst of wire frames at
  /// once (e.g. Link::send_batch).  The sink may move the frames out; the
  /// batch vector itself stays owned by the endpoint and is reused.
  /// Takes precedence over set_wire_sink.
  void set_wire_batch_sink(std::function<void(sim::FrameBatch&)> sink);
  /// Feeds a raw frame received from the wire (attach as Link receiver).
  void on_wire_frame(Bytes raw);
  /// Feeds a burst of raw frames (attach as Link batch receiver): the
  /// burst crosses the data plane stage-major, every survivor feeds ARQ,
  /// and everything ARQ emits in response — acks, data releases,
  /// retransmissions — goes back down as one batch.
  void on_wire_batch(sim::FrameBatch& raws);

  void set_deliver(Deliver d);
  /// Sends a payload with the full reliable-delivery service.
  bool send(Bytes payload);
  /// Re-baselines the ARQ sublayer after sequence-state divergence (see
  /// ArqEndpoint::resync); the sublayers below carry no connection state
  /// and need no part in it.
  void resync() { arq_->resync(); }
  bool idle() const { return arq_->idle(); }

  /// Checkpoint/restore: the sub-ARQ plane is stateless between events
  /// (its counters live in the registry, saved with telemetry), so the
  /// endpoint's state IS its ARQ sublayer's state.  Config is not saved —
  /// the restore graph constructs with matching topology, but may freely
  /// flip performance-only knobs (batched_wire, fused): the snapshot
  /// format is plane-implementation-agnostic by contract.
  void save(sim::SnapshotWriter& w) const { arq_->save(w); }
  void restore(sim::SnapshotReader& r) { arq_->restore(r); }

  const StackStats& stats() const { return plane_->stats(); }
  const ArqStats& arq_stats() const { return arq_->stats(); }
  const DataPlaneIface& plane() const { return *plane_; }

 private:
  std::unique_ptr<DataPlaneIface> plane_;
  std::unique_ptr<ArqEndpoint> arq_;
  std::function<void(Bytes)> wire_sink_;
  std::function<void(sim::FrameBatch&)> wire_batch_sink_;
  /// True while a burst is being fed to ARQ: the frame sink then collects
  /// emitted frames into pending_tx_ instead of sending them one by one,
  /// so the burst's responses go down the sublayers as one batch.
  bool collecting_tx_ = false;
  std::vector<Bytes> pending_tx_;
  std::vector<Bytes> up_scratch_;
  sim::FrameBatch tx_scratch_;
  // Interned boundary ids for the seams the endpoint itself owns.
  std::uint32_t link_span_ = 0;  // service boundary (send/deliver)
  std::uint32_t arq_span_ = 0;   // ARQ <-> error detection
};

/// Convenience: two endpoints wired across a DuplexLink.
class DatalinkPair {
 public:
  DatalinkPair(sim::Simulator& sim, const sim::LinkConfig& link_config,
               Rng& rng, const StackConfig& config,
               std::unique_ptr<phy::LineCode> code_a,
               std::unique_ptr<ErrorDetector> det_a,
               std::unique_ptr<phy::LineCode> code_b,
               std::unique_ptr<ErrorDetector> det_b);

  DatalinkEndpoint& a() { return a_; }
  DatalinkEndpoint& b() { return b_; }
  sim::DuplexLink& link() { return link_; }

  /// Checkpoint/restore: link (in-flight frames, rng stream, stats) then
  /// both endpoints.  A pair restored with a different StackConfig::fused
  /// (or batched_wire) resumes bit-identically — those knobs only pick
  /// the code path, never the bits.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  sim::DuplexLink link_;
  DatalinkEndpoint a_;
  DatalinkEndpoint b_;
};

}  // namespace sublayer::datalink
