#include "datalink/framing/byteframing.hpp"

namespace sublayer::datalink {
namespace {

constexpr std::uint8_t kPppFlag = 0x7e;
constexpr std::uint8_t kPppEscape = 0x7d;
constexpr std::uint8_t kPppXor = 0x20;

class PppFramer final : public ByteFramer {
 public:
  std::string name() const override { return "ppp-escape"; }

  Bytes frame(ByteView payload) const override {
    Bytes out;
    out.reserve(payload.size() + 2);
    out.push_back(kPppFlag);
    for (std::uint8_t b : payload) {
      if (b == kPppFlag || b == kPppEscape) {
        out.push_back(kPppEscape);
        out.push_back(b ^ kPppXor);
      } else {
        out.push_back(b);
      }
    }
    out.push_back(kPppFlag);
    return out;
  }

  std::optional<Bytes> deframe(ByteView framed) const override {
    if (framed.size() < 2 || framed.front() != kPppFlag ||
        framed.back() != kPppFlag) {
      return std::nullopt;
    }
    Bytes out;
    for (std::size_t i = 1; i + 1 < framed.size(); ++i) {
      const std::uint8_t b = framed[i];
      if (b == kPppFlag) return std::nullopt;  // flag inside body
      if (b == kPppEscape) {
        if (i + 2 >= framed.size()) return std::nullopt;  // dangling escape
        out.push_back(framed[++i] ^ kPppXor);
      } else {
        out.push_back(b);
      }
    }
    return out;
  }

  std::size_t max_framed_size(std::size_t n) const override {
    return 2 * n + 2;
  }
};

class CobsFramer final : public ByteFramer {
 public:
  std::string name() const override { return "cobs"; }

  Bytes frame(ByteView payload) const override {
    Bytes out;
    out.reserve(payload.size() + payload.size() / 254 + 2);
    std::size_t code_pos = out.size();
    out.push_back(0);  // placeholder for the first code byte
    std::uint8_t code = 1;
    for (std::uint8_t b : payload) {
      if (b == 0) {
        out[code_pos] = code;
        code_pos = out.size();
        out.push_back(0);
        code = 1;
      } else {
        out.push_back(b);
        if (++code == 0xff) {
          out[code_pos] = code;
          code_pos = out.size();
          out.push_back(0);
          code = 1;
        }
      }
    }
    out[code_pos] = code;
    out.push_back(0);  // frame delimiter
    return out;
  }

  std::optional<Bytes> deframe(ByteView framed) const override {
    if (framed.empty() || framed.back() != 0) return std::nullopt;
    Bytes out;
    std::size_t i = 0;
    const std::size_t end = framed.size() - 1;  // exclude delimiter
    while (i < end) {
      const std::uint8_t code = framed[i++];
      if (code == 0) return std::nullopt;  // zero inside body
      for (std::uint8_t k = 1; k < code; ++k) {
        if (i >= end) return std::nullopt;  // truncated block
        if (framed[i] == 0) return std::nullopt;
        out.push_back(framed[i++]);
      }
      if (code != 0xff && i < end) out.push_back(0);
    }
    return out;
  }

  std::size_t max_framed_size(std::size_t n) const override {
    return n + n / 254 + 2;
  }
};

}  // namespace

std::unique_ptr<ByteFramer> make_ppp_framer() {
  return std::make_unique<PppFramer>();
}
std::unique_ptr<ByteFramer> make_cobs_framer() {
  return std::make_unique<CobsFramer>();
}

}  // namespace sublayer::datalink
