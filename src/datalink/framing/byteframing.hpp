// Byte-oriented framing engines — drop-in alternatives to bit stuffing.
//
// These exist to demonstrate test T3 / Challenge 5 ("Replace"): the framing
// sublayer can swap its internal mechanism (bit stuffing, PPP-style byte
// escaping, COBS) without anything above or below noticing, because all of
// them implement the same ByteFramer interface.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sublayer::datalink {

class ByteFramer {
 public:
  virtual ~ByteFramer() = default;
  virtual std::string name() const = 0;

  /// Wraps a payload into a self-delimiting frame.
  virtual Bytes frame(ByteView payload) const = 0;

  /// Inverse of frame(); nullopt if the frame is malformed.
  virtual std::optional<Bytes> deframe(ByteView framed) const = 0;

  /// Worst-case framed size for a payload of n bytes.
  virtual std::size_t max_framed_size(std::size_t n) const = 0;
};

/// PPP-in-HDLC-like byte stuffing: 0x7E delimits, 0x7D escapes (escaped
/// byte is XORed with 0x20).
std::unique_ptr<ByteFramer> make_ppp_framer();

/// Consistent Overhead Byte Stuffing: eliminates 0x00 from the body with
/// bounded (1 + n/254) overhead; 0x00 delimits.
std::unique_ptr<ByteFramer> make_cobs_framer();

}  // namespace sublayer::datalink
