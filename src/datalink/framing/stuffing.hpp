// The framing sublayer, recursively sublayered per §4.1 of the paper:
//
//   upper nested sublayer: STUFFING  — Stuff / Unstuff
//   lower nested sublayer: FLAGS     — AddFlags / RemoveFlags
//
// The composition satisfies the paper's main specification
//
//   Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D        for all data D,
//
// provided the StuffingRule is *valid* for its flag (the stuffverify
// module is the bounded-exhaustive verifier for that side condition).
//
// Semantics of a rule (F, T, b): the sender runs a pattern automaton over
// the *emitted* stream; whenever the last |T| emitted bits equal T it emits
// the stuff bit b (which is itself fed to the automaton).  The receiver
// mirrors the automaton over the received stream and deletes the bit that
// follows each completed T.  HDLC is (01111110, 11111, 0).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sublayer::datalink {

struct StuffingRule {
  BitString flag;
  BitString trigger;
  bool stuff_bit = false;

  /// HDLC: flag 01111110, stuff a 0 after five consecutive 1s.
  static StuffingRule hdlc();

  /// The paper's low-overhead rule: flag 00000010, stuff a 1 after 0000001.
  /// Expected overhead on random data is 1/128 vs HDLC's 1/32 (§4.1).
  static StuffingRule low_overhead();

  std::string name() const;
  friend bool operator==(const StuffingRule&, const StuffingRule&) = default;
};

// ---- Stuffing sublayer -----------------------------------------------------

/// Inserts `rule.stuff_bit` after every occurrence of `rule.trigger` in the
/// emitted stream (stuffed bits included in the pattern scan).
BitString stuff(const StuffingRule& rule, const BitString& data);

/// Appends Stuff(data) to `out` — the allocation-free form of stuff() for a
/// buffer the caller (typically a FrameArena) already owns.
void stuff_append(const StuffingRule& rule, const BitString& data,
                  BitString& out);

/// Inverse of stuff().  Returns nullopt if the stream is inconsistent with
/// the rule (a trigger followed by the wrong bit), which indicates either
/// corruption or an invalid rule.
std::optional<BitString> unstuff(const StuffingRule& rule,
                                 const BitString& stuffed);

/// Appends Unstuff(stuffed[start, start+len)) to `out`; false (with `out`
/// holding a partial prefix the caller must discard) on an inconsistent
/// stream.  Range form so deframing never materializes the flag-stripped
/// slice.
bool unstuff_append(const StuffingRule& rule, const BitString& stuffed,
                    std::size_t start, std::size_t len, BitString& out);

// ---- Flag sublayer ---------------------------------------------------------

/// Brackets the body with the flag: flag · body · flag.
BitString add_flags(const BitString& flag, const BitString& body);

/// Strips one leading and one trailing flag.  Returns nullopt if the input
/// does not start and end with the flag, or is too short.
std::optional<BitString> remove_flags(const BitString& flag,
                                      const BitString& framed);

// ---- Composed framing sublayer ---------------------------------------------

/// frame = AddFlags(Stuff(D));  deframe = Unstuff(RemoveFlags(x)).
BitString frame(const StuffingRule& rule, const BitString& data);
std::optional<BitString> deframe(const StuffingRule& rule,
                                 const BitString& framed);

/// Appends frame(rule, data) to `out` without intermediate buffers.
void frame_append(const StuffingRule& rule, const BitString& data,
                  BitString& out);
/// Appends deframe(rule, framed) to `out`; false on bad flags or an
/// inconsistent stuffed stream (out may then hold a partial prefix).
bool deframe_append(const StuffingRule& rule, const BitString& framed,
                    BitString& out);
/// Range form: deframes framed[start, start+len) without materializing the
/// slice — the batched data plane deframes in place after its length-prefix
/// parse.
bool deframe_append(const StuffingRule& rule, const BitString& framed,
                    std::size_t start, std::size_t len, BitString& out);

/// Incremental deframer for a continuous bit stream carrying back-to-back
/// frames (idle fill between frames is permitted only as repeated flags).
/// Push bits as they arrive; completed frame bodies (unstuffed) come out.
class StreamDeframer {
 public:
  explicit StreamDeframer(StuffingRule rule);

  /// Feeds one received bit; returns a completed frame when the closing
  /// flag is recognized.
  std::optional<BitString> push(bool bit);

  /// Feeds a run of bits, collecting any completed frames.
  std::vector<BitString> push_all(const BitString& bits);

  /// Frames whose body failed to unstuff (corruption indicator).
  std::uint64_t malformed_frames() const { return malformed_; }

 private:
  StuffingRule rule_;
  // Flag detection runs in a 64-bit shift register (flags are <= 63 bits),
  // not a sliced BitString window: one shift+compare per received bit.
  std::size_t flag_len_ = 0;
  std::uint64_t flag_value_ = 0;
  std::uint64_t flag_mask_ = 0;
  std::uint64_t window_ = 0;
  std::size_t window_seen_ = 0;
  BitString body_;     // accumulated candidate body bits (still stuffed)
  bool in_frame_ = false;
  std::uint64_t malformed_ = 0;
};

}  // namespace sublayer::datalink
