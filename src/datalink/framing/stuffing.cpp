#include "datalink/framing/stuffing.hpp"

#include <bit>
#include <stdexcept>

namespace sublayer::datalink {
namespace {

/// The stuffing pattern automaton ("do the last |pattern| bits equal the
/// pattern?"), with a bit-parallel chunk scanner layered on the classic
/// per-bit shift register.  match_mask() answers, for all 64 positions of a
/// chunk at once and in O(|pattern|) word ops, where the automaton would
/// report a match — so the stream processors below only fall back to
/// bit-at-a-time stepping at the (rare) positions where a match fires.
class PatternWindow {
 public:
  explicit PatternWindow(const BitString& pattern)
      : len_(pattern.size()), pattern_(pattern.to_uint()),
        mask_(len_ >= 64 ? ~0ull : (1ull << len_) - 1) {
    if (len_ == 0 || len_ > 63) {
      throw std::invalid_argument("trigger length must be 1..63");
    }
  }

  /// Feeds one bit; returns true if the window now matches the pattern.
  bool push(bool bit) {
    reg_ = (reg_ << 1 | (bit ? 1u : 0u)) & mask_;
    seen_ = std::min(seen_ + 1, len_);
    return seen_ >= len_ && reg_ == pattern_;
  }

  /// For the first `n` (MSB-first) bits of `chunk` fed in sequence from the
  /// current state: bit 63-j of the result is set iff push(chunk bit j)
  /// would return true.  Does not change the state.
  std::uint64_t match_mask(std::uint64_t chunk, std::size_t n) const {
    // Lay the stream out MSB-first in a 128-bit window `hi:lo`: the last
    // len-1 bits already seen, then the chunk.  A match ending at chunk
    // bit j is a pattern occurrence starting at stream offset j.
    std::uint64_t hi, lo;
    if (len_ == 1) {
      hi = chunk;
      lo = 0;
    } else {
      const std::uint64_t prefix = reg_ & ((1ull << (len_ - 1)) - 1);
      hi = (prefix << (65 - len_)) | (chunk >> (len_ - 1));
      lo = chunk << (65 - len_);
    }
    // Bit-parallel match: one 64-wide compare per pattern bit.
    std::uint64_t acc = ~0ull;
    for (std::size_t k = 0; k < len_; ++k) {
      const std::uint64_t w = k == 0 ? hi : (hi << k) | (lo >> (64 - k));
      acc &= ((pattern_ >> (len_ - 1 - k)) & 1) != 0 ? w : ~w;
    }
    if (n < 64) acc &= ~0ull << (64 - n);
    if (seen_ + 1 < len_) {
      // Fewer than len-1 bits streamed so far: the phantom zeros in the
      // prefix must not produce matches that the automaton cannot see yet.
      acc &= ~0ull >> (len_ - 1 - seen_);
    }
    return acc;
  }

  /// Feeds the first `n` MSB-first bits of `chunk` in one step.
  void advance(std::uint64_t chunk, std::size_t n) {
    if (n == 0) return;
    const std::uint64_t v = n == 64 ? chunk : chunk >> (64 - n);
    reg_ = (n >= len_ ? v : (reg_ << n) | v) & mask_;
    seen_ = std::min(seen_ + n, len_);
  }

 private:
  std::size_t len_;
  std::uint64_t pattern_;
  std::uint64_t mask_;
  std::uint64_t reg_ = 0;
  std::size_t seen_ = 0;
};

}  // namespace

StuffingRule StuffingRule::hdlc() {
  return StuffingRule{BitString::parse("01111110"), BitString::parse("11111"),
                      false};
}

StuffingRule StuffingRule::low_overhead() {
  return StuffingRule{BitString::parse("00000010"), BitString::parse("0000001"),
                      true};
}

std::string StuffingRule::name() const {
  return "flag=" + flag.to_string() + " trigger=" + trigger.to_string() +
         " stuff=" + (stuff_bit ? "1" : "0");
}

BitString stuff(const StuffingRule& rule, const BitString& data) {
  PatternWindow window(rule.trigger);
  BitString out;
  // Worst case doubles the stream; the common case adds a few percent.
  out.reserve(data.size() + data.size() / 16 + 64);
  const std::size_t total = data.size();
  std::size_t off = 0;
  while (off < total) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    const std::uint64_t chunk = data.bits_at(off, n) << (64 - n);
    const std::uint64_t matches = window.match_mask(chunk, n);
    if (matches == 0) {
      // No trigger completes in this chunk: emit it whole.
      out.append_word(n == 64 ? chunk : chunk >> (64 - n), static_cast<int>(n));
      window.advance(chunk, n);
      off += n;
      continue;
    }
    // Emit up to and including the first matching bit, then the stuff
    // bit(s).  A stuffed bit feeds back into the automaton, so everything
    // after it rescans from the updated state.
    const auto j = static_cast<std::size_t>(std::countl_zero(matches));
    out.append_word(chunk >> (63 - j), static_cast<int>(j + 1));
    window.advance(chunk, j + 1);
    off += j + 1;
    int consecutive_stuffs = 0;
    bool matched = true;
    while (matched) {
      if (++consecutive_stuffs > 64) {
        // e.g. trigger = bbb...b with stuff bit b: stuffing retriggers itself
        // forever.  Such rules are degenerate and rejected by the verifier.
        throw std::invalid_argument("stuff: runaway self-triggering rule");
      }
      matched = window.push(rule.stuff_bit);
      out.push_back(rule.stuff_bit);
    }
  }
  return out;
}

std::optional<BitString> unstuff(const StuffingRule& rule,
                                 const BitString& stuffed) {
  // The receive-side automaton runs over the *received* stream, stuffed
  // bits included, so (unlike stuff) the scan has no feedback: every chunk
  // is matched bit-parallel in one pass, and each match just marks the
  // following bit for validation + deletion.
  PatternWindow window(rule.trigger);
  BitString out;
  out.reserve(stuffed.size());
  const std::size_t total = stuffed.size();
  bool pending_delete = false;  // a match ended on the previous chunk's last bit
  for (std::size_t off = 0; off < total; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    const std::uint64_t chunk = stuffed.bits_at(off, n) << (64 - n);
    const std::uint64_t matches = window.match_mask(chunk, n);
    window.advance(chunk, n);
    std::uint64_t del = matches >> 1;
    if (pending_delete) del |= 1ull << 63;
    pending_delete = (matches & (1ull << (64 - n))) != 0;
    if (n < 64) del &= ~0ull << (64 - n);
    // Copy the runs between deleted bits; verify each deleted bit is the
    // stuff bit (anything else means corruption or an invalid rule).
    std::size_t pos = 0;
    while (del != 0) {
      const auto d = static_cast<std::size_t>(std::countl_zero(del));
      if (d > pos) {  // run of kept bits [pos, d)
        out.append_word((chunk >> (64 - d)) & ((1ull << (d - pos)) - 1),
                        static_cast<int>(d - pos));
      }
      if (((chunk >> (63 - d)) & 1) != (rule.stuff_bit ? 1u : 0u)) {
        return std::nullopt;
      }
      del &= ~(1ull << (63 - d));
      pos = d + 1;
    }
    if (pos < n) {  // tail run of kept bits [pos, n)
      const std::uint64_t v = n == 64 ? chunk : chunk >> (64 - n);
      out.append_word(pos == 0 ? v : v & ((1ull << (n - pos)) - 1),
                      static_cast<int>(n - pos));
    }
  }
  return out;
}

BitString add_flags(const BitString& flag, const BitString& body) {
  BitString out;
  out.reserve(body.size() + 2 * flag.size());
  out.append(flag);
  out.append(body);
  out.append(flag);
  return out;
}

std::optional<BitString> remove_flags(const BitString& flag,
                                      const BitString& framed) {
  if (framed.size() < 2 * flag.size()) return std::nullopt;
  if (!framed.matches_at(0, flag)) return std::nullopt;
  if (!framed.matches_at(framed.size() - flag.size(), flag)) return std::nullopt;
  return framed.slice(flag.size(), framed.size() - 2 * flag.size());
}

BitString frame(const StuffingRule& rule, const BitString& data) {
  return add_flags(rule.flag, stuff(rule, data));
}

std::optional<BitString> deframe(const StuffingRule& rule,
                                 const BitString& framed) {
  const auto body = remove_flags(rule.flag, framed);
  if (!body) return std::nullopt;
  return unstuff(rule, *body);
}

StreamDeframer::StreamDeframer(StuffingRule rule) : rule_(std::move(rule)) {
  const std::size_t len = rule_.flag.size();
  if (len == 0 || len > 63) {
    throw std::invalid_argument("flag length must be 1..63");
  }
  flag_len_ = len;
  flag_value_ = rule_.flag.to_uint();
  flag_mask_ = (1ull << len) - 1;
}

std::optional<BitString> StreamDeframer::push(bool bit) {
  // Shift register over the last |flag| bits for delimiter detection.
  window_ = (window_ << 1 | (bit ? 1u : 0u)) & flag_mask_;
  window_seen_ = std::min(window_seen_ + 1, flag_len_);
  const bool at_flag = window_seen_ >= flag_len_ && window_ == flag_value_;

  if (!in_frame_) {
    if (at_flag) {
      in_frame_ = true;
      body_.clear();
    }
    return std::nullopt;
  }

  body_.push_back(bit);
  if (at_flag && body_.size() >= flag_len_) {
    BitString stuffed = std::move(body_);
    stuffed.truncate(stuffed.size() - flag_len_);
    // Shared-flag convention: the closing flag opens the next frame.
    body_.clear();
    if (stuffed.empty()) return std::nullopt;  // inter-frame idle flags
    auto data = unstuff(rule_, stuffed);
    if (!data) {
      ++malformed_;
      return std::nullopt;
    }
    return data;
  }
  return std::nullopt;
}

std::vector<BitString> StreamDeframer::push_all(const BitString& bits) {
  std::vector<BitString> frames;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (auto f = push(bits[i])) frames.push_back(std::move(*f));
  }
  return frames;
}

}  // namespace sublayer::datalink
