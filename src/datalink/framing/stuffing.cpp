#include "datalink/framing/stuffing.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SUBLAYER_HAS_BMI2_PATH 1
#endif

namespace sublayer::datalink {
namespace {

/// The stuffing pattern automaton ("do the last |pattern| bits equal the
/// pattern?"), with a bit-parallel chunk scanner layered on the classic
/// per-bit shift register.  match_mask() answers, for all 64 positions of a
/// chunk at once and in O(|pattern|) word ops, where the automaton would
/// report a match — so the stream processors below only fall back to
/// bit-at-a-time stepping at the (rare) positions where a match fires.
class PatternWindow {
 public:
  explicit PatternWindow(const BitString& pattern)
      : len_(pattern.size()), pattern_(pattern.to_uint()),
        mask_(len_ >= 64 ? ~0ull : (1ull << len_) - 1) {
    if (len_ == 0 || len_ > 63) {
      throw std::invalid_argument("trigger length must be 1..63");
    }
    // Classify the pattern shape for the fold-based fast paths below.
    // kRun: all bits equal (HDLC's 11111).  kRunPlusOne: a uniform run with
    // one opposite final bit (the paper's low-overhead 0000001).  These two
    // shapes cover the practical rules; anything else takes the generic
    // one-compare-per-pattern-bit loop.
    const bool first = pattern[0];
    bool uniform = true;
    for (std::size_t i = 1; i < len_; ++i) {
      if (pattern[i] != first) {
        uniform = i == len_ - 1;
        break;
      }
    }
    if (uniform && len_ >= 2 && pattern[len_ - 1] != first) {
      shape_ = Shape::kRunPlusOne;
    } else if (uniform) {
      shape_ = Shape::kRun;
    } else {
      shape_ = Shape::kGeneric;
    }
    run_value_ = first;
  }

  /// Feeds one bit; returns true if the window now matches the pattern.
  bool push(bool bit) {
    reg_ = (reg_ << 1 | (bit ? 1u : 0u)) & mask_;
    seen_ = std::min(seen_ + 1, len_);
    return seen_ >= len_ && reg_ == pattern_;
  }

  /// For the first `n` (MSB-first) bits of `chunk` fed in sequence from the
  /// current state: bit 63-j of the result is set iff push(chunk bit j)
  /// would return true.  Does not change the state.
  std::uint64_t match_mask(std::uint64_t chunk, std::size_t n) const {
    // Lay the stream out MSB-first in a 128-bit window `hi:lo`: the last
    // len-1 bits already seen, then the chunk.  A match ending at chunk
    // bit j is a pattern occurrence starting at stream offset j.
    std::uint64_t hi, lo;
    if (len_ == 1) {
      hi = chunk;
      lo = 0;
    } else {
      const std::uint64_t prefix = reg_ & ((1ull << (len_ - 1)) - 1);
      hi = (prefix << (65 - len_)) | (chunk >> (len_ - 1));
      lo = chunk << (65 - len_);
    }
    std::uint64_t acc;
    if (shape_ == Shape::kGeneric) {
      // Bit-parallel match: one 64-wide compare per pattern bit.
      acc = ~0ull;
      for (std::size_t k = 0; k < len_; ++k) {
        const std::uint64_t w = k == 0 ? hi : (hi << k) | (lo >> (64 - k));
        acc &= ((pattern_ >> (len_ - 1 - k)) & 1) != 0 ? w : ~w;
      }
    } else {
      // Fold-based run detection: AND of r consecutive shifts of the
      // window in O(log r) 128-bit steps instead of one step per bit.
      __extension__ typedef unsigned __int128 u128;
      u128 w = (static_cast<u128>(hi) << 64) | lo;
      u128 x = run_value_ ? w : ~w;
      const std::size_t r =
          shape_ == Shape::kRun ? len_ : len_ - 1;  // run length
      u128 m = x;
      for (std::size_t done = 1; done < r;) {
        const std::size_t d = std::min(done, r - done);
        m &= m << d;
        done += d;
      }
      if (shape_ == Shape::kRunPlusOne) m &= ~x << (len_ - 1);
      acc = static_cast<std::uint64_t>(m >> 64);
    }
    if (n < 64) acc &= ~0ull << (64 - n);
    if (seen_ + 1 < len_) {
      // Fewer than len-1 bits streamed so far: the phantom zeros in the
      // prefix must not produce matches that the automaton cannot see yet.
      acc &= ~0ull >> (len_ - 1 - seen_);
    }
    return acc;
  }

  /// Feeds the first `n` MSB-first bits of `chunk` in one step.
  void advance(std::uint64_t chunk, std::size_t n) {
    if (n == 0) return;
    const std::uint64_t v = n == 64 ? chunk : chunk >> (64 - n);
    reg_ = (n >= len_ ? v : (reg_ << n) | v) & mask_;
    seen_ = std::min(seen_ + n, len_);
  }

  std::size_t len() const { return len_; }

  /// True when a stuffed bit can never participate in a later match, so the
  /// sender may take the raw-mask fast path in stuff_append (no automaton
  /// stepping after an insertion).  Holds for both practical shapes when
  /// the stuff bit differs from the run value:
  ///  - kRun (v^r, stuff s!=v): any window containing s is not all-v, so no
  ///    match can fire until the stuff bit has left the window, and the
  ///    next emitted match is exactly the next raw match >= r bits later
  ///    (greedy thinning).
  ///  - kRunPlusOne (v^r u, stuff s==u!=v): a window ending on the stuff
  ///    bit needs the preceding r bits all v, but the bit before s is the
  ///    match-completing u; a window with s inside its run part needs s==v.
  ///    Either way no match involves s, and raw matches closer than len
  ///    are impossible (the run region would contain the previous final u),
  ///    so the raw mask IS the emitted match set — no thinning either.
  bool resync_free(bool stuff_bit) const {
    return shape_ != Shape::kGeneric && stuff_bit != run_value_;
  }

  /// Under resync_free: whether accepted matches must be >= len apart.
  bool needs_thinning() const { return shape_ == Shape::kRun; }

  /// True for the run-shaped patterns the fold path handles (see ctor).
  bool fold_shape() const { return shape_ != Shape::kGeneric; }
  bool run_value() const { return run_value_; }
  bool plus_one() const { return shape_ == Shape::kRunPlusOne; }

 private:
  enum class Shape { kRun, kRunPlusOne, kGeneric };

  std::size_t len_;
  std::uint64_t pattern_;
  std::uint64_t mask_;
  std::uint64_t reg_ = 0;
  std::size_t seen_ = 0;
  Shape shape_ = Shape::kGeneric;
  bool run_value_ = false;
};

__extension__ typedef unsigned __int128 u128;

/// AND of R consecutive right-shifts of x (bit b set iff x has a run of R
/// ones ending, in MSB-first stream order, at bit b) with all shift counts
/// known at compile time, so no variable 128-bit shifts reach the hot loop.
template <int R>
inline u128 run_fold(u128 x) {
  if constexpr (R == 1) {
    return x;
  } else {
    constexpr int kHalf = R / 2;
    const u128 h = run_fold<kHalf>(x);
    const u128 m = h & (h >> kHalf);
    if constexpr (2 * kHalf == R) {
      return m;
    } else {
      return m & (x >> (R - 1));
    }
  }
}

/// Streaming raw-match masker for the run-shaped patterns, equivalent to
/// PatternWindow::match_mask+advance over a fresh stream but with the whole
/// previous chunk as carried state instead of the automaton register.  That
/// breaks the serializing dependency through reg_: successive chunks only
/// depend on each other through `prev = chunk`, so the u128 folds pipeline
/// across iterations.  Only valid when fed the stream from its start in
/// 64-bit chunks (short final chunk allowed) — exactly the scan pattern of
/// stuff_append_resync_free and unstuff_append.  R is the compile-time run
/// length (R == 0: runtime-length fallback for unusual triggers).
template <int R>
class RunMasker {
 public:
  explicit RunMasker(const PatternWindow& w)
      : len_(w.len()), r_(w.plus_one() ? w.len() - 1 : w.len()),
        run_value_(w.run_value()), plus_one_(w.plus_one()) {}

  /// Mask for the first n (MSB-first) bits of `chunk` (left-aligned), then
  /// advances.  Bit 63-j set iff the pattern ends at stream position off+j.
  std::uint64_t mask(std::uint64_t chunk, std::size_t n) {
    const u128 w = (static_cast<u128>(prev_) << 64) | chunk;
    const u128 x = run_value_ ? w : ~w;
    // In this layout a HIGHER bit is an EARLIER stream position, so runs
    // fold with right shifts: after the fold, bit b is set iff x has a run
    // of r_ ending (in stream order) at bit b.  Matches that ended inside
    // prev_ sit in the high word and are discarded by the low-word extract.
    u128 m;
    if constexpr (R > 0) {
      m = run_fold<R>(x);
    } else {
      m = x;
      for (std::size_t done = 1; done < r_;) {
        const std::size_t d = std::min(done, r_ - done);
        m &= m >> d;
        done += d;
      }
    }
    // kRunPlusOne: the run must end one position before the opposite final
    // bit, and that final bit is where the match ends.
    if (plus_one_) m = (m >> 1) & ~x;
    auto acc = static_cast<std::uint64_t>(m);
    if (n < 64) acc &= ~0ull << (64 - n);
    if (seen_ + 1 < len_) {
      // The phantom prefix before the stream start must not match (the
      // all-zero prev_ looks like a run when the run value is 0).
      acc &= ~0ull >> (len_ - 1 - seen_);
    }
    seen_ = std::min(seen_ + n, len_);
    prev_ = chunk;
    return acc;
  }

 private:
  std::size_t len_;
  std::size_t r_;
  bool run_value_;
  bool plus_one_;
  std::uint64_t prev_ = 0;
  std::size_t seen_ = 0;
};

/// Invokes fn with the RunMasker instantiation for the window's run length
/// (compile-time fold for the practical lengths, runtime loop otherwise).
template <typename Fn>
decltype(auto) dispatch_run_masker(const PatternWindow& w, Fn&& fn) {
  switch (w.plus_one() ? w.len() - 1 : w.len()) {
    case 1: return fn(RunMasker<1>(w));
    case 2: return fn(RunMasker<2>(w));
    case 3: return fn(RunMasker<3>(w));
    case 4: return fn(RunMasker<4>(w));
    case 5: return fn(RunMasker<5>(w));
    case 6: return fn(RunMasker<6>(w));
    case 7: return fn(RunMasker<7>(w));
    case 8: return fn(RunMasker<8>(w));
    default: return fn(RunMasker<0>(w));
  }
}

}  // namespace

StuffingRule StuffingRule::hdlc() {
  return StuffingRule{BitString::parse("01111110"), BitString::parse("11111"),
                      false};
}

StuffingRule StuffingRule::low_overhead() {
  return StuffingRule{BitString::parse("00000010"), BitString::parse("0000001"),
                      true};
}

std::string StuffingRule::name() const {
  return "flag=" + flag.to_string() + " trigger=" + trigger.to_string() +
         " stuff=" + (stuff_bit ? "1" : "0");
}

namespace {

/// Emits the stuff bit(s) after a completed trigger, feeding each back into
/// the automaton (a stuffed bit can itself complete the next trigger).
void emit_stuff_cascade(const StuffingRule& rule, PatternWindow& window,
                        BitString& out) {
  int consecutive_stuffs = 0;
  bool matched = true;
  while (matched) {
    if (++consecutive_stuffs > 64) {
      // e.g. trigger = bbb...b with stuff bit b: stuffing retriggers itself
      // forever.  Such rules are degenerate and rejected by the verifier.
      throw std::invalid_argument("stuff: runaway self-triggering rule");
    }
    matched = window.push(rule.stuff_bit);
    out.push_back(rule.stuff_bit);
  }
}

}  // namespace

namespace {

/// Raw-mask fast path (see PatternWindow::resync_free): the automaton only
/// ever sees original data bits, so each chunk costs one mask + segment
/// emits through a BitString::Writer, and each match one extra emit — no
/// per-bit stepping and no per-call append bookkeeping.
template <typename Masker>
void stuff_append_resync_free(const StuffingRule& rule, const BitString& data,
                              const PatternWindow& window, Masker masker,
                              BitString& out) {
  const std::size_t len = window.len();
  const bool thin = window.needs_thinning();
  const std::size_t total = data.size();
  // Under resync_free accepted matches are >= len apart (kRun: by greedy
  // thinning; kRunPlusOne: two raw matches closer than len would need the
  // first match's final opposite bit inside the second's uniform run), so
  // at most one stuff bit per len data bits is a hard output bound.
  BitString::Writer wr(out, total + total / len + 1);
  std::size_t accept_horizon = 0;  // earliest position the next match may use
  for (std::size_t off = 0; off < total; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    const std::uint64_t chunk = data.bits_at(off, n) << (64 - n);
    std::uint64_t m = masker.mask(chunk, n);
    std::size_t pos = 0;  // next chunk bit to emit
    while (m != 0) {
      const auto j = static_cast<std::size_t>(std::countl_zero(m));
      m &= ~(1ull << (63 - j));
      if (thin && off + j < accept_horizon) continue;  // inside prior run
      wr.emit(chunk << pos, j - pos + 1);
      wr.push(rule.stuff_bit);
      accept_horizon = off + j + len;
      pos = j + 1;
    }
    if (pos < n) wr.emit(chunk << pos, n - pos);
  }
  wr.finish();
}

#ifdef SUBLAYER_HAS_BMI2_PATH
/// Compacts the bits of `chunk` selected by `keep` (preserving stream
/// order) and returns them left-aligned.  `total` = popcount(keep) >= 1.
__attribute__((target("bmi2"))) std::uint64_t compact_left_bmi2(
    std::uint64_t chunk, std::uint64_t keep, unsigned total) {
  // PEXT packs ascending source bit positions to ascending result
  // positions, so MSB-first stream order is preserved; the top bit of the
  // extracted value is the earliest kept stream bit.
  return _pext_u64(chunk, keep) << (64 - total);
}

const bool kHasBmi2 = __builtin_cpu_supports("bmi2") != 0;

/// Low word of ((prev:cur) >> k), k in [1, 63] — the 64-bit carried form of
/// the 128-bit window shifts in RunMasker.
inline std::uint64_t carry_shr(std::uint64_t cur, std::uint64_t prev,
                               int k) {
  return (cur >> k) | (prev << (64 - k));
}

/// Word-at-a-time run_fold: step(x, xprev) returns the low word of
/// run_fold<R>(xprev:x), with every fold level's previous output carried so
/// successive words chain exactly like RunMasker's 128-bit window — but in
/// plain 64-bit registers, where the same folds cost about a third of the
/// u128 shift sequences GCC emits.
template <int R>
struct CarryFold {
  static constexpr int kHalf = R / 2;
  CarryFold<kHalf> sub;
  std::uint64_t hprev = 0;
  std::uint64_t step(std::uint64_t x, std::uint64_t xprev) {
    const std::uint64_t h = sub.step(x, xprev);
    std::uint64_t m = h & carry_shr(h, hprev, kHalf);
    hprev = h;
    if constexpr (2 * kHalf != R) m &= carry_shr(x, xprev, R - 1);
    return m;
  }
};
template <>
struct CarryFold<1> {
  std::uint64_t step(std::uint64_t x, std::uint64_t) { return x; }
};

/// Top-aligned 64-bit window at absolute bit position `pos`; bits past the
/// stored words read as zero.  Unlike bits_at this never needs pos + 64 to
/// be in range, so the gather loops can always read full windows.
inline std::uint64_t window_at(const BitString& s, std::size_t pos) {
  const std::size_t w = pos >> 6;
  const auto r = static_cast<unsigned>(pos & 63);
  const std::uint64_t hi = w < s.word_count() ? s.word(w) : 0;
  if (r == 0) return hi;
  const std::uint64_t lo = w + 1 < s.word_count() ? s.word(w + 1) : 0;
  return (hi << r) | (lo >> (64 - r));
}

/// Scalar-64 streaming equivalent of RunMasker<R>: same masks, same
/// feed-from-stream-start contract, no 128-bit arithmetic.
template <int R>
class WordMasker {
 public:
  explicit WordMasker(const PatternWindow& w)
      : len_(w.len()), run_value_(w.run_value()), plus_one_(w.plus_one()) {}

  std::uint64_t step(std::uint64_t chunk, std::size_t n) {
    const std::uint64_t x = run_value_ ? chunk : ~chunk;
    std::uint64_t m = fold_.step(x, xprev_);
    if (plus_one_) {
      const std::uint64_t t = carry_shr(m, mprev_, 1) & ~x;
      mprev_ = m;
      m = t;
    }
    xprev_ = x;
    if (first_) {
      // Phantom prefix before the stream start must not match (the zero
      // seed looks like a run when the run value is 0) — see RunMasker.
      m &= ~0ull >> (len_ - 1);
      first_ = false;
    }
    if (n < 64) m &= ~0ull << (64 - n);
    return m;
  }

 private:
  std::size_t len_;
  bool run_value_;
  bool plus_one_;
  CarryFold<R> fold_;
  std::uint64_t xprev_ = 0;
  std::uint64_t mprev_ = 0;
  bool first_ = true;
};

/// Batched resync-free stuffing: produces exactly the stream of
/// stuff_append_resync_free, but instead of one Writer round-trip per match
/// (a serial accumulator fed through data-dependent branches) it runs
/// fixed-count word passes over stack-sized blocks:
///   1. raw match masks and chain starts.  Chains (maximal runs of
///      consecutive raw matches) are always separated by more than R bits:
///      a second chain starting within R of the first would need its
///      delimiting non-run bit inside the first chain's uniform run.
///      Greedy thinning (horizon = match + R) therefore never crosses a
///      chain boundary, and every chain start is accepted.
///   2. a walk over chain starts accepts every R-th raw bit per chain and
///      sets the stuff slot for the i-th accepted match at position p in
///      OUTPUT space: slot = p + i + 1.  kRunPlusOne rules have isolated
///      raw matches, so the walk degenerates to one slot per raw bit and
///      matches the unthinned emission of the generic path.
///   3. one PDEP per 64-bit output word deposits the kept input bits
///      through the slot bitmap's complement — fixed iteration count, no
///      data-dependent branches, so random match positions cost no
///      mispredictions.
template <int R>
__attribute__((target("bmi2"))) void stuff_append_runs_bmi2(
    const StuffingRule& rule, const BitString& data,
    const PatternWindow& window, BitString& out) {
  constexpr std::size_t kBlockWords = 64;
  constexpr std::size_t kBlockBits = kBlockWords * 64;
  const std::size_t total = data.size();
  // Greedy accepts are >= R apart, so ceil(total/R) bounds the stuff bits.
  BitString::Writer wr(out, total + total / static_cast<std::size_t>(R) + 1);
  WordMasker<R> masker(window);
  std::uint64_t raws[kBlockWords];
  std::uint64_t starts[kBlockWords];
  // Slot bitmap for one block's output window; worst case (R == 1, all
  // bits matching) doubles the block.
  std::uint64_t sbm[2 * kBlockWords + 2];
  std::uint64_t rprev = 0;
  std::size_t resume = BitString::npos;  // chain continuing across blocks
  for (std::size_t base = 0; base < total; base += kBlockBits) {
    const std::size_t bits = std::min(kBlockBits, total - base);
    const std::size_t nwords = (bits + 63) >> 6;
    for (std::size_t i = 0; i < nwords; ++i) {
      const std::size_t n = std::min<std::size_t>(64, bits - i * 64);
      // Bits past size() are zero by invariant, so the raw word IS the
      // top-aligned chunk.
      const std::uint64_t chunk = data.word((base >> 6) + i);
      const std::uint64_t m = masker.step(chunk, n);
      raws[i] = m;
      starts[i] = m & ~carry_shr(m, rprev, 1);
      rprev = m;
    }
    std::size_t kblk = 0;  // accepted matches so far in this block
    std::memset(sbm, 0, (((bits + bits / R) >> 6) + 2) * sizeof(sbm[0]));
    const auto raw_at = [&](std::size_t p) {
      return ((raws[p >> 6] >> (63 - (p & 63))) & 1) != 0;
    };
    // Accepts the chain bit at block-local position p, then every R-th
    // while the chain continues; parks the horizon in `resume` when the
    // chain may continue into the next block.
    const auto walk = [&](std::size_t p) {
      for (;;) {
        const std::size_t q = p + kblk + 1;
        sbm[q >> 6] |= 1ull << (63 - (q & 63));
        ++kblk;
        p += static_cast<std::size_t>(R);
        if (p >= bits) {
          if (base + bits < total) resume = base + p;
          return;
        }
        if (!raw_at(p)) return;
      }
    };
    if (resume != BitString::npos) {
      const std::size_t p = resume - base;
      resume = BitString::npos;
      if (p < bits && raw_at(p)) walk(p);
    }
    for (std::size_t i = 0; i < nwords; ++i) {
      std::uint64_t st = starts[i];
      while (st != 0) {
        const auto j = static_cast<std::size_t>(std::countl_zero(st));
        st &= ~(1ull << (63 - j));
        walk(i * 64 + j);
      }
    }
    // pass 3: gather kept input bits into each output word of the window.
    const std::size_t owin = bits + kblk;
    const std::size_t ofull = owin >> 6;
    std::size_t in_pos = base;
    for (std::size_t ow = 0; ow < ofull; ++ow) {
      const std::uint64_t slots = sbm[ow];
      const std::uint64_t keep = ~slots;
      const auto n = static_cast<unsigned>(std::popcount(keep));
      // Stuff slots are never adjacent (gaps >= R + 1), so n >= 32 here.
      const std::uint64_t val = window_at(data, in_pos) >> (64 - n);
      std::uint64_t word = _pdep_u64(val, keep);
      if (rule.stuff_bit) word |= slots;
      wr.emit(word, 64);
      in_pos += n;
    }
    if (const std::size_t rem = owin & 63; rem != 0) {
      const std::uint64_t wmask = ~0ull << (64 - rem);
      const std::uint64_t slots = sbm[ofull] & wmask;
      const std::uint64_t keep = ~slots & wmask;
      const auto n = static_cast<unsigned>(std::popcount(keep));
      const std::uint64_t val =
          n != 0 ? window_at(data, in_pos) >> (64 - n) : 0;
      std::uint64_t word = _pdep_u64(val, keep);
      if (rule.stuff_bit) word |= slots;
      wr.emit(word, rem);
    }
  }
  wr.finish();
}

/// Batched fold-shape unstuffing: one mask, one PEXT compaction, and one
/// Writer emit per 64-bit chunk, with the stuff-bit validation accumulated
/// word-parallel and checked once at the end.
template <int R>
__attribute__((target("bmi2"))) bool unstuff_runs_bmi2(
    const StuffingRule& rule, const BitString& stuffed, std::size_t start,
    std::size_t nbits, const PatternWindow& window, BitString& out) {
  BitString::Writer wr(out, nbits);
  WordMasker<R> masker(window);
  const std::uint64_t want = rule.stuff_bit ? ~0ull : 0;
  std::uint64_t err = 0;
  std::uint64_t pend = 0;  // a match ended on the previous chunk's last bit
  for (std::size_t off = 0; off < nbits; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, nbits - off);
    std::uint64_t chunk = window_at(stuffed, start + off);
    if (n < 64) chunk &= ~0ull << (64 - n);
    const std::uint64_t m = masker.step(chunk, n);
    std::uint64_t del = (m >> 1) | pend;
    pend = (m & (1ull << (64 - n))) != 0 ? 1ull << 63 : 0;
    if (n < 64) del &= ~0ull << (64 - n);
    // Every deleted position must carry the stuff bit.
    err |= (chunk ^ want) & del;
    const std::uint64_t keep =
        n < 64 ? ~del & (~0ull << (64 - n)) : ~del;
    const auto nk = static_cast<unsigned>(std::popcount(keep));
    const std::uint64_t val = _pext_u64(chunk, keep);
    wr.emit(nk != 0 ? val << (64 - nk) : 0, nk);
  }
  wr.finish();
  return err == 0;
}
#endif

}  // namespace

void stuff_append(const StuffingRule& rule, const BitString& data,
                  BitString& out) {
  PatternWindow window(rule.trigger);
  const std::size_t len = rule.trigger.size();
  if (window.resync_free(rule.stuff_bit)) {
#ifdef SUBLAYER_HAS_BMI2_PATH
    if (kHasBmi2) {
      switch (window.plus_one() ? window.len() - 1 : window.len()) {
        case 1: stuff_append_runs_bmi2<1>(rule, data, window, out); return;
        case 2: stuff_append_runs_bmi2<2>(rule, data, window, out); return;
        case 3: stuff_append_runs_bmi2<3>(rule, data, window, out); return;
        case 4: stuff_append_runs_bmi2<4>(rule, data, window, out); return;
        case 5: stuff_append_runs_bmi2<5>(rule, data, window, out); return;
        case 6: stuff_append_runs_bmi2<6>(rule, data, window, out); return;
        case 7: stuff_append_runs_bmi2<7>(rule, data, window, out); return;
        case 8: stuff_append_runs_bmi2<8>(rule, data, window, out); return;
        default: break;  // longer runs: fall through to the masker path
      }
    }
#endif
    dispatch_run_masker(window, [&](auto masker) {
      stuff_append_resync_free(rule, data, window, masker, out);
    });
    return;
  }
  // Worst case doubles the stream; the common case adds a few percent.
  out.reserve(out.size() + data.size() + data.size() / 16 + 64);
  const std::size_t total = data.size();
  std::size_t off = 0;
  while (off < total) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    const std::uint64_t chunk = data.bits_at(off, n) << (64 - n);
    const std::uint64_t matches = window.match_mask(chunk, n);
    // One mask per chunk.  An inserted stuff bit only perturbs the automaton
    // for the next len-1 *data* bits (after those, the window again holds
    // nothing but original stream bits), so after each cascade we step
    // bit-at-a-time until len-1 clean bits have passed and then resume
    // trusting the original mask — no rescan.
    std::size_t pos = 0;  // next chunk bit to emit
    while (pos < n) {
      const std::uint64_t rest = pos == 0 ? matches : matches << pos >> pos;
      if (rest == 0) {
        out.append_word((chunk << pos) >> (64 - (n - pos)),
                        static_cast<int>(n - pos));
        window.advance(chunk << pos, n - pos);
        pos = n;
        break;
      }
      const auto j = static_cast<std::size_t>(std::countl_zero(rest));
      // Emit up to and including the matching bit, then the stuff bit(s).
      out.append_word((chunk << pos) >> (63 - (j - pos)),
                      static_cast<int>(j - pos + 1));
      window.advance(chunk << pos, j - pos + 1);
      pos = j + 1;
      emit_stuff_cascade(rule, window, out);
      std::size_t clean = 0;
      while (clean + 1 < len && pos < n) {
        const bool bit = ((chunk >> (63 - pos)) & 1) != 0;
        const bool matched = window.push(bit);
        out.push_back(bit);
        ++pos;
        ++clean;
        if (matched) {
          emit_stuff_cascade(rule, window, out);
          clean = 0;
        }
      }
      // If the resync window crossed the chunk boundary, the next chunk's
      // match_mask is computed from the live automaton state and needs no
      // special casing.
    }
    off += n;
  }
}

BitString stuff(const StuffingRule& rule, const BitString& data) {
  BitString out;
  stuff_append(rule, data, out);
  return out;
}

namespace {

/// The receive-side scan over the *received* stream, stuffed bits included
/// — no feedback, so every chunk is matched bit-parallel in one pass and
/// each match just marks the following bit for validation + deletion.
/// `next_mask(chunk, n)` yields the match mask for the chunk and advances.
template <typename MaskFn>
bool unstuff_scan(const StuffingRule& rule, const BitString& stuffed,
                  std::size_t start, std::size_t len, BitString& out,
                  MaskFn&& next_mask) {
  BitString::Writer wr(out, len);
  const std::size_t total = len;
  bool pending_delete = false;  // a match ended on the previous chunk's last bit
  for (std::size_t off = 0; off < total; off += 64) {
    const std::size_t n = std::min<std::size_t>(64, total - off);
    const std::uint64_t chunk = stuffed.bits_at(start + off, n) << (64 - n);
    const std::uint64_t matches = next_mask(chunk, n);
    std::uint64_t del = matches >> 1;
    if (pending_delete) del |= 1ull << 63;
    pending_delete = (matches & (1ull << (64 - n))) != 0;
    if (n < 64) del &= ~0ull << (64 - n);
    // Every deleted position must carry the stuff bit (anything else means
    // corruption or an invalid rule) — checked word-parallel.
    if ((chunk & del) != (rule.stuff_bit ? del : 0)) return false;
    if (del == 0) {
      wr.emit(chunk, n);
      continue;
    }
#ifdef SUBLAYER_HAS_BMI2_PATH
    if (kHasBmi2) {
      // One PEXT compacts all kept bits of the chunk at once.  ~del also
      // selects the zero positions past bit n; they extract as low-order
      // zeros below the kept bits and are masked off by the emit width.
      const auto dropped = static_cast<unsigned>(std::popcount(del));
      wr.emit(compact_left_bmi2(chunk, ~del, 64 - dropped),
              n - dropped);
      continue;
    }
#endif
    // Portable fallback: copy the runs between deleted bits.
    std::size_t pos = 0;
    while (del != 0) {
      const auto d = static_cast<std::size_t>(std::countl_zero(del));
      wr.emit(chunk << pos, d - pos);
      del &= ~(1ull << (63 - d));
      pos = d + 1;
    }
    if (pos < n) wr.emit(chunk << pos, n - pos);
  }
  wr.finish();
  return true;
}

}  // namespace

bool unstuff_append(const StuffingRule& rule, const BitString& stuffed,
                    std::size_t start, std::size_t len, BitString& out) {
  PatternWindow window(rule.trigger);
  if (window.fold_shape()) {
#ifdef SUBLAYER_HAS_BMI2_PATH
    if (kHasBmi2) {
      switch (window.plus_one() ? window.len() - 1 : window.len()) {
        case 1: return unstuff_runs_bmi2<1>(rule, stuffed, start, len, window, out);
        case 2: return unstuff_runs_bmi2<2>(rule, stuffed, start, len, window, out);
        case 3: return unstuff_runs_bmi2<3>(rule, stuffed, start, len, window, out);
        case 4: return unstuff_runs_bmi2<4>(rule, stuffed, start, len, window, out);
        case 5: return unstuff_runs_bmi2<5>(rule, stuffed, start, len, window, out);
        case 6: return unstuff_runs_bmi2<6>(rule, stuffed, start, len, window, out);
        case 7: return unstuff_runs_bmi2<7>(rule, stuffed, start, len, window, out);
        case 8: return unstuff_runs_bmi2<8>(rule, stuffed, start, len, window, out);
        default: break;
      }
    }
#endif
    return dispatch_run_masker(window, [&](auto masker) {
      return unstuff_scan(rule, stuffed, start, len, out,
                          [&](std::uint64_t c, std::size_t n) {
                            return masker.mask(c, n);
                          });
    });
  }
  return unstuff_scan(rule, stuffed, start, len, out,
                      [&](std::uint64_t c, std::size_t n) {
                        const std::uint64_t m = window.match_mask(c, n);
                        window.advance(c, n);
                        return m;
                      });
}

std::optional<BitString> unstuff(const StuffingRule& rule,
                                 const BitString& stuffed) {
  BitString out;
  if (!unstuff_append(rule, stuffed, 0, stuffed.size(), out)) {
    return std::nullopt;
  }
  return out;
}

BitString add_flags(const BitString& flag, const BitString& body) {
  BitString out;
  out.reserve(body.size() + 2 * flag.size());
  out.append(flag);
  out.append(body);
  out.append(flag);
  return out;
}

std::optional<BitString> remove_flags(const BitString& flag,
                                      const BitString& framed) {
  if (framed.size() < 2 * flag.size()) return std::nullopt;
  if (!framed.matches_at(0, flag)) return std::nullopt;
  if (!framed.matches_at(framed.size() - flag.size(), flag)) return std::nullopt;
  return framed.slice(flag.size(), framed.size() - 2 * flag.size());
}

void frame_append(const StuffingRule& rule, const BitString& data,
                  BitString& out) {
  out.append(rule.flag);
  stuff_append(rule, data, out);
  out.append(rule.flag);
}

bool deframe_append(const StuffingRule& rule, const BitString& framed,
                    BitString& out) {
  return deframe_append(rule, framed, 0, framed.size(), out);
}

bool deframe_append(const StuffingRule& rule, const BitString& framed,
                    std::size_t start, std::size_t len, BitString& out) {
  const std::size_t fl = rule.flag.size();
  if (len < 2 * fl || start + len > framed.size()) return false;
  if (!framed.matches_at(start, rule.flag)) return false;
  if (!framed.matches_at(start + len - fl, rule.flag)) return false;
  return unstuff_append(rule, framed, start + fl, len - 2 * fl, out);
}

BitString frame(const StuffingRule& rule, const BitString& data) {
  BitString out;
  frame_append(rule, data, out);
  return out;
}

std::optional<BitString> deframe(const StuffingRule& rule,
                                 const BitString& framed) {
  BitString out;
  if (!deframe_append(rule, framed, out)) return std::nullopt;
  return out;
}

StreamDeframer::StreamDeframer(StuffingRule rule) : rule_(std::move(rule)) {
  const std::size_t len = rule_.flag.size();
  if (len == 0 || len > 63) {
    throw std::invalid_argument("flag length must be 1..63");
  }
  flag_len_ = len;
  flag_value_ = rule_.flag.to_uint();
  flag_mask_ = (1ull << len) - 1;
}

std::optional<BitString> StreamDeframer::push(bool bit) {
  // Shift register over the last |flag| bits for delimiter detection.
  window_ = (window_ << 1 | (bit ? 1u : 0u)) & flag_mask_;
  window_seen_ = std::min(window_seen_ + 1, flag_len_);
  const bool at_flag = window_seen_ >= flag_len_ && window_ == flag_value_;

  if (!in_frame_) {
    if (at_flag) {
      in_frame_ = true;
      body_.clear();
    }
    return std::nullopt;
  }

  body_.push_back(bit);
  if (at_flag && body_.size() >= flag_len_) {
    BitString stuffed = std::move(body_);
    stuffed.truncate(stuffed.size() - flag_len_);
    // Shared-flag convention: the closing flag opens the next frame.
    body_.clear();
    if (stuffed.empty()) return std::nullopt;  // inter-frame idle flags
    auto data = unstuff(rule_, stuffed);
    if (!data) {
      ++malformed_;
      return std::nullopt;
    }
    return data;
  }
  return std::nullopt;
}

std::vector<BitString> StreamDeframer::push_all(const BitString& bits) {
  std::vector<BitString> frames;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (auto f = push(bits[i])) frames.push_back(std::move(*f));
  }
  return frames;
}

}  // namespace sublayer::datalink
