#include "datalink/framing/stuffing.hpp"

#include <stdexcept>

namespace sublayer::datalink {
namespace {

/// Shift register that answers "do the last |pattern| bits equal pattern?".
class PatternWindow {
 public:
  explicit PatternWindow(const BitString& pattern)
      : len_(pattern.size()), pattern_(pattern.to_uint()),
        mask_(len_ >= 64 ? ~0ull : (1ull << len_) - 1) {
    if (len_ == 0 || len_ > 63) {
      throw std::invalid_argument("trigger length must be 1..63");
    }
  }

  /// Feeds one bit; returns true if the window now matches the pattern.
  bool push(bool bit) {
    reg_ = (reg_ << 1 | (bit ? 1u : 0u)) & mask_;
    ++seen_;
    return seen_ >= len_ && reg_ == pattern_;
  }

 private:
  std::size_t len_;
  std::uint64_t pattern_;
  std::uint64_t mask_;
  std::uint64_t reg_ = 0;
  std::size_t seen_ = 0;
};

}  // namespace

StuffingRule StuffingRule::hdlc() {
  return StuffingRule{BitString::parse("01111110"), BitString::parse("11111"),
                      false};
}

StuffingRule StuffingRule::low_overhead() {
  return StuffingRule{BitString::parse("00000010"), BitString::parse("0000001"),
                      true};
}

std::string StuffingRule::name() const {
  return "flag=" + flag.to_string() + " trigger=" + trigger.to_string() +
         " stuff=" + (stuff_bit ? "1" : "0");
}

BitString stuff(const StuffingRule& rule, const BitString& data) {
  PatternWindow window(rule.trigger);
  BitString out;
  int consecutive_stuffs = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool matched = window.push(data[i]);
    out.push_back(data[i]);
    consecutive_stuffs = 0;
    while (matched) {
      if (++consecutive_stuffs > 64) {
        // e.g. trigger = bbb...b with stuff bit b: stuffing retriggers itself
        // forever.  Such rules are degenerate and rejected by the verifier.
        throw std::invalid_argument("stuff: runaway self-triggering rule");
      }
      matched = window.push(rule.stuff_bit);
      out.push_back(rule.stuff_bit);
    }
  }
  return out;
}

std::optional<BitString> unstuff(const StuffingRule& rule,
                                 const BitString& stuffed) {
  PatternWindow window(rule.trigger);
  BitString out;
  std::size_t i = 0;
  while (i < stuffed.size()) {
    bool matched = window.push(stuffed[i]);
    out.push_back(stuffed[i]);
    ++i;
    while (matched && i < stuffed.size()) {
      // The bit after a trigger must be the stuffed bit; drop it.
      if (stuffed[i] != rule.stuff_bit) return std::nullopt;
      matched = window.push(rule.stuff_bit);
      ++i;
    }
  }
  return out;
}

BitString add_flags(const BitString& flag, const BitString& body) {
  BitString out = flag;
  out.append(body);
  out.append(flag);
  return out;
}

std::optional<BitString> remove_flags(const BitString& flag,
                                      const BitString& framed) {
  if (framed.size() < 2 * flag.size()) return std::nullopt;
  if (!framed.matches_at(0, flag)) return std::nullopt;
  if (!framed.matches_at(framed.size() - flag.size(), flag)) return std::nullopt;
  return framed.slice(flag.size(), framed.size() - 2 * flag.size());
}

BitString frame(const StuffingRule& rule, const BitString& data) {
  return add_flags(rule.flag, stuff(rule, data));
}

std::optional<BitString> deframe(const StuffingRule& rule,
                                 const BitString& framed) {
  const auto body = remove_flags(rule.flag, framed);
  if (!body) return std::nullopt;
  return unstuff(rule, *body);
}

StreamDeframer::StreamDeframer(StuffingRule rule) : rule_(std::move(rule)) {}

std::optional<BitString> StreamDeframer::push(bool bit) {
  // Maintain the last |flag| bits for delimiter detection.
  window_.push_back(bit);
  if (window_.size() > rule_.flag.size()) {
    window_ = window_.slice(1, window_.size() - 1);
  }
  const bool at_flag =
      window_.size() == rule_.flag.size() && window_ == rule_.flag;

  if (!in_frame_) {
    if (at_flag) {
      in_frame_ = true;
      body_.clear();
    }
    return std::nullopt;
  }

  body_.push_back(bit);
  if (at_flag && body_.size() >= rule_.flag.size()) {
    const BitString stuffed =
        body_.slice(0, body_.size() - rule_.flag.size());
    // Shared-flag convention: the closing flag opens the next frame.
    body_.clear();
    if (stuffed.empty()) return std::nullopt;  // inter-frame idle flags
    auto data = unstuff(rule_, stuffed);
    if (!data) {
      ++malformed_;
      return std::nullopt;
    }
    return data;
  }
  return std::nullopt;
}

std::vector<BitString> StreamDeframer::push_all(const BitString& bits) {
  std::vector<BitString> frames;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (auto f = push(bits[i])) frames.push_back(std::move(*f));
  }
  return frames;
}

}  // namespace sublayer::datalink
