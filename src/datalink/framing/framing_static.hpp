// Static form of the framing sublayer for the fused pipeline.  Stuffing is
// already implemented as free functions over a value-type rule, so the
// stage is a thin wrapper that fixes the rule at construction and gives
// the composer a uniform stage shape; the calls below inline completely.
//
// Stage shape (the fused composer's `Framing` concept):
//   explicit Framing(StuffingRule)
//   const StuffingRule& rule() const
//   void frame_append(const BitString& data, BitString& out) const
//   bool deframe_append(const BitString& framed, std::size_t start,
//                       std::size_t len, BitString& out) const
#pragma once

#include <utility>

#include "datalink/framing/stuffing.hpp"

namespace sublayer::datalink {

class StuffingFraming {
 public:
  explicit StuffingFraming(StuffingRule rule) : rule_(std::move(rule)) {}

  const StuffingRule& rule() const { return rule_; }

  void frame_append(const BitString& data, BitString& out) const {
    datalink::frame_append(rule_, data, out);
  }

  /// Range form: deframes framed[start, start+len) without materializing
  /// the slice (false leaves a partial prefix in `out` to discard).
  bool deframe_append(const BitString& framed, std::size_t start,
                      std::size_t len, BitString& out) const {
    return datalink::deframe_append(rule_, framed, start, len, out);
  }

 private:
  StuffingRule rule_;
};

}  // namespace sublayer::datalink
