// Go-back-N ARQ: sliding sender window, cumulative ACKs, receiver accepts
// only the next in-order frame; a timeout resends the whole window.
#include <deque>

#include "datalink/arq/arq.hpp"
#include "datalink/arq/frame.hpp"
#include "datalink/arq/resync.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink {
namespace {

using detail::ArqFrame;
using detail::ArqKind;
using detail::ResyncSession;

class GoBackN final : public ArqEndpoint {
 public:
  GoBackN(sim::Simulator& sim, ArqConfig config)
      : config_(config),
        timer_(sim, [this] { on_timeout(); }),
        resync_(sim, config.rto, stats_,
                {[this] { reset_sequence_state(); },
                 [this](const ArqFrame& f) {
                   if (sink_) sink_(f.encode(config_.arena));
                 },
                 [this] { pump(); }}) {
    bind_arq_stats(stats_);
  }

  std::string name() const override { return "go-back-n"; }
  void set_frame_sink(FrameSink sink) override { sink_ = std::move(sink); }
  void set_deliver(Deliver deliver) override { deliver_ = std::move(deliver); }

  bool send(Bytes payload) override {
    if (queue_.size() >= config_.max_send_queue) {
      ++stats_.send_queue_rejects;
      return false;
    }
    ++stats_.payloads_accepted;
    queue_.push_back(std::move(payload));
    pump();
    return true;
  }

  void on_frame(Bytes raw) override {
    const auto frame = ArqFrame::decode(std::move(raw));
    if (!frame) return;
    if (resync_.on_frame(*frame)) return;
    if (frame->kind == ArqKind::kData) {
      handle_data(*frame);
    } else {
      handle_ack(*frame);
    }
  }

  void resync() override { resync_.initiate(); }

  bool idle() const override { return outstanding_.empty() && queue_.empty(); }
  const ArqStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    save_arq_stats(w, stats_);
    w.u64(queue_.size());
    for (const Bytes& payload : queue_) w.blob(payload);
    w.u64(outstanding_.size());
    for (const Bytes& payload : outstanding_) w.blob(payload);
    w.u32(base_);
    w.u32(next_seq_);
    w.u32(recv_expected_);
    timer_.save(w);
    resync_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    restore_arq_stats(r, stats_);
    queue_.clear();
    const std::uint64_t nq = r.u64();
    for (std::uint64_t i = 0; i < nq; ++i) queue_.push_back(r.blob());
    outstanding_.clear();
    const std::uint64_t no = r.u64();
    for (std::uint64_t i = 0; i < no; ++i) outstanding_.push_back(r.blob());
    base_ = r.u32();
    next_seq_ = r.u32();
    recv_expected_ = r.u32();
    timer_.restore(r);
    resync_.restore(r);
  }

 private:
  void pump() {
    if (resync_.pending()) return;
    while (outstanding_.size() < config_.window && !queue_.empty()) {
      outstanding_.push_back(std::move(queue_.front()));
      queue_.pop_front();
      transmit(next_seq_, outstanding_.back(), /*retransmission=*/false);
      ++next_seq_;
    }
  }

  void transmit(std::uint32_t seq, const Bytes& payload, bool retransmission) {
    ++stats_.data_frames_sent;
    if (retransmission) ++stats_.retransmissions;
    if (!timer_.armed() || !retransmission) timer_.restart(config_.rto);
    if (sink_) {
      sink_(ArqFrame{ArqKind::kData, resync_.epoch(), seq, payload}.encode(
          config_.arena));
    }
  }

  void on_timeout() {
    if (outstanding_.empty()) return;
    timer_.restart(config_.rto);
    for (std::size_t i = 0; i < outstanding_.size(); ++i) {
      transmit(base_ + static_cast<std::uint32_t>(i), outstanding_[i],
               /*retransmission=*/true);
    }
  }

  void handle_ack(const ArqFrame& f) {
    // f.seq is cumulative: "next expected" at the receiver.
    const std::uint32_t acked = f.seq;
    if (acked <= base_ || acked > next_seq_) return;  // stale or bogus
    while (base_ < acked) {
      outstanding_.pop_front();
      ++base_;
    }
    if (outstanding_.empty()) {
      timer_.stop();
    } else {
      timer_.restart(config_.rto);
    }
    pump();
  }

  void handle_data(const ArqFrame& f) {
    if (f.seq == recv_expected_) {
      ++recv_expected_;
      ++stats_.delivered;
      if (deliver_) deliver_(f.payload);
    } else {
      ++stats_.duplicates_dropped;
    }
    // Cumulative ack (also repairs lost acks on duplicates).
    ++stats_.acks_sent;
    if (sink_) {
      sink_(
          ArqFrame{ArqKind::kAck, resync_.epoch(), recv_expected_, {}}.encode(config_.arena));
    }
  }

  // Unacknowledged window payloads go back to the front of the queue, in
  // order, to be resent from sequence 0 under the new epoch.
  void reset_sequence_state() {
    timer_.stop();
    while (!outstanding_.empty()) {
      queue_.push_front(std::move(outstanding_.back()));
      outstanding_.pop_back();
    }
    base_ = 0;
    next_seq_ = 0;
    recv_expected_ = 0;
  }

  ArqConfig config_;
  FrameSink sink_;
  Deliver deliver_;
  ArqStats stats_;
  sim::Timer timer_;
  ResyncSession resync_;

  std::deque<Bytes> queue_;        // accepted, not yet in window
  std::deque<Bytes> outstanding_;  // [base_, next_seq_)
  std::uint32_t base_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint32_t recv_expected_ = 0;
};

}  // namespace

std::unique_ptr<ArqEndpoint> make_go_back_n(sim::Simulator& sim,
                                            ArqConfig config) {
  return std::make_unique<GoBackN>(sim, config);
}

}  // namespace sublayer::datalink
