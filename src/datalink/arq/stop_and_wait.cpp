// Stop-and-wait ARQ: one frame outstanding, retransmit on timeout.
#include <deque>

#include "datalink/arq/arq.hpp"
#include "datalink/arq/frame.hpp"
#include "datalink/arq/resync.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink {
namespace {

using detail::ArqFrame;
using detail::ArqKind;
using detail::ResyncSession;

class StopAndWait final : public ArqEndpoint {
 public:
  StopAndWait(sim::Simulator& sim, ArqConfig config)
      : config_(config),
        timer_(sim, [this] { on_timeout(); }),
        resync_(sim, config.rto, stats_,
                {[this] { reset_sequence_state(); },
                 [this](const ArqFrame& f) {
                   if (sink_) sink_(f.encode(config_.arena));
                 },
                 [this] { pump(); }}) {
    bind_arq_stats(stats_);
  }

  std::string name() const override { return "stop-and-wait"; }
  void set_frame_sink(FrameSink sink) override { sink_ = std::move(sink); }
  void set_deliver(Deliver deliver) override { deliver_ = std::move(deliver); }

  bool send(Bytes payload) override {
    if (queue_.size() >= config_.max_send_queue) {
      ++stats_.send_queue_rejects;
      return false;
    }
    ++stats_.payloads_accepted;
    queue_.push_back(std::move(payload));
    pump();
    return true;
  }

  void on_frame(Bytes raw) override {
    const auto frame = ArqFrame::decode(std::move(raw));
    if (!frame) return;
    if (resync_.on_frame(*frame)) return;
    if (frame->kind == ArqKind::kData) {
      handle_data(*frame);
    } else {
      handle_ack(*frame);
    }
  }

  void resync() override { resync_.initiate(); }

  bool idle() const override { return !outstanding_ && queue_.empty(); }
  const ArqStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    save_arq_stats(w, stats_);
    w.u64(queue_.size());
    for (const Bytes& payload : queue_) w.blob(payload);
    w.b(outstanding_);
    w.u32(send_seq_);
    w.u32(recv_expected_);
    timer_.save(w);
    resync_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    restore_arq_stats(r, stats_);
    queue_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.blob());
    outstanding_ = r.b();
    send_seq_ = r.u32();
    recv_expected_ = r.u32();
    timer_.restore(r);
    resync_.restore(r);
  }

 private:
  void pump() {
    if (resync_.pending()) return;
    if (outstanding_ || queue_.empty()) return;
    outstanding_ = true;
    transmit_current(/*retransmission=*/false);
  }

  void transmit_current(bool retransmission) {
    ArqFrame f{ArqKind::kData, resync_.epoch(), send_seq_, queue_.front()};
    ++stats_.data_frames_sent;
    if (retransmission) ++stats_.retransmissions;
    timer_.restart(config_.rto);
    if (sink_) sink_(f.encode(config_.arena));
  }

  void on_timeout() {
    if (outstanding_) transmit_current(/*retransmission=*/true);
  }

  void handle_ack(const ArqFrame& f) {
    if (!outstanding_ || f.seq != send_seq_) return;  // stale ack
    outstanding_ = false;
    timer_.stop();
    queue_.pop_front();
    ++send_seq_;
    pump();
  }

  void handle_data(const ArqFrame& f) {
    // Always (re)ack so a lost ack gets repaired by the duplicate data.
    ++stats_.acks_sent;
    if (sink_) {
      sink_(ArqFrame{ArqKind::kAck, resync_.epoch(), f.seq, {}}.encode(config_.arena));
    }
    if (f.seq == recv_expected_) {
      ++recv_expected_;
      ++stats_.delivered;
      if (deliver_) deliver_(f.payload);
    } else {
      ++stats_.duplicates_dropped;
    }
  }

  // The unacknowledged payload (if any) is still queue_.front(), so
  // re-baselining only needs the flags and counters zeroed.
  void reset_sequence_state() {
    outstanding_ = false;
    timer_.stop();
    send_seq_ = 0;
    recv_expected_ = 0;
  }

  ArqConfig config_;
  FrameSink sink_;
  Deliver deliver_;
  ArqStats stats_;
  sim::Timer timer_;
  ResyncSession resync_;

  std::deque<Bytes> queue_;
  bool outstanding_ = false;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_expected_ = 0;
};

}  // namespace

std::unique_ptr<ArqEndpoint> make_stop_and_wait(sim::Simulator& sim,
                                                ArqConfig config) {
  config.window = 1;
  return std::make_unique<StopAndWait>(sim, config);
}

}  // namespace sublayer::datalink
