// The resynchronization half-protocol shared by all three ARQ engines.
//
// resync() re-baselines both directions of an ARQ connection to sequence 0
// under a fresh epoch (see frame.hpp for the epoch's role on the wire).
// The exchange is a one-round handshake:
//
//   initiator                                 peer
//   ---------                                 ----
//   epoch' = epoch+1; reset state
//   RESYNC{epoch', nonce}  ------------------>  first sight of nonce:
//                                               adopt epoch'; reset state
//   data paused            <-----------------  RESYNC-ACK{epoch', nonce}
//   resume under epoch'
//
// The nonce (a per-endpoint monotonic counter) makes the request
// idempotent: a duplicate RESYNC — retransmitted by the initiator's timer
// or released late by a healing link — is re-acknowledged without
// resetting the peer a second time.  Concurrent resyncs from both ends
// converge because each side treats the other's first-seen nonce as a new
// round, and the kind byte keeps the two handshakes' frames apart.
//
// The engines own their sequence state; this class owns only the protocol
// (epoch, nonce, retry timer) and calls back into the engine to reset and
// to resume.
#pragma once

#include <cstdint>
#include <functional>

#include "datalink/arq/arq.hpp"
#include "datalink/arq/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink::detail {

class ResyncSession {
 public:
  struct Hooks {
    /// Zero the engine's sequence state in both directions and requeue
    /// unacknowledged payloads at the front of the send queue, in order.
    std::function<void()> reset_state;
    /// Emit a control frame towards the channel.
    std::function<void(const ArqFrame&)> emit;
    /// Our re-baseline was acknowledged; data transmission may resume.
    std::function<void()> resumed;
  };

  ResyncSession(sim::Simulator& sim, Duration rto, ArqStats& stats,
                Hooks hooks)
      : rto_(rto),
        stats_(stats),
        hooks_(std::move(hooks)),
        timer_(sim, [this] { on_timer(); }) {}

  /// The epoch to stamp on every outgoing data/ack frame.
  std::uint8_t epoch() const { return epoch_; }
  /// True while our own re-baseline awaits the peer's acknowledgement;
  /// engines hold back data transmission while this is set.
  bool pending() const { return pending_; }

  void initiate() {
    ++stats_.resyncs;
    epoch_ = static_cast<std::uint8_t>(epoch_ + 1u);
    nonce_ = ++nonce_counter_;
    pending_ = true;
    hooks_.reset_state();
    send_request();
  }

  /// Checkpoint/restore (sim/snapshot.hpp): epoch, nonce state, and the
  /// retry timer (re-armed at its original deadline, so a pending resync
  /// request keeps its RTO schedule).  Inline format; the engine brackets.
  void save(sim::SnapshotWriter& w) const {
    w.u8(epoch_);
    w.u32(nonce_);
    w.u32(nonce_counter_);
    w.b(pending_);
    w.b(peer_seen_);
    w.u32(last_peer_nonce_);
    timer_.save(w);
  }

  void restore(sim::SnapshotReader& r) {
    epoch_ = r.u8();
    nonce_ = r.u32();
    nonce_counter_ = r.u32();
    pending_ = r.b();
    peer_seen_ = r.b();
    last_peer_nonce_ = r.u32();
    timer_.restore(r);
  }

  /// Filters every decoded inbound frame.  Returns true when the frame was
  /// consumed here — resync control traffic, or a data/ack frame from a
  /// stale epoch that must not touch the engine's sequence state.
  bool on_frame(const ArqFrame& f) {
    if (f.kind == ArqKind::kResync) {
      if (!peer_seen_ || f.seq != last_peer_nonce_) {
        peer_seen_ = true;
        last_peer_nonce_ = f.seq;
        epoch_ = f.epoch;
        hooks_.reset_state();
      }
      // Ack duplicates too: our previous ack may have been lost.
      hooks_.emit(ArqFrame{ArqKind::kResyncAck, f.epoch, f.seq, {}});
      return true;
    }
    if (f.kind == ArqKind::kResyncAck) {
      if (pending_ && f.seq == nonce_) {
        pending_ = false;
        timer_.stop();
        if (hooks_.resumed) hooks_.resumed();
      }
      return true;
    }
    if (f.epoch != epoch_) {
      ++stats_.stale_epoch_dropped;
      return true;
    }
    return false;
  }

 private:
  void send_request() {
    // Retry until acknowledged: the link may still be down.
    timer_.restart(rto_);
    hooks_.emit(ArqFrame{ArqKind::kResync, epoch_, nonce_, {}});
  }

  void on_timer() {
    if (pending_) send_request();
  }

  Duration rto_;
  ArqStats& stats_;
  Hooks hooks_;
  sim::Timer timer_;

  std::uint8_t epoch_ = 0;
  std::uint32_t nonce_ = 0;
  std::uint32_t nonce_counter_ = 0;
  bool pending_ = false;
  bool peer_seen_ = false;
  std::uint32_t last_peer_nonce_ = 0;
};

}  // namespace sublayer::datalink::detail
