// Selective-repeat ARQ: per-frame ACKs, receiver buffers out-of-order
// frames inside the window, sender retransmits only expired frames.
#include <deque>
#include <map>

#include "datalink/arq/arq.hpp"
#include "datalink/arq/frame.hpp"
#include "datalink/arq/resync.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink {
namespace {

using detail::ArqFrame;
using detail::ArqKind;
using detail::ResyncSession;

class SelectiveRepeat final : public ArqEndpoint {
 public:
  SelectiveRepeat(sim::Simulator& sim, ArqConfig config)
      : sim_(sim),
        config_(config),
        timer_(sim, [this] { on_timeout(); }),
        resync_(sim, config.rto, stats_,
                {[this] { reset_sequence_state(); },
                 [this](const ArqFrame& f) {
                   if (sink_) sink_(f.encode(config_.arena));
                 },
                 [this] { pump(); }}) {
    bind_arq_stats(stats_);
  }

  std::string name() const override { return "selective-repeat"; }
  void set_frame_sink(FrameSink sink) override { sink_ = std::move(sink); }
  void set_deliver(Deliver deliver) override { deliver_ = std::move(deliver); }

  bool send(Bytes payload) override {
    if (queue_.size() >= config_.max_send_queue) {
      ++stats_.send_queue_rejects;
      return false;
    }
    ++stats_.payloads_accepted;
    queue_.push_back(std::move(payload));
    pump();
    return true;
  }

  void on_frame(Bytes raw) override {
    const auto frame = ArqFrame::decode(std::move(raw));
    if (!frame) return;
    if (resync_.on_frame(*frame)) return;
    if (frame->kind == ArqKind::kData) {
      handle_data(*frame);
    } else {
      handle_ack(*frame);
    }
  }

  void resync() override { resync_.initiate(); }

  bool idle() const override { return outstanding_.empty() && queue_.empty(); }
  const ArqStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    save_arq_stats(w, stats_);
    w.u64(queue_.size());
    for (const Bytes& payload : queue_) w.blob(payload);
    // std::map iterates in key order — snapshot bytes are deterministic.
    w.u64(outstanding_.size());
    for (const auto& [seq, p] : outstanding_) {
      w.u32(seq);
      w.blob(p.payload);
      w.time(p.deadline);
    }
    w.u32(next_seq_);
    w.u32(recv_expected_);
    w.u64(recv_buffer_.size());
    for (const auto& [seq, payload] : recv_buffer_) {
      w.u32(seq);
      w.blob(payload);
    }
    timer_.save(w);
    resync_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    restore_arq_stats(r, stats_);
    queue_.clear();
    const std::uint64_t nq = r.u64();
    for (std::uint64_t i = 0; i < nq; ++i) queue_.push_back(r.blob());
    outstanding_.clear();
    const std::uint64_t no = r.u64();
    for (std::uint64_t i = 0; i < no; ++i) {
      const std::uint32_t seq = r.u32();
      Bytes payload = r.blob();
      const TimePoint deadline = r.time();
      outstanding_.emplace(seq, Pending{std::move(payload), deadline});
    }
    next_seq_ = r.u32();
    recv_expected_ = r.u32();
    recv_buffer_.clear();
    const std::uint64_t nb = r.u64();
    for (std::uint64_t i = 0; i < nb; ++i) {
      const std::uint32_t seq = r.u32();
      recv_buffer_.emplace(seq, r.blob());
    }
    timer_.restore(r);
    resync_.restore(r);
  }

 private:
  struct Pending {
    Bytes payload;
    TimePoint deadline;
  };

  void pump() {
    if (resync_.pending()) {
      rearm();
      return;
    }
    while (outstanding_.size() < config_.window && !queue_.empty()) {
      const std::uint32_t seq = next_seq_++;
      outstanding_.emplace(
          seq, Pending{std::move(queue_.front()), sim_.now() + config_.rto});
      queue_.pop_front();
      transmit(seq, outstanding_.at(seq).payload, /*retransmission=*/false);
    }
    rearm();
  }

  void transmit(std::uint32_t seq, const Bytes& payload, bool retransmission) {
    ++stats_.data_frames_sent;
    if (retransmission) ++stats_.retransmissions;
    if (sink_) {
      sink_(ArqFrame{ArqKind::kData, resync_.epoch(), seq, payload}.encode(
          config_.arena));
    }
  }

  void rearm() {
    if (outstanding_.empty()) {
      timer_.stop();
      return;
    }
    TimePoint earliest = outstanding_.begin()->second.deadline;
    for (const auto& [seq, p] : outstanding_) {
      earliest = std::min(earliest, p.deadline);
    }
    const Duration wait = earliest > sim_.now() ? earliest - sim_.now()
                                                : Duration::nanos(0);
    timer_.restart(wait);
  }

  void on_timeout() {
    const TimePoint now = sim_.now();
    for (auto& [seq, p] : outstanding_) {
      if (p.deadline <= now) {
        transmit(seq, p.payload, /*retransmission=*/true);
        p.deadline = now + config_.rto;
      }
    }
    rearm();
  }

  void handle_ack(const ArqFrame& f) {
    if (outstanding_.erase(f.seq) > 0) {
      pump();
    }
  }

  void handle_data(const ArqFrame& f) {
    // Beyond-window frames are dropped *unacknowledged*: acking a frame we
    // refuse to buffer would make the sender forget it forever.
    if (f.seq >= recv_expected_ + config_.window) return;

    // Individual ack for everything we hold — including already-delivered
    // duplicates, whose original ack may have been lost.
    ++stats_.acks_sent;
    if (sink_) {
      sink_(ArqFrame{ArqKind::kAck, resync_.epoch(), f.seq, {}}.encode(config_.arena));
    }

    if (f.seq < recv_expected_) {
      ++stats_.duplicates_dropped;
      return;
    }

    if (f.seq == recv_expected_) {
      deliver_in_order(f.payload);
      // Drain any buffered successors that are now in order.
      for (auto it = recv_buffer_.find(recv_expected_);
           it != recv_buffer_.end();
           it = recv_buffer_.find(recv_expected_)) {
        deliver_in_order(it->second);
        recv_buffer_.erase(it);
      }
    } else if (recv_buffer_.emplace(f.seq, f.payload).second) {
      ++stats_.out_of_order_buffered;
    } else {
      ++stats_.duplicates_dropped;
    }
  }

  void deliver_in_order(const Bytes& payload) {
    ++recv_expected_;
    ++stats_.delivered;
    if (deliver_) deliver_(payload);
  }

  // Unacknowledged window payloads go back to the front of the queue in
  // sequence order (the map iterates ascending), to be resent from
  // sequence 0 under the new epoch.
  void reset_sequence_state() {
    timer_.stop();
    for (auto it = outstanding_.rbegin(); it != outstanding_.rend(); ++it) {
      queue_.push_front(std::move(it->second.payload));
    }
    outstanding_.clear();
    next_seq_ = 0;
    recv_expected_ = 0;
    recv_buffer_.clear();
  }

  sim::Simulator& sim_;
  ArqConfig config_;
  FrameSink sink_;
  Deliver deliver_;
  ArqStats stats_;
  sim::Timer timer_;
  ResyncSession resync_;

  std::deque<Bytes> queue_;
  std::map<std::uint32_t, Pending> outstanding_;
  std::uint32_t next_seq_ = 0;

  std::uint32_t recv_expected_ = 0;
  std::map<std::uint32_t, Bytes> recv_buffer_;
};

}  // namespace

void save_arq_stats(sim::SnapshotWriter& w, const ArqStats& stats) {
  w.u64(stats.payloads_accepted.value());
  w.u64(stats.data_frames_sent.value());
  w.u64(stats.retransmissions.value());
  w.u64(stats.acks_sent.value());
  w.u64(stats.delivered.value());
  w.u64(stats.duplicates_dropped.value());
  w.u64(stats.out_of_order_buffered.value());
  w.u64(stats.send_queue_rejects.value());
  w.u64(stats.resyncs.value());
  w.u64(stats.stale_epoch_dropped.value());
}

void restore_arq_stats(sim::SnapshotReader& r, ArqStats& stats) {
  stats.payloads_accepted.restore_local(r.u64());
  stats.data_frames_sent.restore_local(r.u64());
  stats.retransmissions.restore_local(r.u64());
  stats.acks_sent.restore_local(r.u64());
  stats.delivered.restore_local(r.u64());
  stats.duplicates_dropped.restore_local(r.u64());
  stats.out_of_order_buffered.restore_local(r.u64());
  stats.send_queue_rejects.restore_local(r.u64());
  stats.resyncs.restore_local(r.u64());
  stats.stale_epoch_dropped.restore_local(r.u64());
}

std::unique_ptr<ArqEndpoint> make_selective_repeat(sim::Simulator& sim,
                                                   ArqConfig config) {
  return std::make_unique<SelectiveRepeat>(sim, config);
}

ArqFactory arq_factory(const std::string& engine_name) {
  if (engine_name == "stop-and-wait") {
    return [](sim::Simulator& s, ArqConfig c) { return make_stop_and_wait(s, c); };
  }
  if (engine_name == "go-back-n") {
    return [](sim::Simulator& s, ArqConfig c) { return make_go_back_n(s, c); };
  }
  if (engine_name == "selective-repeat") {
    return [](sim::Simulator& s, ArqConfig c) {
      return make_selective_repeat(s, c);
    };
  }
  throw std::invalid_argument("unknown ARQ engine: " + engine_name);
}

}  // namespace sublayer::datalink
