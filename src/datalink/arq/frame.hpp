// Internal wire format shared by the ARQ engines.
//
// Sequence numbers are 32-bit and monotonic (no wraparound): at data-link
// frame rates this gives 4 billion frames per connection, and it keeps the
// ARQ engines focused on the recovery logic.  (The transport layer's RD
// sublayer implements full modular sequence arithmetic, where it matters.)
//
// The epoch byte partitions sequence space into resynchronization rounds:
// every frame carries its sender's current epoch, and receivers discard
// data/ack frames from any other epoch.  A RESYNC exchange (see
// ArqEndpoint::resync) re-baselines both directions to sequence 0 under a
// fresh epoch, so stragglers from before the resync — duplicates delayed
// by jitter, retransmissions released by a healing link — can never be
// mistaken for frames of the new sequence space.  The epoch wraps at 256;
// that is safe because a stale frame would need to survive exactly 256
// intervening resyncs to alias, far beyond any frame lifetime here.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/frame_arena.hpp"

namespace sublayer::datalink::detail {

enum class ArqKind : std::uint8_t {
  kData = 1,
  kAck = 2,
  /// Re-baseline request: epoch carries the proposed new epoch, seq a
  /// nonce echoed by the matching kResyncAck.  Sent by resync() until
  /// acknowledged; the peer resets both directions on first sight.
  kResync = 3,
  kResyncAck = 4,
};

struct ArqFrame {
  ArqKind kind = ArqKind::kData;
  std::uint8_t epoch = 0;
  std::uint32_t seq = 0;  // DATA: frame seq; ACK: engine-defined ack number
  Bytes payload;

  Bytes encode() const {
    Bytes out;
    encode_into(out);
    return out;
  }

  /// encode() appended to a caller-owned buffer — the arena form: no
  /// allocation once `out`'s recycled capacity covers the frame.
  void encode_into(Bytes& out) const {
    out.reserve(out.size() + kHeaderSize + payload.size());
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u8(epoch);
    w.u32(seq);
    w.bytes(payload);
  }

  /// Encodes into a buffer drawn from `arena` (or a fresh one without an
  /// arena) — the one emit path all three ARQ engines share.
  Bytes encode(FrameArena* arena) const {
    if (arena == nullptr) return encode();
    Bytes out = arena->acquire_bytes();
    encode_into(out);
    return out;
  }

  static bool valid_kind(std::uint8_t k) {
    return k >= static_cast<std::uint8_t>(ArqKind::kData) &&
           k <= static_cast<std::uint8_t>(ArqKind::kResyncAck);
  }

  static std::optional<ArqFrame> decode(ByteView raw) {
    if (raw.size() < kHeaderSize) return std::nullopt;
    ByteReader r(raw);
    ArqFrame f;
    const std::uint8_t k = r.u8();
    if (!valid_kind(k)) return std::nullopt;
    f.kind = static_cast<ArqKind>(k);
    f.epoch = r.u8();
    f.seq = r.u32();
    f.payload = r.rest();
    return f;
  }

  /// Move-decode: reuses `raw`'s buffer for the payload (the header prefix
  /// is erased in place) instead of copying the remainder.
  static std::optional<ArqFrame> decode(Bytes&& raw) {
    if (raw.size() < kHeaderSize) return std::nullopt;
    ByteReader r(raw);
    ArqFrame f;
    const std::uint8_t k = r.u8();
    if (!valid_kind(k)) return std::nullopt;
    f.kind = static_cast<ArqKind>(k);
    f.epoch = r.u8();
    f.seq = r.u32();
    raw.erase(raw.begin(), raw.begin() + kHeaderSize);
    f.payload = std::move(raw);
    return f;
  }

  static constexpr std::size_t kHeaderSize = 6;  // kind(1) + epoch(1) + seq(4)
};

}  // namespace sublayer::datalink::detail
