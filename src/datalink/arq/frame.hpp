// Internal wire format shared by the ARQ engines.
//
// Sequence numbers are 32-bit and monotonic (no wraparound): at data-link
// frame rates this gives 4 billion frames per connection, and it keeps the
// ARQ engines focused on the recovery logic.  (The transport layer's RD
// sublayer implements full modular sequence arithmetic, where it matters.)
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace sublayer::datalink::detail {

enum class ArqKind : std::uint8_t { kData = 1, kAck = 2 };

struct ArqFrame {
  ArqKind kind = ArqKind::kData;
  std::uint32_t seq = 0;  // DATA: frame seq; ACK: engine-defined ack number
  Bytes payload;

  Bytes encode() const {
    Bytes out;
    out.reserve(kHeaderSize + payload.size());
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(seq);
    w.bytes(payload);
    return out;
  }

  static std::optional<ArqFrame> decode(ByteView raw) {
    if (raw.size() < kHeaderSize) return std::nullopt;
    ByteReader r(raw);
    ArqFrame f;
    const std::uint8_t k = r.u8();
    if (k != static_cast<std::uint8_t>(ArqKind::kData) &&
        k != static_cast<std::uint8_t>(ArqKind::kAck)) {
      return std::nullopt;
    }
    f.kind = static_cast<ArqKind>(k);
    f.seq = r.u32();
    f.payload = r.rest();
    return f;
  }

  /// Move-decode: reuses `raw`'s buffer for the payload (the header prefix
  /// is erased in place) instead of copying the remainder.
  static std::optional<ArqFrame> decode(Bytes&& raw) {
    if (raw.size() < kHeaderSize) return std::nullopt;
    ByteReader r(raw);
    ArqFrame f;
    const std::uint8_t k = r.u8();
    if (k != static_cast<std::uint8_t>(ArqKind::kData) &&
        k != static_cast<std::uint8_t>(ArqKind::kAck)) {
      return std::nullopt;
    }
    f.kind = static_cast<ArqKind>(k);
    f.seq = r.u32();
    raw.erase(raw.begin(), raw.begin() + kHeaderSize);
    f.payload = std::move(raw);
    return f;
  }

  static constexpr std::size_t kHeaderSize = 5;  // kind(1) + seq(4)
};

}  // namespace sublayer::datalink::detail
