// Error-recovery sublayer (Fig. 2): reliable in-order frame delivery over
// an unreliable (lossy, duplicating) frame channel, HDLC/Fibre-Channel
// style.
//
// The sublayer contract: every payload passed to send() is delivered to
// the peer's deliver callback exactly once, in order, assuming the channel
// eventually delivers some retransmission.  Three engines implement the
// same interface — stop-and-wait, go-back-N, selective repeat — so the
// recovery mechanism is swappable (test T3) without touching framing below
// or anything above.
//
// The ARQ sublayer assumes corrupted frames were already discarded by the
// error-detection sublayer below it; it only copes with loss, duplication,
// and reordering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/frame_arena.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::datalink {

struct ArqConfig {
  /// Sender window in frames (forced to 1 for stop-and-wait).
  std::uint16_t window = 8;
  /// Retransmission timeout.
  Duration rto = Duration::millis(50);
  /// Cap on payloads queued awaiting a window slot.
  std::size_t max_send_queue = 4096;
  /// Optional buffer pool for encoded frames (not owned).  The engines draw
  /// every frame they emit from it; the data plane below recycles the
  /// buffer once the frame's bits are on the wire.  Null: plain heap Bytes.
  FrameArena* arena = nullptr;
};

/// Registry-backed (`datalink.arq.*`); reads stay per-instance.
struct ArqStats {
  telemetry::Counter payloads_accepted;
  telemetry::Counter data_frames_sent;
  telemetry::Counter retransmissions;
  telemetry::Counter acks_sent;
  telemetry::Counter delivered;
  telemetry::Counter duplicates_dropped;
  telemetry::Counter out_of_order_buffered;
  telemetry::Counter send_queue_rejects;
  telemetry::Counter resyncs;              // re-baseline rounds initiated
  telemetry::Counter stale_epoch_dropped;  // frames from a pre-resync epoch
};

/// Shared by all three ARQ engines: binds the stats struct to the
/// registry (called once per engine instance, at construction).
inline void bind_arq_stats(ArqStats& stats) {
  stats.payloads_accepted.bind("datalink.arq.payloads_accepted");
  stats.data_frames_sent.bind("datalink.arq.data_frames_sent");
  stats.retransmissions.bind("datalink.arq.retransmissions");
  stats.acks_sent.bind("datalink.arq.acks_sent");
  stats.delivered.bind("datalink.arq.delivered");
  stats.duplicates_dropped.bind("datalink.arq.duplicates_dropped");
  stats.out_of_order_buffered.bind("datalink.arq.out_of_order_buffered");
  stats.send_queue_rejects.bind("datalink.arq.send_queue_rejects");
  stats.resyncs.bind("datalink.arq.resyncs");
  stats.stale_epoch_dropped.bind("datalink.arq.stale_epoch_dropped");
}

/// One end of a bidirectional reliable link.  Wire both ends' frame_sink to
/// the opposite end's on_frame through any unreliable channel.
class ArqEndpoint {
 public:
  using FrameSink = std::function<void(Bytes)>;  // towards the channel
  using Deliver = std::function<void(Bytes)>;    // towards the upper layer

  virtual ~ArqEndpoint() = default;

  virtual std::string name() const = 0;

  virtual void set_frame_sink(FrameSink sink) = 0;
  virtual void set_deliver(Deliver deliver) = 0;

  /// Queues a payload for reliable delivery.  Returns false if the send
  /// queue is full (backpressure).
  virtual bool send(Bytes payload) = 0;

  /// Feeds a frame received from the channel.
  virtual void on_frame(Bytes frame) = 0;

  /// Re-baselines both directions of the connection to sequence 0 under a
  /// fresh epoch, via a RESYNC/RESYNC-ACK exchange with the peer.  The
  /// recovery tool for sequence-state divergence that timers alone cannot
  /// heal — an endpoint restarted with full state loss would otherwise
  /// deadlock against a peer partway through sequence space.  Payloads
  /// accepted but unacknowledged at resync time are requeued and resent
  /// under the new epoch: across a resync the service degrades from
  /// exactly-once to at-least-once (a payload whose ack was lost may be
  /// delivered twice), which upper layers must tolerate — transport's RD
  /// sublayer does.  Data transmission pauses until the peer acknowledges
  /// the re-baseline; the request retries on the RTO schedule.
  virtual void resync() = 0;

  /// True when all accepted payloads have been acknowledged.
  virtual bool idle() const = 0;

  virtual const ArqStats& stats() const = 0;

  /// Checkpoint/restore (sim/snapshot.hpp): stats, send queue, the
  /// engine-specific window state (mid-retransmit windows resume exactly,
  /// with original timer deadlines), and the resync session's epoch/nonce
  /// state.  Config is not saved — the restore graph must construct the
  /// same engine with the same ArqConfig.  Inline format; the owner
  /// brackets.
  virtual void save(sim::SnapshotWriter& w) const = 0;
  virtual void restore(sim::SnapshotReader& r) = 0;
};

/// Shared stats (de)serialization for the three engines — counters in
/// declaration order.
void save_arq_stats(sim::SnapshotWriter& w, const ArqStats& stats);
void restore_arq_stats(sim::SnapshotReader& r, ArqStats& stats);

std::unique_ptr<ArqEndpoint> make_stop_and_wait(sim::Simulator& sim,
                                                ArqConfig config = {});
std::unique_ptr<ArqEndpoint> make_go_back_n(sim::Simulator& sim,
                                            ArqConfig config = {});
std::unique_ptr<ArqEndpoint> make_selective_repeat(sim::Simulator& sim,
                                                   ArqConfig config = {});

/// All three engine factories, keyed by name — used by parameterized tests
/// and the swap benchmarks.
using ArqFactory =
    std::function<std::unique_ptr<ArqEndpoint>(sim::Simulator&, ArqConfig)>;
ArqFactory arq_factory(const std::string& engine_name);

}  // namespace sublayer::datalink
