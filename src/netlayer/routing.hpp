// Route-computation sublayer interface (Fig. 4).
//
// Sits between neighbor determination (below: provides the live neighbor
// list) and forwarding (above: consumes the computed route table).  Two
// engines implement it — distance vector and link state — and are
// swappable without touching either neighbor discovery or forwarding,
// which is the paper's §2.2 replaceability claim.  Engines exchange their
// own control packets (advertisements / LSPs), which are distinct packets
// from IP data (T3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "netlayer/neighbor.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sublayer::netlayer {

struct Route {
  int interface = -1;
  RouterId next_hop = 0;
  double metric = 0;
  friend bool operator==(const Route&, const Route&) = default;
};

/// Destination router -> route.  (Forwarding maps this onto prefixes.)
using RouteTable = std::map<RouterId, Route>;

struct RoutingConfig {
  /// Distance vector: periodic advertisement interval.
  Duration advert_interval = Duration::millis(200);
  /// Distance vector: a route not refreshed for this long is withdrawn.
  Duration route_timeout = Duration::millis(700);
  /// Metric treated as unreachable (RIP-style counting-to-infinity bound).
  double infinity = 16.0;
  /// Link state: periodic LSP refresh interval.
  Duration lsp_refresh = Duration::millis(500);
};

/// Registry-backed (`netlayer.routing.*`); reads stay per-instance.
struct RoutingStats {
  telemetry::Counter messages_sent;
  telemetry::Counter messages_received;
  telemetry::Counter bytes_sent;
  telemetry::Counter recomputations;
};

/// Shared by both routing engines: binds the stats struct to the registry
/// and interns the routing boundary for the span tracer.  Returns the
/// interned boundary id.
inline std::uint32_t bind_routing_stats(RoutingStats& stats) {
  stats.messages_sent.bind("netlayer.routing.messages_sent");
  stats.messages_received.bind("netlayer.routing.messages_received");
  stats.bytes_sent.bind("netlayer.routing.bytes_sent");
  stats.recomputations.bind("netlayer.routing.recomputations");
  return telemetry::SpanTracer::instance().intern("netlayer.routing");
}

class RouteComputation {
 public:
  /// Sends a routing control message out of an interface.
  using MessageSink = std::function<void(int interface, Bytes message)>;
  /// Fired whenever the route table changes.
  using TableCallback = std::function<void(const RouteTable&)>;

  virtual ~RouteComputation() = default;

  virtual std::string name() const = 0;
  virtual void set_message_sink(MessageSink sink) = 0;
  virtual void set_table_callback(TableCallback cb) = 0;

  virtual void start() = 0;

  /// Feeds a routing control message received on `interface`.
  virtual void on_message(int interface, ByteView message) = 0;

  /// Neighbor-determination sublayer reports a change (T2 interface).
  virtual void on_neighbors_changed() = 0;

  virtual const RouteTable& table() const = 0;
  virtual const RoutingStats& stats() const = 0;

  /// Checkpoint/restore (sim/snapshot.hpp): the engine's full mutable
  /// state — learned routes / LSP database, sequence numbers, the public
  /// table, stats, and protocol timers.  restore() must not fire the
  /// table callback (the FIB is restored separately by the owning
  /// Router).  Inline format; the owner brackets the section.
  virtual void save(sim::SnapshotWriter& w) const = 0;
  virtual void restore(sim::SnapshotReader& r) = 0;
};

/// `neighbors` must outlive the engine.
std::unique_ptr<RouteComputation> make_distance_vector(
    sim::Simulator& sim, RouterId self, const NeighborTable& neighbors,
    RoutingConfig config = {});

std::unique_ptr<RouteComputation> make_link_state(
    sim::Simulator& sim, RouterId self, const NeighborTable& neighbors,
    RoutingConfig config = {});

enum class RoutingKind { kDistanceVector, kLinkState };

std::unique_ptr<RouteComputation> make_routing(RoutingKind kind,
                                               sim::Simulator& sim,
                                               RouterId self,
                                               const NeighborTable& neighbors,
                                               RoutingConfig config = {});

}  // namespace sublayer::netlayer
