// Router: the composed network layer of Figs. 3–4.
//
//   control plane:  neighbor determination  →  route computation
//                        (HELLO packets)        (adverts / LSPs)
//   data plane:     forwarding over the FIB, TTL handling, local delivery
//
// The three sublayers communicate only through their narrow interfaces:
// neighbor changes flow up as a callback, computed route tables flow up to
// forwarding as a table-install callback, and each sublayer's packets are
// distinct frame types on the link (T3) — the router merely demultiplexes
// them by a one-byte frame type.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "netlayer/fib.hpp"
#include "netlayer/ip.hpp"
#include "netlayer/routing.hpp"
#include "sim/link.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace sublayer::netlayer {

struct RouterConfig {
  RoutingKind routing = RoutingKind::kLinkState;
  NeighborConfig neighbor;
  RoutingConfig routing_config;
  /// AQM/ECN: datagrams forwarded onto a link whose serialization backlog
  /// exceeds this get the congestion-experienced mark.  Zero disables.
  Duration ecn_backlog_threshold = Duration::nanos(0);
  /// Network-harness links only: append a 32-bit SipHash-based frame check
  /// sequence to every link frame and drop mismatches at the receiver.
  /// Models the L2 FCS real deployments rely on — neither the native
  /// transport wire format nor the simulated IP header carries a checksum
  /// (corruption is a link-layer problem), so corruption faults on bare
  /// links would otherwise deliver flipped bits straight to applications.
  bool link_fcs = false;
  /// Network-harness links only: attach batch receivers so burst dequeue
  /// (Simulator::set_burst_budget) can drain same-tick deliveries in one
  /// scheduler visit.  Frames still reach the router one at a time, in
  /// delivery order; traces are identical at every burst budget.
  bool batched_links = false;
};

/// Registry-backed (`netlayer.fwd.*`); reads stay per-instance.
struct RouterStats {
  telemetry::Counter datagrams_forwarded;
  telemetry::Counter delivered_local;
  telemetry::Counter ttl_expired;
  telemetry::Counter no_route;
  telemetry::Counter malformed;
  telemetry::Counter ecn_marked;
  telemetry::Counter dropped_while_down;  // frames arriving during a crash
  telemetry::Counter routes_flushed;  // FIB withdrawals at neighbor death
};

class Router {
 public:
  /// Sends a raw link frame out of interface `index`.
  using LinkSink = std::function<void(Bytes)>;
  /// Local delivery of a datagram addressed to this router's prefix.
  using ProtocolHandler = std::function<void(const IpHeader&, Bytes payload)>;

  Router(sim::Simulator& sim, RouterId id, const RouterConfig& config);

  RouterId id() const { return id_; }

  /// The simulator this router schedules on — its owning shard's under the
  /// parallel engine.  Hosts attach through this so their timers land on
  /// the same wheel as the router's.
  sim::Simulator& sim() { return sim_; }

  /// Registers a new interface; frames for it are emitted through `sink`.
  /// Returns the interface index.  Wire the peer's frames to
  /// on_link_frame(index, ...).
  int add_interface(LinkSink sink, double cost = 1.0);

  /// AQM hook: reports the outgoing link's serialization backlog for ECN
  /// marking decisions.  Installed by Network::connect.
  using CongestionProbe = std::function<Duration()>;
  void set_congestion_probe(int interface, CongestionProbe probe);

  /// Starts hello and routing protocol timers.
  void start();

  /// Chaos support: crash with full control-plane state loss.  The router
  /// keeps its identity, interfaces, and protocol handlers (cabling and
  /// applications outlive a reboot) but loses its neighbor table, all
  /// routing state (LSDB / learned routes / sequence numbers), and the
  /// FIB, and drops every frame until restart().
  void crash();
  /// Boots the crashed router: protocol timers restart and the control
  /// plane rebuilds itself from HELLOs up, exactly like a cold start.
  void restart();
  bool is_up() const { return up_; }

  /// Feeds a raw frame that arrived on interface `index`.
  void on_link_frame(int index, Bytes frame);

  /// Sends a datagram originating at this router's local host.
  void send_datagram(IpHeader header, ByteView payload);

  void set_protocol_handler(IpProto proto, ProtocolHandler handler);

  const RouteTable& routes() const { return routing_->table(); }
  const Fib& fib() const { return fib_; }
  const RouterStats& stats() const { return stats_; }
  const RoutingStats& routing_stats() const { return routing_->stats(); }
  const NeighborStats& neighbor_stats() const { return neighbors_->stats(); }
  const NeighborTable& neighbors() const { return *neighbors_; }
  const std::string routing_name() const { return routing_->name(); }

  /// Checkpoint/restore (sim/snapshot.hpp): up/started flags, forwarding
  /// stats, FIB, and both control-plane sublayers.  restore() runs on a
  /// freshly constructed router with identical interfaces; protocol
  /// handlers are NOT saved — applications re-register theirs on the
  /// restore graph.  Inline format; the owning Network brackets.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  enum class FrameType : std::uint8_t { kHello = 1, kRouting = 2, kData = 3 };

  void emit(int interface, FrameType type, ByteView payload);
  void install_table(const RouteTable& table);
  void forward(Bytes datagram);
  /// (Re)creates the neighbor table and routing engine and wires the
  /// sublayer callbacks; shared by the constructor and crash().
  void build_control_plane();
  /// Withdraws FIB entries whose outgoing interface has no live neighbor.
  void flush_routes_via_dead_interfaces();
  bool iface_has_live_neighbor(int interface) const;

  sim::Simulator& sim_;
  RouterId id_;
  RouterConfig config_;
  std::vector<LinkSink> interfaces_;
  std::vector<CongestionProbe> probes_;
  std::vector<double> iface_costs_;
  // unique_ptr so crash() can destroy and rebuild the control plane; the
  // routing engine references the neighbor table, so neighbors_ must be
  // reset only after routing_.
  std::unique_ptr<NeighborTable> neighbors_;
  std::unique_ptr<RouteComputation> routing_;
  Fib fib_;
  RouterStats stats_;
  bool up_ = true;
  bool started_ = false;
  std::uint32_t span_ = 0;
  std::map<IpProto, ProtocolHandler> handlers_;
};

/// Topology harness: routers plus duplex links, with failure injection.
///
/// Two modes share all topology and chaos APIs:
///  - monolithic: every router schedules on the one Simulator passed in;
///  - sharded: routers are placed on a ParallelSimulator's shards by a
///    ShardMap (hash of the RouterId by default).  Same-shard links wire
///    exactly as in monolithic mode; cross-shard links use the split
///    DuplexLink form (each direction's sender state on the transmitting
///    shard) with deliveries crossing through registered channels.
class Network {
 public:
  Network(sim::Simulator& sim, RouterConfig config, std::uint64_t seed = 1);

  /// Sharded mode.  `shard_map.shards()` must equal `psim.shard_count()`;
  /// the overload without a map uses the default hash placement.
  Network(sim::ParallelSimulator& psim, RouterConfig config,
          std::uint64_t seed, sim::ShardMap shard_map);
  Network(sim::ParallelSimulator& psim, RouterConfig config,
          std::uint64_t seed = 1);

  RouterId add_router();
  /// Connects two routers with a fresh duplex link; returns the link index.
  std::size_t connect(RouterId a, RouterId b,
                      const sim::LinkConfig& link_config = {},
                      double cost = 1.0);

  void start();

  Router& router(RouterId id) { return *routers_.at(id); }
  std::size_t router_count() const { return routers_.size(); }

  /// The shard a router lives on (0 in monolithic mode) and its simulator.
  std::size_t shard_of(RouterId id) const;
  sim::Simulator& sim_of(RouterId id);

  void fail_link(std::size_t link_index);
  void restore_link(std::size_t link_index);

  /// Chaos access: the underlying duplex link (live reconfiguration of
  /// impairments) and which router/interface sits at each end.
  struct LinkEnds {
    RouterId a = 0;
    int iface_a = -1;
    RouterId b = 0;
    int iface_b = -1;
  };
  std::size_t link_count() const { return links_.size(); }
  sim::DuplexLink& link(std::size_t link_index) {
    return *links_.at(link_index);
  }
  const LinkEnds& link_ends(std::size_t link_index) const {
    return ends_.at(link_index);
  }
  /// Frames dropped by the harness FCS check (config.link_fcs).  Atomic:
  /// under the parallel engine the check runs on the receiving shard's
  /// worker, and drops on different shards would otherwise race.
  std::uint64_t fcs_dropped_frames() const {
    return fcs_dropped_frames_.load(std::memory_order_relaxed);
  }

  /// Sum of routing-protocol messages across all routers.
  std::uint64_t total_routing_messages() const;
  std::uint64_t total_routing_bytes() const;

  /// True when every router has a route to every other router.
  bool fully_converged() const;
  /// True when every router except `excluded` can reach all others.
  bool converged_excluding(RouterId excluded) const;

  /// Checkpoint/restore (sim/snapshot.hpp): the topology Rng, every
  /// router, every link (with deliveries in flight), and the FCS drop
  /// count.  restore() runs on a freshly built identical topology —
  /// same add_router/connect sequence, same seed — before start(); the
  /// saved state then overwrites the fresh modules and re-arms their
  /// pending events.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  sim::Simulator* sim_ = nullptr;          // monolithic mode
  sim::ParallelSimulator* psim_ = nullptr;  // sharded mode
  std::optional<sim::ShardMap> shard_map_;
  RouterConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<sim::DuplexLink>> links_;
  std::vector<LinkEnds> ends_;
  std::atomic<std::uint64_t> fcs_dropped_frames_ = 0;
};

}  // namespace sublayer::netlayer
