#include "netlayer/ip.hpp"

#include <cstdio>

namespace sublayer::netlayer {

namespace {
constexpr std::uint8_t kVersion = 4;
}

std::string addr_to_string(IpAddr a) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", a >> 24 & 0xff, a >> 16 & 0xff,
                a >> 8 & 0xff, a & 0xff);
  return buf;
}

std::string Prefix::to_string() const {
  return addr_to_string(addr) + "/" + std::to_string(len);
}

Bytes IpHeader::encode(ByteView payload) const {
  Bytes out;
  out.reserve(kSize + payload.size());
  ByteWriter w(out);
  w.u8(kVersion);
  w.u8(ecn_ce ? 1 : 0);  // flags: bit 0 = congestion experienced
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u32(src);
  w.u32(dst);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  return out;
}

std::optional<DatagramView> decode_datagram_view(ByteView datagram) {
  if (datagram.size() < IpHeader::kSize) return std::nullopt;
  ByteReader r(datagram);
  if (r.u8() != kVersion) return std::nullopt;
  DatagramView p;
  p.header.ecn_ce = (r.u8() & 1) != 0;
  p.header.ttl = r.u8();
  p.header.protocol = static_cast<IpProto>(r.u8());
  p.header.src = r.u32();
  p.header.dst = r.u32();
  const std::uint16_t len = r.u16();
  if (r.remaining() != len) return std::nullopt;
  p.payload = r.rest_view();
  return p;
}

std::optional<ParsedDatagram> decode_datagram(ByteView datagram) {
  const auto v = decode_datagram_view(datagram);
  if (!v) return std::nullopt;
  return ParsedDatagram{v->header, Bytes(v->payload.begin(), v->payload.end())};
}

}  // namespace sublayer::netlayer
