// Link-state route computation (OSPF/IS-IS style): each router originates
// a sequence-numbered Link State Packet describing its neighbors, floods
// it, and runs Dijkstra over the resulting link-state database.
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "netlayer/routing.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::netlayer {
namespace {

void save_route_table(sim::SnapshotWriter& w, const RouteTable& table) {
  w.u64(table.size());
  for (const auto& [dest, route] : table) {
    w.u32(dest);
    w.i64(route.interface);
    w.u32(route.next_hop);
    w.f64(route.metric);
  }
}

RouteTable restore_route_table(sim::SnapshotReader& r) {
  RouteTable table;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const RouterId dest = r.u32();
    Route route;
    route.interface = static_cast<int>(r.i64());
    route.next_hop = r.u32();
    route.metric = r.f64();
    table[dest] = route;
  }
  return table;
}

struct Lsp {
  RouterId origin = 0;
  std::uint32_t seq = 0;
  std::vector<std::pair<RouterId, double>> links;

  Bytes encode() const {
    Bytes out;
    ByteWriter w(out);
    w.u32(origin);
    w.u32(seq);
    w.u16(static_cast<std::uint16_t>(links.size()));
    for (const auto& [peer, cost] : links) {
      w.u32(peer);
      w.u16(static_cast<std::uint16_t>(cost * 100.0 + 0.5));
    }
    return out;
  }

  static std::optional<Lsp> decode(ByteView raw) {
    try {
      ByteReader r(raw);
      Lsp lsp;
      lsp.origin = r.u32();
      lsp.seq = r.u32();
      const std::uint16_t count = r.u16();
      for (int i = 0; i < count; ++i) {
        const RouterId peer = r.u32();
        const double cost = r.u16() / 100.0;
        lsp.links.emplace_back(peer, cost);
      }
      if (r.remaining() != 0) return std::nullopt;
      return lsp;
    } catch (const std::out_of_range&) {
      return std::nullopt;
    }
  }
};

class LinkState final : public RouteComputation {
 public:
  LinkState(sim::Simulator& sim, RouterId self, const NeighborTable& neighbors,
            RoutingConfig config)
      : self_(self),
        neighbors_(neighbors),
        config_(config),
        refresh_timer_(sim, [this] { refresh(); }) {
    span_ = bind_routing_stats(stats_);
  }

  std::string name() const override { return "link-state"; }
  void set_message_sink(MessageSink sink) override { sink_ = std::move(sink); }
  void set_table_callback(TableCallback cb) override {
    on_table_ = std::move(cb);
  }

  void start() override { refresh(); }

  void on_message(int interface, ByteView message) override {
    ++stats_.messages_received;
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                               message.size());
    const auto lsp = Lsp::decode(message);
    if (!lsp) return;
    if (lsp->origin == self_) {
      // Our own LSP echoed back.  If its sequence number is at or beyond
      // ours, this instance restarted with state loss and the network
      // still circulates LSPs from the previous incarnation: jump past
      // them and re-originate, or every fresh LSP would be discarded as
      // stale until own_seq_ catches up one refresh at a time (the IS-IS
      // sequence-number recovery rule, ISO 10589 §7.3.16.1).  Never store
      // or re-flood a networked copy of our own LSP — we are the
      // authority on it.
      if (lsp->seq >= own_seq_) {
        own_seq_ = lsp->seq;
        originate();
      }
      return;
    }
    auto it = lsdb_.find(lsp->origin);
    if (it != lsdb_.end() && lsp->seq <= it->second.seq) {
      // Stale or duplicate.  A *strictly* older LSP means the sender's
      // database is behind ours — typically a restarted router flooding
      // from sequence 1 — so send our newer copy back on that interface
      // and let flooding repair the gap.  Equal sequence numbers are the
      // normal flooding echo and must stay silent, or two routers would
      // ping-pong the same LSP forever.
      if (lsp->seq < it->second.seq) send_to(interface, it->second);
      return;
    }
    lsdb_[lsp->origin] = *lsp;
    flood(*lsp, interface);
    recompute();
  }

  void on_neighbors_changed() override { originate(); }

  const RouteTable& table() const override { return table_; }
  const RoutingStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    w.u64(stats_.messages_sent.value());
    w.u64(stats_.messages_received.value());
    w.u64(stats_.bytes_sent.value());
    w.u64(stats_.recomputations.value());
    w.u32(own_seq_);
    w.u64(lsdb_.size());
    for (const auto& [origin, lsp] : lsdb_) {
      w.u32(origin);
      w.u32(lsp.seq);
      w.u64(lsp.links.size());
      for (const auto& [peer, cost] : lsp.links) {
        w.u32(peer);
        w.f64(cost);
      }
    }
    save_route_table(w, table_);
    refresh_timer_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    stats_.messages_sent.restore_local(r.u64());
    stats_.messages_received.restore_local(r.u64());
    stats_.bytes_sent.restore_local(r.u64());
    stats_.recomputations.restore_local(r.u64());
    own_seq_ = r.u32();
    lsdb_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Lsp lsp;
      lsp.origin = r.u32();
      lsp.seq = r.u32();
      const std::uint64_t nlinks = r.u64();
      for (std::uint64_t j = 0; j < nlinks; ++j) {
        const RouterId peer = r.u32();
        const double cost = r.f64();
        lsp.links.emplace_back(peer, cost);
      }
      lsdb_[lsp.origin] = std::move(lsp);
    }
    // Straight into table_, NOT through recompute(): the table callback
    // must stay quiet (the Router restores its FIB itself).
    table_ = restore_route_table(r);
    refresh_timer_.restore(r);
  }

 private:
  void refresh() {
    originate();
    refresh_timer_.restart(config_.lsp_refresh);
  }

  void originate() {
    Lsp lsp;
    lsp.origin = self_;
    lsp.seq = ++own_seq_;
    for (const auto& n : neighbors_.neighbors()) {
      lsp.links.emplace_back(n.id, n.cost);
    }
    lsdb_[self_] = lsp;
    flood(lsp, /*except_interface=*/-1);
    recompute();
  }

  /// Unicasts one stored LSP to a single interface (stale-LSP repair).
  void send_to(int interface, const Lsp& lsp) {
    if (!sink_) return;
    Bytes encoded = lsp.encode();
    ++stats_.messages_sent;
    stats_.bytes_sent += encoded.size();
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                               encoded.size());
    sink_(interface, std::move(encoded));
  }

  void flood(const Lsp& lsp, int except_interface) {
    if (!sink_) return;
    const Bytes encoded = lsp.encode();
    for (const auto& n : neighbors_.neighbors()) {
      if (n.interface == except_interface) continue;
      ++stats_.messages_sent;
      stats_.bytes_sent += encoded.size();
      telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                                 encoded.size());
      sink_(n.interface, encoded);
    }
  }

  /// Dijkstra over the LSDB.  An edge u->v is usable only if v's LSP also
  /// reports u (two-way connectivity check), which keeps half-dead links
  /// out of the shortest-path tree.
  void recompute() {
    ++stats_.recomputations;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::map<RouterId, double> dist;
    std::map<RouterId, RouterId> first_hop;  // dest -> neighbor of self
    dist[self_] = 0;

    using Item = std::pair<double, RouterId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, self_);
    std::set<RouterId> done;

    const auto edge_ok = [&](RouterId u, RouterId v) {
      const auto it = lsdb_.find(v);
      if (it == lsdb_.end()) return false;
      for (const auto& [peer, cost] : it->second.links) {
        if (peer == u) return true;
      }
      return false;
    };

    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (done.contains(u)) continue;
      done.insert(u);
      const auto it = lsdb_.find(u);
      if (it == lsdb_.end()) continue;
      for (const auto& [v, cost] : it->second.links) {
        if (!edge_ok(u, v)) continue;
        const double nd = d + cost;
        const auto existing = dist.find(v);
        if (existing == dist.end() || nd < existing->second) {
          dist[v] = nd;
          first_hop[v] = (u == self_) ? v : first_hop[u];
          heap.emplace(nd, v);
        }
      }
    }

    RouteTable fresh;
    for (const auto& [dest, d] : dist) {
      if (dest == self_ || d == kInf) continue;
      const RouterId hop = first_hop[dest];
      // Map the first-hop router to its interface.
      for (const auto& n : neighbors_.neighbors()) {
        if (n.id == hop) {
          fresh[dest] = Route{n.interface, hop, d};
          break;
        }
      }
    }
    if (fresh != table_) {
      table_ = std::move(fresh);
      if (on_table_) on_table_(table_);
    }
  }

  RouterId self_;
  const NeighborTable& neighbors_;
  RoutingConfig config_;
  MessageSink sink_;
  TableCallback on_table_;
  RoutingStats stats_;
  std::uint32_t span_ = 0;
  sim::Timer refresh_timer_;

  std::map<RouterId, Lsp> lsdb_;
  std::uint32_t own_seq_ = 0;
  RouteTable table_;
};

}  // namespace

std::unique_ptr<RouteComputation> make_link_state(
    sim::Simulator& sim, RouterId self, const NeighborTable& neighbors,
    RoutingConfig config) {
  return std::make_unique<LinkState>(sim, self, neighbors, config);
}

std::unique_ptr<RouteComputation> make_routing(RoutingKind kind,
                                               sim::Simulator& sim,
                                               RouterId self,
                                               const NeighborTable& neighbors,
                                               RoutingConfig config) {
  switch (kind) {
    case RoutingKind::kDistanceVector:
      return make_distance_vector(sim, self, neighbors, config);
    case RoutingKind::kLinkState:
      return make_link_state(sim, self, neighbors, config);
  }
  throw std::invalid_argument("unknown routing kind");
}

}  // namespace sublayer::netlayer
