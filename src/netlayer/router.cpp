#include "netlayer/router.hpp"

#include <optional>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/siphash.hpp"
#include "sim/link.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::netlayer {
namespace {
const Logger kLog("netlayer");
}

Router::Router(sim::Simulator& sim, RouterId id, const RouterConfig& config)
    : sim_(sim), id_(id), config_(config) {
  build_control_plane();
  stats_.datagrams_forwarded.bind("netlayer.fwd.datagrams_forwarded");
  stats_.delivered_local.bind("netlayer.fwd.delivered_local");
  stats_.ttl_expired.bind("netlayer.fwd.ttl_expired");
  stats_.no_route.bind("netlayer.fwd.no_route");
  stats_.malformed.bind("netlayer.fwd.malformed");
  stats_.ecn_marked.bind("netlayer.fwd.ecn_marked");
  stats_.dropped_while_down.bind("netlayer.fwd.dropped_while_down");
  stats_.routes_flushed.bind("netlayer.fwd.routes_flushed");
  span_ = telemetry::SpanTracer::instance().intern("netlayer.fwd");
}

void Router::build_control_plane() {
  // The routing engine holds a reference to the neighbor table, so the old
  // engine must go before the old table does.
  routing_.reset();
  neighbors_ =
      std::make_unique<NeighborTable>(sim_, id_, config_.neighbor);
  routing_ = make_routing(config_.routing, sim_, id_, *neighbors_,
                          config_.routing_config);
  neighbors_->set_hello_sink([this](int iface, Bytes hello) {
    emit(iface, FrameType::kHello, hello);
  });
  neighbors_->set_change_callback([this] {
    // Withdraw routes through the dead interface *before* asking the
    // routing engine to recompute: forwarding must not keep using a next
    // hop that neighbor determination has already declared unreachable.
    flush_routes_via_dead_interfaces();
    routing_->on_neighbors_changed();
  });
  routing_->set_message_sink([this](int iface, Bytes msg) {
    emit(iface, FrameType::kRouting, msg);
  });
  routing_->set_table_callback(
      [this](const RouteTable& table) { install_table(table); });
  // Interfaces are cabling, not protocol state: a rebuilt control plane
  // sees the same ports a rebooted router's line cards would present.
  for (std::size_t i = 0; i < iface_costs_.size(); ++i) {
    neighbors_->add_interface(static_cast<int>(i), iface_costs_[i]);
  }
}

void Router::crash() {
  if (!up_) return;
  up_ = false;
  kLog.info("r%u crashed (control-plane state lost)", id_);
  // Full state loss: a fresh, unstarted control plane replaces the old one
  // (neighbor table, LSDB / learned routes, sequence numbers all gone),
  // and the FIB empties.  Accessors stay valid while down; timers stay
  // quiet until restart().
  build_control_plane();
  fib_.clear();
}

void Router::restart() {
  if (up_) return;
  up_ = true;
  kLog.info("r%u restarting", id_);
  if (started_) start();
}

int Router::add_interface(LinkSink sink, double cost) {
  const int index = static_cast<int>(interfaces_.size());
  interfaces_.push_back(std::move(sink));
  probes_.emplace_back();
  iface_costs_.push_back(cost);
  neighbors_->add_interface(index, cost);
  return index;
}

void Router::set_congestion_probe(int interface, CongestionProbe probe) {
  probes_.at(static_cast<std::size_t>(interface)) = std::move(probe);
}

void Router::start() {
  started_ = true;
  neighbors_->start();
  routing_->start();
}

void Router::emit(int interface, FrameType type, ByteView payload) {
  Bytes frame;
  frame.reserve(payload.size() + 1);
  ByteWriter w(frame);
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload);
  // The netlayer/datalink seam: the typed router frame, both directions
  // (the matching up-tap is in on_link_frame).
  SUBLAYER_TAP(telemetry::TapPoint::kDatalinkNet, telemetry::Dir::kDown,
               ByteView(frame));
  interfaces_.at(static_cast<std::size_t>(interface))(std::move(frame));
}

void Router::on_link_frame(int index, Bytes frame) {
  if (!up_) {
    ++stats_.dropped_while_down;
    return;
  }
  if (frame.empty()) {
    ++stats_.malformed;
    return;
  }
  SUBLAYER_TAP(telemetry::TapPoint::kDatalinkNet, telemetry::Dir::kUp,
               ByteView(frame));
  const auto type = static_cast<FrameType>(frame[0]);
  const ByteView payload = ByteView(frame).subspan(1);
  switch (type) {
    case FrameType::kHello:
      neighbors_->on_hello(index, payload);
      break;
    case FrameType::kRouting:
      routing_->on_message(index, payload);
      break;
    case FrameType::kData:
      frame.erase(frame.begin());  // drop the type byte, keep the buffer
      forward(std::move(frame));
      break;
    default:
      ++stats_.malformed;
  }
}

void Router::install_table(const RouteTable& table) {
  // The forwarding sublayer's view: one LAN prefix per reachable router.
  fib_.clear();
  for (const auto& [dest, route] : table) {
    // Cross-sublayer sanity: never install a route through an interface
    // whose neighbor is gone, even if the routing engine's view lags the
    // neighbor table's (e.g. a route-timeout scan not yet due).
    if (!iface_has_live_neighbor(route.interface)) continue;
    fib_.insert(Prefix::router_lan(dest),
                RouteEntry{route.interface, route.next_hop, route.metric});
  }
}

bool Router::iface_has_live_neighbor(int interface) const {
  return neighbors_->neighbor_on(interface).has_value();
}

void Router::flush_routes_via_dead_interfaces() {
  std::vector<Prefix> dead;
  for (const auto& [prefix, route] : fib_.entries()) {
    if (!iface_has_live_neighbor(route.interface)) dead.push_back(prefix);
  }
  for (const auto& prefix : dead) {
    fib_.remove(prefix);
    ++stats_.routes_flushed;
  }
}

void Router::send_datagram(IpHeader header, ByteView payload) {
  if (!up_) {
    ++stats_.dropped_while_down;
    return;
  }
  // The transport pushes a datagram into the network layer here; the
  // matching up-crossing is local delivery at the destination router.
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                             payload.size());
  forward(header.encode(payload));
}

void Router::set_protocol_handler(IpProto proto, ProtocolHandler handler) {
  handlers_[proto] = std::move(handler);
}

void Router::forward(Bytes datagram) {
  const auto parsed = decode_datagram_view(datagram);
  if (!parsed) {
    ++stats_.malformed;
    return;
  }
  const IpHeader& header = parsed->header;

  if (router_of(header.dst) == id_) {
    ++stats_.delivered_local;
    telemetry::SpanTracer::instance().crossing(
        span_, telemetry::Dir::kUp, parsed->payload.size());
    const auto it = handlers_.find(header.protocol);
    if (it != handlers_.end()) {
      // Hand the datagram's own buffer up, minus the header prefix.
      datagram.erase(datagram.begin(), datagram.begin() + IpHeader::kSize);
      it->second(header, std::move(datagram));
    }
    return;
  }

  const auto route = fib_.lookup(header.dst);
  if (!route) {
    ++stats_.no_route;
    return;
  }
  if (header.ttl <= 1) {
    ++stats_.ttl_expired;
    return;
  }
  // Transit: only TTL and the ECN flag change, so patch them in the
  // encoded header rather than re-encoding the whole datagram.
  --datagram[IpHeader::kTtlOffset];

  // AQM: mark congestion-experienced if the outgoing link's queue is deep.
  if (!config_.ecn_backlog_threshold.is_zero()) {
    const auto& probe = probes_.at(static_cast<std::size_t>(route->interface));
    if (probe && probe() > config_.ecn_backlog_threshold) {
      datagram[IpHeader::kFlagsOffset] |= 1;
      ++stats_.ecn_marked;
    }
  }

  ++stats_.datagrams_forwarded;
  emit(route->interface, FrameType::kData, datagram);
}

void Router::save(sim::SnapshotWriter& w) const {
  w.b(up_);
  w.b(started_);
  w.u64(stats_.datagrams_forwarded.value());
  w.u64(stats_.delivered_local.value());
  w.u64(stats_.ttl_expired.value());
  w.u64(stats_.no_route.value());
  w.u64(stats_.malformed.value());
  w.u64(stats_.ecn_marked.value());
  w.u64(stats_.dropped_while_down.value());
  w.u64(stats_.routes_flushed.value());
  fib_.save(w);
  neighbors_->save(w);
  routing_->save(w);
}

void Router::restore(sim::SnapshotReader& r) {
  up_ = r.b();
  started_ = r.b();
  stats_.datagrams_forwarded.restore_local(r.u64());
  stats_.delivered_local.restore_local(r.u64());
  stats_.ttl_expired.restore_local(r.u64());
  stats_.no_route.restore_local(r.u64());
  stats_.malformed.restore_local(r.u64());
  stats_.ecn_marked.restore_local(r.u64());
  stats_.dropped_while_down.restore_local(r.u64());
  stats_.routes_flushed.restore_local(r.u64());
  fib_.restore(r);
  neighbors_->restore(r);
  routing_->restore(r);
}

Network::Network(sim::Simulator& sim, RouterConfig config, std::uint64_t seed)
    : sim_(&sim), config_(config), rng_(seed) {}

Network::Network(sim::ParallelSimulator& psim, RouterConfig config,
                 std::uint64_t seed, sim::ShardMap shard_map)
    : psim_(&psim),
      shard_map_(std::move(shard_map)),
      config_(config),
      rng_(seed) {
  if (shard_map_->shards() != psim.shard_count()) {
    throw std::invalid_argument("Network: shard map / shard count mismatch");
  }
  // Stamp the placement decision into the engine so every run's artifacts
  // (Chrome-trace metadata) say how the topology was split.
  psim.set_partition_info(shard_map_->describe());
}

Network::Network(sim::ParallelSimulator& psim, RouterConfig config,
                 std::uint64_t seed)
    : Network(psim, config, seed, sim::ShardMap(psim.shard_count())) {}

std::size_t Network::shard_of(RouterId id) const {
  return psim_ != nullptr ? shard_map_->of(id) : 0;
}

sim::Simulator& Network::sim_of(RouterId id) {
  return psim_ != nullptr ? psim_->shard(shard_map_->of(id)) : *sim_;
}

RouterId Network::add_router() {
  const auto id = static_cast<RouterId>(routers_.size());
  // Under the parallel engine, construct inside the owning shard's scope so
  // the router's counters and spans bind into that shard's registries.
  std::optional<sim::ParallelSimulator::ShardScope> scope;
  if (psim_ != nullptr) scope.emplace(*psim_, shard_of(id));
  routers_.push_back(std::make_unique<Router>(sim_of(id), id, config_));
  return id;
}

namespace {
// Harness FCS (RouterConfig::link_fcs): a fixed-key 32-bit SipHash tag.
// The key is arbitrary but shared by both ends of every harness link —
// this is an error-detecting code standing in for a real L2 CRC, not an
// authenticator.
constexpr SipHashKey kFcsKey = {0x736c6179722d4c32ull, 0x4643532d68617368ull};

void append_fcs(Bytes& frame) {
  const auto tag =
      static_cast<std::uint32_t>(siphash24(kFcsKey, ByteView(frame)));
  ByteWriter w(frame);
  w.u32(tag);
}

bool strip_fcs(Bytes& frame) {
  if (frame.size() < 4) return false;
  const ByteView body = ByteView(frame).subspan(0, frame.size() - 4);
  ByteReader r(ByteView(frame).subspan(frame.size() - 4));
  const std::uint32_t want = r.u32();
  const auto got = static_cast<std::uint32_t>(siphash24(kFcsKey, body));
  if (got != want) return false;
  frame.resize(frame.size() - 4);
  return true;
}
}  // namespace

std::size_t Network::connect(RouterId a, RouterId b,
                             const sim::LinkConfig& link_config, double cost) {
  // Built with += (not operator+ on a literal): GCC 12's -Wrestrict
  // false-positives on `const char* + std::string&&` (PR 105329).
  std::string label = "r";
  label += std::to_string(a);
  label += "-r";
  label += std::to_string(b);
  const std::size_t sa = shard_of(a);
  const std::size_t sb = shard_of(b);
  const bool remote = psim_ != nullptr && sa != sb;
  if (remote) {
    // Split form: each direction's sender-side link state lives on the
    // shard that transmits on it.
    links_.push_back(std::make_unique<sim::DuplexLink>(
        psim_->shard(sa), psim_->shard(sb), link_config, rng_, label));
  } else {
    links_.push_back(
        std::make_unique<sim::DuplexLink>(sim_of(a), link_config, rng_, label));
  }
  sim::DuplexLink& link = *links_.back();
  Router& ra = *routers_.at(a);
  Router& rb = *routers_.at(b);
  const bool fcs = config_.link_fcs;
  int ia = -1;
  int ib = -1;
  {
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (psim_ != nullptr) scope.emplace(*psim_, sa);
    ia = ra.add_interface(
        [&link, fcs](Bytes f) {
          if (fcs) append_fcs(f);
          link.a_to_b().send(std::move(f));
        },
        cost);
    ra.set_congestion_probe(ia, [&link] { return link.a_to_b().backlog(); });
  }
  {
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (psim_ != nullptr) scope.emplace(*psim_, sb);
    ib = rb.add_interface(
        [&link, fcs](Bytes f) {
          if (fcs) append_fcs(f);
          link.b_to_a().send(std::move(f));
        },
        cost);
    rb.set_congestion_probe(ib, [&link] { return link.b_to_a().backlog(); });
  }
  if (remote) {
    // Cross-shard: the sender-side Link hands (delivery time, frame) to a
    // channel; the channel's deliver callback runs on the receiving shard
    // and feeds the router exactly as a local receiver would.  The link's
    // propagation delay is the channel's guaranteed minimum latency (every
    // delivery adds serialization and jitter on top).
    const std::uint32_t ch_ab = psim_->add_channel(
        sa, sb, link_config.propagation_delay, label + ".a2b",
        [this, &rb, ib, fcs](Bytes f) {
          if (fcs && !strip_fcs(f)) {
            fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          rb.on_link_frame(ib, std::move(f));
        });
    link.a_to_b().set_remote_sink([this, ch_ab](TimePoint at, Bytes f) {
      psim_->post(ch_ab, at, std::move(f));
    });
    const std::uint32_t ch_ba = psim_->add_channel(
        sb, sa, link_config.propagation_delay, label + ".b2a",
        [this, &ra, ia, fcs](Bytes f) {
          if (fcs && !strip_fcs(f)) {
            fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          ra.on_link_frame(ia, std::move(f));
        });
    link.b_to_a().set_remote_sink([this, ch_ba](TimePoint at, Bytes f) {
      psim_->post(ch_ba, at, std::move(f));
    });
  } else if (config_.batched_links) {
    // Burst receive: deliveries are batchable events and the router takes
    // the burst frame by frame (forwarding stays per-frame; only the
    // scheduler visits amortize).  Remote links keep per-frame channel
    // posts — cross-shard ordering is the channel's contract, not ours.
    link.a_to_b().set_batch_receiver([this, &rb, ib,
                                      fcs](sim::FrameBatch& batch) {
      for (Bytes& f : batch) {
        if (fcs && !strip_fcs(f)) {
          fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        rb.on_link_frame(ib, std::move(f));
      }
    });
    link.b_to_a().set_batch_receiver([this, &ra, ia,
                                      fcs](sim::FrameBatch& batch) {
      for (Bytes& f : batch) {
        if (fcs && !strip_fcs(f)) {
          fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ra.on_link_frame(ia, std::move(f));
      }
    });
  } else {
    link.a_to_b().set_receiver([this, &rb, ib, fcs](Bytes f) {
      if (fcs && !strip_fcs(f)) {
        fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      rb.on_link_frame(ib, std::move(f));
    });
    link.b_to_a().set_receiver([this, &ra, ia, fcs](Bytes f) {
      if (fcs && !strip_fcs(f)) {
        fcs_dropped_frames_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ra.on_link_frame(ia, std::move(f));
    });
  }
  ends_.push_back(LinkEnds{a, ia, b, ib});
  return links_.size() - 1;
}

void Network::start() {
  for (auto& r : routers_) {
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (psim_ != nullptr) scope.emplace(*psim_, shard_of(r->id()));
    r->start();
  }
}

void Network::fail_link(std::size_t link_index) {
  links_.at(link_index)->set_down(true);
}

void Network::restore_link(std::size_t link_index) {
  links_.at(link_index)->set_down(false);
}

std::uint64_t Network::total_routing_messages() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) n += r->routing_stats().messages_sent;
  return n;
}

std::uint64_t Network::total_routing_bytes() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) n += r->routing_stats().bytes_sent;
  return n;
}

bool Network::fully_converged() const {
  for (const auto& r : routers_) {
    for (const auto& other : routers_) {
      if (r->id() == other->id()) continue;
      if (!r->routes().contains(other->id())) return false;
    }
  }
  return true;
}

void Network::save(sim::SnapshotWriter& w) const {
  w.begin_section("netlayer.network");
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(routers_.size());
  for (const auto& router : routers_) router->save(w);
  w.u64(links_.size());
  for (const auto& link : links_) link->save(w);
  w.u64(fcs_dropped_frames_.load(std::memory_order_relaxed));
  w.end_section();
}

void Network::restore(sim::SnapshotReader& r) {
  r.begin_section("netlayer.network");
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.set_state(rng_state);
  const std::uint64_t nrouters = r.u64();
  if (nrouters != routers_.size()) {
    throw sim::SnapshotError(
        "network restore: router count mismatch (restore graph differs)");
  }
  for (auto& router : routers_) {
    // Restore inside the owning shard's scope so any telemetry the
    // restore path touches lands in that shard's registries.
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (psim_ != nullptr) scope.emplace(*psim_, shard_of(router->id()));
    router->restore(r);
  }
  const std::uint64_t nlinks = r.u64();
  if (nlinks != links_.size()) {
    throw sim::SnapshotError(
        "network restore: link count mismatch (restore graph differs)");
  }
  for (auto& link : links_) link->restore(r);
  fcs_dropped_frames_.store(r.u64(), std::memory_order_relaxed);
  r.end_section();
}

bool Network::converged_excluding(RouterId excluded) const {
  for (const auto& r : routers_) {
    if (r->id() == excluded) continue;
    for (const auto& other : routers_) {
      if (other->id() == excluded || r->id() == other->id()) continue;
      if (!r->routes().contains(other->id())) return false;
    }
  }
  return true;
}

}  // namespace sublayer::netlayer
