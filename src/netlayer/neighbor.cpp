#include "netlayer/neighbor.hpp"

#include "sim/snapshot.hpp"
#include "telemetry/span.hpp"

namespace sublayer::netlayer {

NeighborTable::NeighborTable(sim::Simulator& sim, RouterId self,
                             NeighborConfig config)
    : sim_(sim),
      self_(self),
      config_(config),
      hello_timer_(sim, [this] { send_hellos(); }),
      liveness_timer_(sim, [this] { check_liveness(); }) {
  stats_.hellos_sent.bind("netlayer.neighbor.hellos_sent");
  stats_.hellos_received.bind("netlayer.neighbor.hellos_received");
  stats_.neighbors_up.bind("netlayer.neighbor.neighbors_up");
  stats_.neighbors_down.bind("netlayer.neighbor.neighbors_down");
  span_ = telemetry::SpanTracer::instance().intern("netlayer.neighbor");
}

void NeighborTable::add_interface(int index, double cost) {
  ifaces_.push_back(Iface{index, cost, std::nullopt, TimePoint{}});
}

void NeighborTable::start() {
  send_hellos();
  check_liveness();
}

void NeighborTable::send_hellos() {
  for (const auto& iface : ifaces_) {
    Bytes hello;
    ByteWriter(hello).u32(self_);
    ++stats_.hellos_sent;
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                               hello.size());
    if (sink_) sink_(iface.index, std::move(hello));
  }
  hello_timer_.restart(config_.hello_interval);
}

void NeighborTable::check_liveness() {
  bool changed = false;
  for (auto& iface : ifaces_) {
    if (iface.peer &&
        sim_.now() - iface.last_hello > config_.dead_interval) {
      iface.peer.reset();
      ++stats_.neighbors_down;
      changed = true;
    }
  }
  liveness_timer_.restart(config_.hello_interval);
  if (changed) notify();
}

void NeighborTable::on_hello(int interface, ByteView payload) {
  telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                             payload.size());
  if (payload.size() != 4) return;  // malformed
  ByteReader r(payload);
  const RouterId peer = r.u32();
  ++stats_.hellos_received;
  for (auto& iface : ifaces_) {
    if (iface.index != interface) continue;
    iface.last_hello = sim_.now();
    if (!iface.peer || *iface.peer != peer) {
      iface.peer = peer;
      ++stats_.neighbors_up;
      notify();
    }
    return;
  }
}

std::vector<Neighbor> NeighborTable::neighbors() const {
  std::vector<Neighbor> out;
  for (const auto& iface : ifaces_) {
    if (iface.peer) out.push_back(Neighbor{*iface.peer, iface.index, iface.cost});
  }
  return out;
}

std::optional<Neighbor> NeighborTable::neighbor_on(int interface) const {
  for (const auto& iface : ifaces_) {
    if (iface.index == interface && iface.peer) {
      return Neighbor{*iface.peer, iface.index, iface.cost};
    }
  }
  return std::nullopt;
}

void NeighborTable::save(sim::SnapshotWriter& w) const {
  w.u64(stats_.hellos_sent.value());
  w.u64(stats_.hellos_received.value());
  w.u64(stats_.neighbors_up.value());
  w.u64(stats_.neighbors_down.value());
  w.u64(ifaces_.size());
  for (const Iface& iface : ifaces_) {
    w.b(iface.peer.has_value());
    w.u32(iface.peer.value_or(0));
    w.time(iface.last_hello);
  }
  hello_timer_.save(w);
  liveness_timer_.save(w);
}

void NeighborTable::restore(sim::SnapshotReader& r) {
  stats_.hellos_sent.restore_local(r.u64());
  stats_.hellos_received.restore_local(r.u64());
  stats_.neighbors_up.restore_local(r.u64());
  stats_.neighbors_down.restore_local(r.u64());
  const std::uint64_t n = r.u64();
  if (n != ifaces_.size()) {
    throw sim::SnapshotError(
        "neighbor restore: interface count mismatch (restore graph differs)");
  }
  for (Iface& iface : ifaces_) {
    const bool has_peer = r.b();
    const RouterId peer = r.u32();
    iface.peer = has_peer ? std::optional<RouterId>(peer) : std::nullopt;
    iface.last_hello = r.time();
  }
  hello_timer_.restore(r);
  liveness_timer_.restore(r);
}

}  // namespace sublayer::netlayer
