// Neighbor-determination sublayer (Fig. 4, the lowest network sublayer):
// discovers which router is at the far end of each interface via HELLO
// handshakes sent directly on the data link, and detects failures by
// hello timeout.
//
// Narrow interface upward (T2): the current neighbor list plus a change
// notification.  Route computation never sees HELLO packets (T3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "netlayer/ip.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::netlayer {

struct Neighbor {
  RouterId id = 0;
  int interface = -1;
  double cost = 1.0;
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

struct NeighborConfig {
  Duration hello_interval = Duration::millis(100);
  /// A neighbor is declared dead after this long without a HELLO.
  Duration dead_interval = Duration::millis(350);
};

/// Registry-backed (`netlayer.neighbor.*`); reads stay per-instance.
struct NeighborStats {
  telemetry::Counter hellos_sent;
  telemetry::Counter hellos_received;
  telemetry::Counter neighbors_up;
  telemetry::Counter neighbors_down;
};

class NeighborTable {
 public:
  /// Sends a HELLO payload on the given interface.
  using HelloSink = std::function<void(int interface, Bytes hello)>;
  using ChangeCallback = std::function<void()>;

  NeighborTable(sim::Simulator& sim, RouterId self, NeighborConfig config);

  /// Registers interface `index` with the given link cost; HELLOs start
  /// flowing once start() is called.
  void add_interface(int index, double cost);
  void set_hello_sink(HelloSink sink) { sink_ = std::move(sink); }
  void set_change_callback(ChangeCallback cb) { on_change_ = std::move(cb); }

  void start();

  /// Feeds a HELLO received on `interface`.
  void on_hello(int interface, ByteView payload);

  /// Live neighbors, one per interface at most.
  std::vector<Neighbor> neighbors() const;
  std::optional<Neighbor> neighbor_on(int interface) const;

  const NeighborStats& stats() const { return stats_; }

  /// Checkpoint/restore (sim/snapshot.hpp): per-interface peer and
  /// last-hello, stats, and both protocol timers.  Inline format; the
  /// owning Router brackets the section.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  struct Iface {
    int index;
    double cost;
    std::optional<RouterId> peer;
    TimePoint last_hello;
  };

  void send_hellos();
  void check_liveness();
  void notify() {
    if (on_change_) on_change_();
  }

  sim::Simulator& sim_;
  RouterId self_;
  NeighborConfig config_;
  HelloSink sink_;
  ChangeCallback on_change_;
  std::vector<Iface> ifaces_;
  NeighborStats stats_;
  std::uint32_t span_ = 0;
  sim::Timer hello_timer_;
  sim::Timer liveness_timer_;
};

}  // namespace sublayer::netlayer
