// Distance-vector route computation (RIP-style): periodic full-table
// advertisements to neighbors, split horizon with poison reverse,
// triggered updates, route hold timeouts, and a finite "infinity".
#include <algorithm>
#include <stdexcept>

#include "netlayer/routing.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::netlayer {
namespace {

void save_route(sim::SnapshotWriter& w, const Route& route) {
  w.i64(route.interface);
  w.u32(route.next_hop);
  w.f64(route.metric);
}

Route restore_route(sim::SnapshotReader& r) {
  Route route;
  route.interface = static_cast<int>(r.i64());
  route.next_hop = r.u32();
  route.metric = r.f64();
  return route;
}

std::uint16_t encode_metric(double m, double infinity) {
  const double clamped = std::min(m, infinity);
  return static_cast<std::uint16_t>(clamped * 100.0 + 0.5);
}
double decode_metric(std::uint16_t m) { return m / 100.0; }

class DistanceVector final : public RouteComputation {
 public:
  DistanceVector(sim::Simulator& sim, RouterId self,
                 const NeighborTable& neighbors, RoutingConfig config)
      : sim_(sim),
        self_(self),
        neighbors_(neighbors),
        config_(config),
        advert_timer_(sim, [this] { periodic(); }) {
    span_ = bind_routing_stats(stats_);
  }

  std::string name() const override { return "distance-vector"; }
  void set_message_sink(MessageSink sink) override { sink_ = std::move(sink); }
  void set_table_callback(TableCallback cb) override {
    on_table_ = std::move(cb);
  }

  void start() override { periodic(); }

  void on_message(int interface, ByteView message) override {
    ++stats_.messages_received;
    telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kUp,
                                               message.size());
    const auto from = neighbors_.neighbor_on(interface);
    if (!from) return;  // advertisement from a not-yet-discovered peer

    ByteReader r(message);
    bool changed = false;
    try {
      const std::uint16_t count = r.u16();
      for (int i = 0; i < count; ++i) {
        const RouterId dest = r.u32();
        const double advertised = decode_metric(r.u16());
        changed |= consider(dest, advertised + from->cost, *from);
      }
    } catch (const std::out_of_range&) {
      return;  // malformed advertisement
    }
    if (changed) publish(/*triggered=*/true);
  }

  void on_neighbors_changed() override {
    if (refresh_direct_routes()) publish(/*triggered=*/true);
  }

  const RouteTable& table() const override { return table_; }
  const RoutingStats& stats() const override { return stats_; }

  void save(sim::SnapshotWriter& w) const override {
    w.u64(stats_.messages_sent.value());
    w.u64(stats_.messages_received.value());
    w.u64(stats_.bytes_sent.value());
    w.u64(stats_.recomputations.value());
    w.u64(held_.size());
    for (const auto& [dest, held] : held_) {
      w.u32(dest);
      save_route(w, held.route);
      w.time(held.refreshed);
    }
    w.u64(table_.size());
    for (const auto& [dest, route] : table_) {
      w.u32(dest);
      save_route(w, route);
    }
    advert_timer_.save(w);
  }

  void restore(sim::SnapshotReader& r) override {
    stats_.messages_sent.restore_local(r.u64());
    stats_.messages_received.restore_local(r.u64());
    stats_.bytes_sent.restore_local(r.u64());
    stats_.recomputations.restore_local(r.u64());
    held_.clear();
    const std::uint64_t nheld = r.u64();
    for (std::uint64_t i = 0; i < nheld; ++i) {
      const RouterId dest = r.u32();
      Held held;
      held.route = restore_route(r);
      held.refreshed = r.time();
      held_[dest] = held;
    }
    // Straight into table_, NOT through publish(): callbacks stay quiet
    // (the Router restores its FIB itself).
    table_.clear();
    const std::uint64_t ntable = r.u64();
    for (std::uint64_t i = 0; i < ntable; ++i) {
      const RouterId dest = r.u32();
      table_[dest] = restore_route(r);
    }
    advert_timer_.restore(r);
  }

 private:
  struct Held {
    Route route;
    TimePoint refreshed;
  };

  /// Bellman-Ford relaxation for one advertised destination.
  bool consider(RouterId dest, double metric, const Neighbor& via) {
    if (dest == self_) return false;
    metric = std::min(metric, config_.infinity);
    auto it = held_.find(dest);
    const bool have = it != held_.end();
    const bool via_same_hop =
        have && it->second.route.next_hop == via.id &&
        it->second.route.interface == via.interface;

    if (metric >= config_.infinity) {
      // Poisoned/unreachable: only meaningful if our route used this hop.
      if (via_same_hop) {
        held_.erase(it);
        return true;
      }
      return false;
    }

    if (via_same_hop) {
      it->second.refreshed = sim_.now();
      if (it->second.route.metric != metric) {
        it->second.route.metric = metric;  // follow our next hop, even if worse
        return true;
      }
      return false;
    }
    if (!have || metric < it->second.route.metric) {
      held_[dest] = Held{Route{via.interface, via.id, metric}, sim_.now()};
      return true;
    }
    return false;
  }

  /// Keeps one-hop routes consistent with the live neighbor list.
  bool refresh_direct_routes() {
    bool changed = false;
    const auto live = neighbors_.neighbors();
    // Drop routes that leave via an interface with no live neighbor.
    for (auto it = held_.begin(); it != held_.end();) {
      const bool alive = std::any_of(
          live.begin(), live.end(), [&](const Neighbor& n) {
            return n.interface == it->second.route.interface &&
                   n.id == it->second.route.next_hop;
          });
      if (!alive) {
        it = held_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (const auto& n : live) {
      auto it = held_.find(n.id);
      if (it == held_.end() || n.cost < it->second.route.metric) {
        held_[n.id] = Held{Route{n.interface, n.id, n.cost}, sim_.now()};
        changed = true;
      }
    }
    return changed;
  }

  void expire_stale_routes() {
    bool changed = false;
    for (auto it = held_.begin(); it != held_.end();) {
      if (sim_.now() - it->second.refreshed > config_.route_timeout) {
        it = held_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    if (changed) publish(/*triggered=*/true);
  }

  void periodic() {
    refresh_direct_routes();
    expire_stale_routes();
    publish(/*triggered=*/false);
    advert_timer_.restart(config_.advert_interval);
  }

  /// Rebuilds the public table, notifies forwarding, and advertises.
  void publish(bool triggered) {
    RouteTable fresh;
    for (const auto& [dest, held] : held_) fresh[dest] = held.route;
    const bool table_changed = fresh != table_;
    if (table_changed) {
      table_ = std::move(fresh);
      ++stats_.recomputations;
      if (on_table_) on_table_(table_);
    }
    // Periodic adverts always go out; triggered adverts only on change.
    if (!triggered || table_changed) advertise();
  }

  void advertise() {
    if (!sink_) return;
    for (const auto& n : neighbors_.neighbors()) {
      Bytes msg;
      ByteWriter w(msg);
      w.u16(static_cast<std::uint16_t>(table_.size() + 1));
      w.u32(self_);
      w.u16(encode_metric(0, config_.infinity));
      for (const auto& [dest, route] : table_) {
        w.u32(dest);
        // Split horizon with poison reverse: routes learned via this
        // neighbor are advertised back as unreachable.
        const double metric = (route.next_hop == n.id &&
                               route.interface == n.interface)
                                  ? config_.infinity
                                  : route.metric;
        w.u16(encode_metric(metric, config_.infinity));
      }
      ++stats_.messages_sent;
      stats_.bytes_sent += msg.size();
      telemetry::SpanTracer::instance().crossing(span_, telemetry::Dir::kDown,
                                                 msg.size());
      sink_(n.interface, std::move(msg));
    }
  }

  sim::Simulator& sim_;
  RouterId self_;
  const NeighborTable& neighbors_;
  RoutingConfig config_;
  MessageSink sink_;
  TableCallback on_table_;
  RoutingStats stats_;
  std::uint32_t span_ = 0;
  sim::Timer advert_timer_;

  std::map<RouterId, Held> held_;
  RouteTable table_;
};

}  // namespace

std::unique_ptr<RouteComputation> make_distance_vector(
    sim::Simulator& sim, RouterId self, const NeighborTable& neighbors,
    RoutingConfig config) {
  return std::make_unique<DistanceVector>(sim, self, neighbors, config);
}

}  // namespace sublayer::netlayer
