#include "netlayer/fib.hpp"

#include "sim/snapshot.hpp"

namespace sublayer::netlayer {

struct Fib::Node {
  std::unique_ptr<Node> child[2];
  std::optional<RouteEntry> entry;
  std::optional<Prefix> prefix;  // set iff entry is set
};

Fib::Fib() : root_(std::make_unique<Node>()) {
  stats_.lookups.bind("netlayer.fib.lookups");
  stats_.hits.bind("netlayer.fib.hits");
  stats_.misses.bind("netlayer.fib.misses");
}
Fib::~Fib() = default;

namespace {
int bit_at(IpAddr addr, int depth) { return addr >> (31 - depth) & 1; }
}  // namespace

void Fib::insert(const Prefix& prefix, const RouteEntry& entry) {
  Node* n = root_.get();
  for (int depth = 0; depth < prefix.len; ++depth) {
    const int b = bit_at(prefix.addr, depth);
    if (!n->child[b]) n->child[b] = std::make_unique<Node>();
    n = n->child[b].get();
  }
  if (!n->entry) ++size_;
  n->entry = entry;
  n->prefix = prefix;
}

bool Fib::remove(const Prefix& prefix) {
  Node* n = root_.get();
  for (int depth = 0; depth < prefix.len; ++depth) {
    const int b = bit_at(prefix.addr, depth);
    if (!n->child[b]) return false;
    n = n->child[b].get();
  }
  if (!n->entry) return false;
  n->entry.reset();
  n->prefix.reset();
  --size_;
  return true;
}

void Fib::clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

std::optional<RouteEntry> Fib::lookup(IpAddr addr) const {
  ++stats_.lookups;
  const Node* n = root_.get();
  std::optional<RouteEntry> best = n->entry;
  for (int depth = 0; depth < 32; ++depth) {
    const int b = bit_at(addr, depth);
    if (!n->child[b]) break;
    n = n->child[b].get();
    if (n->entry) best = n->entry;
  }
  if (best) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return best;
}

std::optional<RouteEntry> Fib::exact(const Prefix& prefix) const {
  const Node* n = root_.get();
  for (int depth = 0; depth < prefix.len; ++depth) {
    const int b = bit_at(prefix.addr, depth);
    if (!n->child[b]) return std::nullopt;
    n = n->child[b].get();
  }
  return n->entry;
}

std::vector<std::pair<Prefix, RouteEntry>> Fib::entries() const {
  std::vector<std::pair<Prefix, RouteEntry>> out;
  // Iterative DFS.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->entry) out.emplace_back(*n->prefix, *n->entry);
    for (int b = 1; b >= 0; --b) {
      if (n->child[b]) stack.push_back(n->child[b].get());
    }
  }
  return out;
}

void Fib::save(sim::SnapshotWriter& w) const {
  w.u64(stats_.lookups.value());
  w.u64(stats_.hits.value());
  w.u64(stats_.misses.value());
  const auto all = entries();
  w.u64(all.size());
  for (const auto& [prefix, entry] : all) {
    w.u32(prefix.addr);
    w.u8(static_cast<std::uint8_t>(prefix.len));
    w.i64(entry.interface);
    w.u32(entry.next_hop);
    w.f64(entry.metric);
  }
}

void Fib::restore(sim::SnapshotReader& r) {
  stats_.lookups.restore_local(r.u64());
  stats_.hits.restore_local(r.u64());
  stats_.misses.restore_local(r.u64());
  clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Prefix prefix;
    prefix.addr = r.u32();
    prefix.len = static_cast<int>(r.u8());
    RouteEntry entry;
    entry.interface = static_cast<int>(r.i64());
    entry.next_hop = r.u32();
    entry.metric = r.f64();
    insert(prefix, entry);
  }
}

std::string Fib::to_string() const {
  std::string s;
  for (const auto& [prefix, entry] : entries()) {
    s += prefix.to_string() + " -> if" + std::to_string(entry.interface) +
         " via r" + std::to_string(entry.next_hop) + " metric " +
         std::to_string(entry.metric) + "\n";
  }
  return s;
}

}  // namespace sublayer::netlayer
