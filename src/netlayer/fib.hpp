// Forwarding Information Base: the data-plane table owned by the
// forwarding sublayer (Fig. 3).  Longest-prefix-match over a binary trie.
//
// Forwarding depends only on this table's interface; *how* the table is
// filled (distance vector, link state, static) is invisible to it — that
// is precisely the route-computation/forwarding sublayer boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netlayer/ip.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::sim {
class SnapshotWriter;
class SnapshotReader;
}  // namespace sublayer::sim

namespace sublayer::netlayer {

struct RouteEntry {
  int interface = -1;       // outgoing interface index
  RouterId next_hop = 0;    // neighbour router (diagnostic)
  double metric = 0;        // path cost (diagnostic)
  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Registry-backed (`netlayer.fib.*`); reads stay per-instance.
struct FibStats {
  telemetry::Counter lookups;
  telemetry::Counter hits;
  telemetry::Counter misses;
};

class Fib {
 public:
  Fib();
  ~Fib();
  Fib(const Fib&) = delete;
  Fib& operator=(const Fib&) = delete;

  void insert(const Prefix& prefix, const RouteEntry& entry);
  /// Returns true if the prefix was present.
  bool remove(const Prefix& prefix);
  void clear();

  /// Longest-prefix-match lookup.
  std::optional<RouteEntry> lookup(IpAddr addr) const;
  /// Exact-prefix fetch (management plane).
  std::optional<RouteEntry> exact(const Prefix& prefix) const;

  std::size_t size() const { return size_; }
  std::vector<std::pair<Prefix, RouteEntry>> entries() const;
  std::string to_string() const;

  const FibStats& stats() const { return stats_; }

  /// Checkpoint/restore (sim/snapshot.hpp): all entries plus lookup stats.
  /// Inline format; the owning Router brackets the section.
  void save(sim::SnapshotWriter& w) const;
  void restore(sim::SnapshotReader& r);

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  // Mutable: lookup() is logically const but observably counted.
  mutable FibStats stats_;
};

}  // namespace sublayer::netlayer
