// Minimal IP: addressing, prefixes, and the datagram header.
//
// This is the "layer" the network-layer sublayers (neighbor determination,
// route computation, forwarding) jointly implement, and the substrate the
// transport layer runs over.  Addresses are 32-bit; each router owns the
// /24 prefix (router_id << 8) for its attached hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sublayer::netlayer {

using IpAddr = std::uint32_t;
using RouterId = std::uint32_t;

std::string addr_to_string(IpAddr a);

/// The router that owns an address, under the id<<8 /24 convention.
constexpr RouterId router_of(IpAddr a) { return a >> 8; }
/// Host `h` attached to router `r`.
constexpr IpAddr host_addr(RouterId r, std::uint8_t h) {
  return r << 8 | h;
}

struct Prefix {
  IpAddr addr = 0;
  int len = 32;  // prefix length in bits, 0..32

  bool contains(IpAddr a) const {
    if (len == 0) return true;
    const IpAddr mask = len == 32 ? ~0u : ~((1u << (32 - len)) - 1);
    return (a & mask) == (addr & mask);
  }
  static Prefix router_lan(RouterId r) { return Prefix{r << 8, 24}; }
  std::string to_string() const;
  friend bool operator==(const Prefix&, const Prefix&) = default;
};

/// IP protocol numbers used by the stack (values are ours, not IANA's).
enum class IpProto : std::uint8_t {
  kRaw = 0,
  kTcp = 6,         // RFC 793 wire format (monolithic TCP, or shim output)
  kSublayered = 7,  // native sublayered wire format (Fig. 6)
  kPing = 42,       // network-layer reachability probes
};

struct IpHeader {
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kRaw;
  IpAddr src = 0;
  IpAddr dst = 0;
  /// Congestion-experienced mark, set by a router whose outgoing queue is
  /// deep (AQM).  Receivers echo it to their sender via the OSR subheader.
  bool ecn_ce = false;

  static constexpr std::size_t kSize =
      1 + 1 + 1 + 1 + 4 + 4 + 2;  // +version +flags +len

  // Byte offsets of the mutable-in-transit fields, for in-place patching
  // by the forwarding sublayer (everything else is immutable end to end).
  static constexpr std::size_t kFlagsOffset = 1;  // bit 0 = ecn_ce
  static constexpr std::size_t kTtlOffset = 2;

  /// header · payload.
  Bytes encode(ByteView payload) const;
};

struct ParsedDatagram {
  IpHeader header;
  Bytes payload;
};
std::optional<ParsedDatagram> decode_datagram(ByteView datagram);

/// Zero-copy decode: the payload is a view into the caller's buffer, valid
/// only while that buffer is.  Forwarding uses this so that transit and
/// local delivery never copy the payload out of the datagram.
struct DatagramView {
  IpHeader header;
  ByteView payload;
};
std::optional<DatagramView> decode_datagram_view(ByteView datagram);

}  // namespace sublayer::netlayer
