// Challenge 5 ("Replace"): swap the mechanism inside a sublayer without
// touching any other sublayer.
//
// Runs the same 1 MB transfer over the same bottleneck network four times,
// once per congestion-control algorithm plugged into OSR, then swaps the
// ISN provider inside CM, and finally swaps the stuffing rule inside the
// data-link framing sublayer — three different layers of the stack, all
// replaced through their narrow interfaces with zero changes elsewhere.
#include <cstdio>

#include "datalink/stack.hpp"
#include "netlayer/router.hpp"
#include "stuffverify/verifier.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;

namespace {

struct TransferResult {
  double goodput_mbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t cwnd_final = 0;
};

TransferResult run_transfer(const std::string& cc, transport::IsnKind isn) {
  sim::Simulator sim;
  netlayer::RouterConfig rc;
  netlayer::Network net(sim, rc);
  const auto a = net.add_router();
  const auto b = net.add_router();
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.propagation_delay = Duration::millis(10);
  link.loss_rate = 0.005;
  link.queue_limit = 64;
  net.connect(a, b, link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  transport::HostConfig hc;
  hc.connection.osr.cc = cc;
  hc.isn = isn;
  transport::TcpHost client(sim, net.router(a), 1, hc);
  transport::TcpHost server(sim, net.router(b), 1, hc);

  const std::size_t total = 1 << 20;
  std::size_t received = 0;
  const TimePoint start = sim.now();
  TimePoint finished = start;
  server.listen(80, [&](transport::Connection& conn) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes data) {
      received += data.size();
      if (received == total) finished = sim.now();
    };
    conn.set_app_callbacks(cb);
  });

  transport::Connection& conn = client.connect(server.addr(), 80);
  Rng rng(3);
  conn.send(rng.next_bytes(total));
  sim.run(8'000'000);

  TransferResult r;
  const double secs = (finished - start).to_seconds();
  if (received == total && secs > 0) {
    r.goodput_mbps = static_cast<double>(total) * 8.0 / secs / 1e6;
  }
  r.retransmissions = conn.rd().stats().fast_retransmits +
                      conn.rd().stats().timeout_retransmits;
  r.cwnd_final = conn.osr().cwnd();
  return r;
}

}  // namespace

int main() {
  std::puts("== swapping OSR's congestion control (nothing else changes) ==");
  std::printf("%-8s %12s %8s %12s\n", "cc", "goodput", "retx", "final cwnd");
  for (const char* cc : {"reno", "cubic", "aimd", "rate"}) {
    const auto r = run_transfer(cc, transport::IsnKind::kRfc1948);
    std::printf("%-8s %9.2f Mbps %8llu %10llu B\n", cc, r.goodput_mbps,
                (unsigned long long)r.retransmissions,
                (unsigned long long)r.cwnd_final);
  }

  std::puts("\n== swapping CM's ISN provider (nothing else changes) ==");
  for (const auto& [kind, name] :
       {std::pair{transport::IsnKind::kRfc793, "rfc793-clock"},
        std::pair{transport::IsnKind::kRfc1948, "rfc1948-hash"},
        std::pair{transport::IsnKind::kWatson, "watson-timer"}}) {
    const auto r = run_transfer("reno", kind);
    std::printf("%-14s goodput %.2f Mbps (transfer unaffected by ISN policy)\n",
                name, r.goodput_mbps);
  }

  std::puts("\n== swapping the framing sublayer's stuffing rule ==");
  for (const auto& rule : {datalink::StuffingRule::hdlc(),
                           datalink::StuffingRule::low_overhead()}) {
    const auto overhead = stuffverify::estimate_overhead(rule, 1 << 18);
    const auto verdict = stuffverify::quick_check(rule);
    std::printf("%-45s valid=%s overhead=1/%.0f\n", rule.name().c_str(),
                verdict ? "yes" : "NO", overhead.one_in_n());
  }
  return 0;
}
