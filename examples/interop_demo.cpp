// Interoperation (paper §3.1, Challenge 2): a sublayered endpoint speaks
// to an unmodified monolithic TCP through the shim sublayer, which
// translates the Fig. 6 header to/from RFC 793 on the wire.
//
// The exchange is a tiny request/response protocol: the sublayered client
// sends a "GET", the monolithic server answers with a body, both close.
#include <cstdio>

#include "netlayer/router.hpp"
#include "transport/monolithic/mono_tcp.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;
using namespace sublayer::transport;

int main() {
  sim::Simulator sim;
  netlayer::RouterConfig rc;
  netlayer::Network net(sim, rc);
  const auto a = net.add_router();
  const auto b = net.add_router();
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(8);
  link.loss_rate = 0.02;
  net.connect(a, b, link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  // Sublayered client with the shim: RFC 793 on the wire.
  HostConfig hc;
  hc.wire_rfc793 = true;
  hc.reap_closed = false;  // keep the connection for the stats below
  TcpHost client(sim, net.router(a), 1, hc);

  // Completely independent monolithic (lwIP-style) server.
  MonoHost server(sim, net.router(b), 1);

  Rng rng(9);
  const Bytes body = rng.next_bytes(128 * 1024);

  MonoConnection* server_conn = nullptr;
  Bytes request;
  server.listen(80, [&](MonoConnection& conn) {
    server_conn = &conn;
    MonoConnection::AppCallbacks cb;
    cb.on_established = [] { std::puts("server(mono): accepted"); };
    cb.on_data = [&](Bytes data) {
      request.insert(request.end(), data.begin(), data.end());
      if (string_from_bytes(request) == "GET /paper HTTP/1.0\r\n\r\n") {
        std::puts("server(mono): full request received, sending body");
        server_conn->send(body);
        server_conn->close();
      }
    };
    conn.set_app_callbacks(cb);
  });

  Bytes response;
  bool response_done = false;
  Connection& conn = client.connect(server.addr(), 80);
  Connection::AppCallbacks cb;
  cb.on_established = [&] {
    std::puts("client(sublayered): established through the shim");
    conn.send(bytes_from_string("GET /paper HTTP/1.0\r\n\r\n"));
  };
  cb.on_data = [&](Bytes data) {
    response.insert(response.end(), data.begin(), data.end());
  };
  cb.on_stream_end = [&] {
    response_done = true;
    conn.close();
  };
  conn.set_app_callbacks(cb);

  sim.run(6'000'000);

  std::printf("response: %zu/%zu bytes, %s\n", response.size(), body.size(),
              response == body && response_done ? "INTACT" : "BROKEN");
  const auto& shim = client.shim().stats();
  std::printf(
      "shim translated %llu native->RFC793 segments out, %llu in "
      "(%llu FINACKs synthesized)\n",
      (unsigned long long)shim.translated_out,
      (unsigned long long)shim.translated_in,
      (unsigned long long)shim.synthesized_finacks);
  std::printf(
      "client RD: %llu fast retx, %llu timeout retx over the lossy path\n",
      (unsigned long long)conn.rd().stats().fast_retransmits,
      (unsigned long long)conn.rd().stats().timeout_retransmits);
  return response == body && response_done ? 0 : 1;
}
