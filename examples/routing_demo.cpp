// Network-layer sublayering (Figs. 3-4): neighbor determination feeds
// route computation, route computation fills the forwarding FIB — and the
// route-computation engine is swappable (distance vector <-> link state)
// without touching either neighbor discovery or forwarding.
#include <cstdio>

#include "netlayer/router.hpp"

using namespace sublayer;
using namespace sublayer::netlayer;

namespace {

void run_engine(RoutingKind kind, const char* label) {
  std::printf("== %s ==\n", label);
  sim::Simulator sim;
  RouterConfig config;
  config.routing = kind;
  config.neighbor.hello_interval = Duration::millis(20);
  config.neighbor.dead_interval = Duration::millis(70);
  config.routing_config.advert_interval = Duration::millis(40);
  config.routing_config.route_timeout = Duration::millis(150);
  config.routing_config.lsp_refresh = Duration::millis(100);
  Network net(sim, config);

  //      r0 --- r1
  //      |       |
  //      r2 --- r3 --- r4
  std::vector<RouterId> r;
  for (int i = 0; i < 5; ++i) r.push_back(net.add_router());
  const auto l01 = net.connect(r[0], r[1]);
  net.connect(r[0], r[2]);
  net.connect(r[1], r[3]);
  net.connect(r[2], r[3]);
  net.connect(r[3], r[4]);
  net.start();

  sim.run_until(TimePoint::from_ns(Duration::millis(1500).ns()));
  std::printf("converged=%s after initial flood; control messages=%llu\n",
              net.fully_converged() ? "yes" : "NO",
              (unsigned long long)net.total_routing_messages());
  std::printf("r0's FIB:\n%s", net.router(r[0]).fib().to_string().c_str());

  // Count data-plane reachability r0 -> r4.
  int pings = 0;
  net.router(r[4]).set_protocol_handler(
      IpProto::kPing, [&](const IpHeader&, Bytes) { ++pings; });
  IpHeader ping;
  ping.protocol = IpProto::kPing;
  ping.src = host_addr(r[0], 1);
  ping.dst = host_addr(r[4], 1);
  net.router(r[0]).send_datagram(ping, {});
  sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(50).ns()));
  std::printf("ping r0->r4: %s\n", pings == 1 ? "delivered" : "LOST");

  // Fail r0-r1 and watch the control plane repair the data plane.
  const std::uint64_t msgs_before = net.total_routing_messages();
  net.fail_link(l01);
  sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(1500).ns()));
  std::printf("after failing r0-r1: converged=%s, repair cost=%llu messages\n",
              net.converged_excluding(99) ? "yes" : "partially",
              (unsigned long long)(net.total_routing_messages() - msgs_before));
  const auto& route = net.router(r[0]).routes();
  if (route.contains(r[1])) {
    std::printf("r0 now reaches r1 via r%u (metric %.0f)\n",
                route.at(r[1]).next_hop, route.at(r[1]).metric);
  }
  pings = 0;
  net.router(r[0]).send_datagram(ping, {});
  sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(50).ns()));
  std::printf("ping r0->r4 after failure: %s\n\n",
              pings == 1 ? "delivered" : "LOST");
}

}  // namespace

int main() {
  run_engine(RoutingKind::kDistanceVector, "distance vector (Bellman-Ford)");
  run_engine(RoutingKind::kLinkState, "link state (LSP flooding + Dijkstra)");
  std::puts(
      "Same topology, same neighbor sublayer, same forwarding sublayer —\n"
      "only the route-computation mechanism differed (test T3).");
  return 0;
}
