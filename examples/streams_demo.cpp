// Recursive sublayering (paper §5, the QUIC direction): a stream sublayer
// stacked on top of the sublayered TCP, multiplexing three independent
// transfers over one connection — each stream finishes on its own,
// interleaved at record granularity.
#include <cstdio>

#include "netlayer/router.hpp"
#include "transport/streams/mux.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;
using namespace sublayer::transport;

int main() {
  sim::Simulator sim;
  netlayer::RouterConfig rc;
  netlayer::Network net(sim, rc);
  const auto a = net.add_router();
  const auto b = net.add_router();
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.propagation_delay = Duration::millis(5);
  link.loss_rate = 0.01;
  net.connect(a, b, link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  TcpHost client_host(sim, net.router(a), 1);
  TcpHost server_host(sim, net.router(b), 1);

  struct Receiver {
    std::map<std::uint32_t, std::size_t> bytes;
    std::map<std::uint32_t, bool> done;
  } rx;

  std::unique_ptr<StreamMux> server;
  server_host.listen(443, [&](Connection& conn) {
    server = std::make_unique<StreamMux>(conn, /*initiator=*/false);
    server->set_on_stream([&](Stream& s) {
      std::printf("server: peer opened stream %u\n", s.id());
      s.set_on_data([&rx, &s](Bytes data) { rx.bytes[s.id()] += data.size(); });
      s.set_on_end([&rx, &s] {
        rx.done[s.id()] = true;
        std::printf("server: stream %u complete\n", s.id());
      });
    });
  });

  Connection& conn = client_host.connect(server_host.addr(), 443);
  StreamMux client(conn, /*initiator=*/true);

  // Three "files" of different sizes over ONE connection, interleaved.
  Rng rng(1);
  const std::size_t sizes[] = {120000, 60000, 180000};
  std::vector<Stream*> streams;
  std::vector<Bytes> files;
  for (const std::size_t size : sizes) {
    streams.push_back(&client.open());
    files.push_back(rng.next_bytes(size));
  }
  // Round-robin the sends so the wire genuinely interleaves records.
  std::size_t at = 0;
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (at < files[i].size()) {
        const std::size_t chunk = std::min<std::size_t>(8000, files[i].size() - at);
        streams[i]->send(Bytes(files[i].begin() + static_cast<std::ptrdiff_t>(at),
                               files[i].begin() +
                                   static_cast<std::ptrdiff_t>(at + chunk)));
        if (at + chunk < files[i].size()) more = true;
      }
    }
    at += 8000;
  }
  for (auto* s : streams) s->finish();

  sim.run(10'000'000);

  bool all_ok = true;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const std::uint32_t id = streams[i]->id();
    const bool ok = rx.bytes[id] == files[i].size() && rx.done[id];
    all_ok &= ok;
    std::printf("stream %u: %zu/%zu bytes %s\n", id, rx.bytes[id],
                files[i].size(), ok ? "OK" : "INCOMPLETE");
  }
  std::printf(
      "one connection carried %llu records (%llu B of stream payload); the\n"
      "transport sublayers below saw only an opaque byte stream.\n",
      (unsigned long long)client.stats().records_sent,
      (unsigned long long)client.stats().bytes_sent);
  return all_ok ? 0 : 1;
}
