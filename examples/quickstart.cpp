// Quickstart: the smallest useful program against the public API.
//
// Builds a two-router network, attaches a sublayered-TCP host on each
// side, transfers a message over a lossy link, and prints what each
// sublayer did.  Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "netlayer/router.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;

int main() {
  sim::Simulator sim;

  // --- Network substrate: two routers, one impaired link. ---
  netlayer::RouterConfig router_config;
  router_config.routing = netlayer::RoutingKind::kLinkState;
  netlayer::Network net(sim, router_config);
  const auto left = net.add_router();
  const auto right = net.add_router();
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(5);
  link.loss_rate = 0.05;  // 5% loss: RD will earn its keep
  link.bandwidth_bps = 10e6;
  net.connect(left, right, link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));  // converge

  // --- Transport: one host per router, sublayered TCP (Fig. 5). ---
  transport::HostConfig host_config;
  host_config.reap_closed = false;  // keep connections for the stats below
  transport::TcpHost client(sim, net.router(left), /*host_octet=*/1,
                            host_config);
  transport::TcpHost server(sim, net.router(right), /*host_octet=*/1,
                            host_config);

  Bytes received;
  bool done = false;
  server.listen(80, [&](transport::Connection& conn) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes data) {
      received.insert(received.end(), data.begin(), data.end());
    };
    cb.on_stream_end = [&] { done = true; };
    conn.set_app_callbacks(cb);
  });

  transport::Connection& conn = client.connect(server.addr(), 80);
  transport::Connection::AppCallbacks cb;
  cb.on_established = [] { std::puts("client: connection established"); };
  conn.set_app_callbacks(cb);

  Rng rng(7);
  const Bytes message = rng.next_bytes(64 * 1024);
  conn.send(message);
  conn.close();
  sim.run(2'000'000);

  std::printf("transfer %s: %zu/%zu bytes, stream_end=%s\n",
              received == message ? "OK" : "CORRUPT", received.size(),
              message.size(), done ? "yes" : "no");

  // --- What each sublayer did. ---
  const auto& cm = conn.cm().stats();
  const auto& rd = conn.rd().stats();
  const auto& osr = conn.osr().stats();
  std::printf("CM : syn_sent=%llu syn_retx=%llu fin_sent=%llu\n",
              (unsigned long long)cm.syn_sent,
              (unsigned long long)cm.syn_retransmits,
              (unsigned long long)cm.fin_sent);
  std::printf(
      "RD : segments=%llu fast_retx=%llu timeout_retx=%llu sack_spared=%llu "
      "rto=%s\n",
      (unsigned long long)rd.segments_sent,
      (unsigned long long)rd.fast_retransmits,
      (unsigned long long)rd.timeout_retransmits,
      (unsigned long long)rd.sacked_segments_spared,
      to_string(conn.rd().current_rto()).c_str());
  std::printf("OSR: released=%llu cwnd_stalls=%llu cc=%s final_cwnd=%llu B\n",
              (unsigned long long)osr.segments_released,
              (unsigned long long)osr.cwnd_stalls, conn.osr().cc().name().c_str(),
              (unsigned long long)conn.osr().cwnd());
  std::printf("sim: %.3f virtual seconds, %llu events\n",
              sim.now().to_seconds(),
              (unsigned long long)sim.events_processed());
  return received == message && done ? 0 : 1;
}
