// The data-link sublayer stack of Fig. 2 in action: line coding, bit
// stuffing, CRC, and ARQ composed over a noisy simulated wire — plus the
// verified-bit-stuffing story from §4.1 (lemma ledger and rule search).
#include <cstdio>

#include "datalink/stack.hpp"
#include "stuffverify/verifier.hpp"

using namespace sublayer;

int main() {
  std::puts("== composed data-link stack over a noisy wire ==");
  sim::Simulator sim;
  Rng rng(42);
  sim::LinkConfig wire;
  wire.corrupt_rate = 0.10;  // every 10th frame gets 3 bit flips
  wire.corrupt_bit_flips = 3;
  wire.loss_rate = 0.05;
  wire.propagation_delay = Duration::millis(1);

  datalink::StackConfig config;
  config.arq_engine = "selective-repeat";
  config.arq.rto = Duration::millis(25);

  datalink::DatalinkPair pair(sim, wire, rng, config, phy::make_manchester(),
                              datalink::make_crc32(), phy::make_manchester(),
                              datalink::make_crc32());

  int delivered = 0;
  Bytes last;
  pair.b().set_deliver([&](Bytes payload) {
    ++delivered;
    last = std::move(payload);
  });

  Rng data(1);
  const int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) pair.a().send(data.next_bytes(200));
  sim.run(4'000'000);

  const auto& rx = pair.b().stats();
  const auto& arq = pair.a().arq_stats();
  std::printf("delivered %d/%d payloads reliably and in order\n", delivered,
              kFrames);
  std::printf(
      "receiver dropped: %llu checksum failures, %llu phy decode failures, "
      "%llu deframe failures\n",
      (unsigned long long)rx.checksum_failures,
      (unsigned long long)rx.phy_decode_failures,
      (unsigned long long)rx.deframe_failures);
  std::printf("ARQ covered for all of it: %llu retransmissions\n",
              (unsigned long long)arq.retransmissions);

  std::puts("\n== verified bit stuffing (the Coq experiment, in C++) ==");
  const auto rule = datalink::StuffingRule::hdlc();
  const auto result = stuffverify::verify_rule(rule);
  std::printf("rule %s\n  -> %s\n", rule.name().c_str(),
              result.summary().c_str());
  for (const auto& lemma : result.lemmas) {
    std::printf("  [%-8s] %-35s %s\n", lemma.sublayer.c_str(),
                lemma.name.c_str(), lemma.passed ? "proved" : "FAILED");
  }

  std::puts("\n== the subtle failure the paper warns about ==");
  // Flag 01111110 with trigger 111111/stuff 0: the stuffed bit itself can
  // complete a flag ("the stuffed bit forms a flag with subsequent data").
  const datalink::StuffingRule bad{BitString::parse("01111110"),
                                   BitString::parse("111111"), false};
  const auto bad_result = stuffverify::verify_rule(bad);
  std::printf("rule %s\n  -> %s\n", bad.name().c_str(),
              bad_result.summary().c_str());

  std::puts("\n== searching the rule space (paper found 66 alternates) ==");
  const auto outcome = stuffverify::search_rules({});
  std::printf(
      "candidates=%llu valid=%zu cheaper-than-HDLC=%llu "
      "(rejected: %llu false-flag, %llu degenerate)\n",
      (unsigned long long)outcome.candidates, outcome.valid_rules.size(),
      (unsigned long long)outcome.cheaper_than_hdlc,
      (unsigned long long)outcome.rejected_false_flag,
      (unsigned long long)outcome.rejected_degenerate);
  std::puts("cheapest five:");
  for (std::size_t i = 0; i < 5 && i < outcome.valid_rules.size(); ++i) {
    const auto& s = outcome.valid_rules[i];
    std::printf("  %-45s overhead 1/%.0f\n", s.rule.name().c_str(),
                s.overhead.one_in_n());
  }
  return delivered == kFrames ? 0 : 1;
}
